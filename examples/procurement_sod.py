"""Continuous compliance on a purchase-to-pay process.

Shows the deployed-query style of checking (§II.A's "emit results in
real-time"): controls are deployed against a live store, new evidence
re-checks only the affected traces, and the dashboard updates as events
arrive — including a violation that *heals* when late evidence shows up.

Run:  python examples/procurement_sod.py
"""

from repro import ComplianceDashboard, procurement
from repro.capture.correlation import CorrelationAnalytics
from repro.capture.recorder import RecorderClient
from repro.controls.deployment import ControlDeployment
from repro.processes.engine import ProcessSimulator
from repro.processes.violations import ViolationPlan


def main() -> None:
    workload = procurement.workload()
    plan = ViolationPlan(
        rates={
            "skip_po_approval": 0.15,
            "self_approval": 0.1,
            "no_receipt": 0.1,
            "price_mismatch": 0.1,
        }
    )

    # Build the live pipeline by hand (rather than workload.simulate) so the
    # store starts EMPTY and controls watch events arrive.
    model = workload.build_model()
    sim = workload.simulate(cases=0)  # vocabulary stack only
    from repro.store.store import ProvenanceStore

    store = ProvenanceStore(model=model)
    recorder = RecorderClient(store, workload.build_mapping(model))
    analytics = CorrelationAnalytics(store, model)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)

    dashboard = ComplianceDashboard()
    deployment = ControlDeployment(store, sim.xom, sim.vocabulary)
    deployment.subscribe(dashboard.record)
    for control in sim.controls:
        dashboard.register_control(control)
        deployment.deploy(control)
    print(f"deployed {len(sim.controls)} controls against an empty store\n")

    simulator = ProcessSimulator(
        workload.build_spec(), workload.case_factory(plan), seed=99
    )
    for batch in range(3):
        runs = simulator.run(10)
        for run in runs:
            recorder.process_all(run.events)
        analytics.run()  # correlation triggers the re-checks
        print(f"after batch {batch + 1} ({10 * (batch + 1)} cases):")
        for kpi in dashboard.kpis():
            rate = (
                f"{kpi.compliance_rate:.0%}"
                if kpi.compliance_rate is not None
                else "n/a"
            )
            print(
                f"  {kpi.control_name:<18} checked={kpi.checked:<4}"
                f" violated={kpi.violated:<3} rate={rate}"
            )
        print()

    print(f"incremental re-checks performed: {deployment.rechecks}")
    print("\nfinal exception report:")
    for exception in dashboard.exceptions():
        print(f"  {exception.describe()}")


if __name__ == "__main__":
    main()
