"""The paper end to end: Figure 1, Table I, Figure 2, Figure 3, dashboard.

Simulates the New Position Open process (the paper's Figure 1 example from
the Lombardi user guide), then walks through every artifact the paper
shows:

1. the process model (Figure 1),
2. the stored provenance rows of one trace (Table I),
3. the trace's provenance graph with the deployed control point (Figure 2),
4. the XOM → BOM → vocabulary pipeline (Figure 3 / §II.D listings),
5. compliance checking and the dashboard (§III).

Run:  python examples/hiring_compliance.py
"""

from repro import ComplianceDashboard, ComplianceEvaluator, hiring
from repro.controls.binding import ControlBinder
from repro.graph.build import build_trace_graph
from repro.graph.serialize import to_dot, trace_census
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_provenance_table


def main() -> None:
    workload = hiring.workload()

    print("=" * 72)
    print("FIGURE 1 — the New Position Open process model")
    print("=" * 72)
    for line in workload.build_spec().describe():
        print(line)

    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
    sim = workload.simulate(cases=20, seed=42, violations=plan)
    print(
        f"\nsimulated {len(sim.runs)} cases -> {len(sim.store)} provenance "
        f"rows across {len(sim.store.app_ids())} traces"
    )

    trace_id = sim.store.app_ids()[0]
    print("\n" + "=" * 72)
    print(f"TABLE I — provenance rows of trace {trace_id}")
    print("=" * 72)
    rows = [row for row in sim.store.rows() if row.app_id == trace_id]
    print(render_provenance_table(rows))

    print("\n" + "=" * 72)
    print("FIGURE 3 — XOM, BOM and vocabulary for jobrequisition (§II.D)")
    print("=" * 72)
    print(sim.xom.render_class_source("jobrequisition"))
    print()
    for entry in sim.vocabulary.bom.dump_entries():
        if "jobrequisition" in entry:
            print(entry)

    print("\nrule-editor drop-down for the Job Requisition concept:")
    for phrase in sim.tool.vocabulary_menus()["Job Requisition"]:
        print(f"  - {phrase}")

    print("\n" + "=" * 72)
    print("AUTHORED CONTROLS (BAL)")
    print("=" * 72)
    for control in sim.controls:
        print(f"--- {control.name} [{control.severity.value}] ---")
        print(control.source.strip())
        print()

    evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
    results = evaluator.run(sim.controls)
    binder = ControlBinder(sim.store)
    for result in results:
        binder.bind(result)

    print("=" * 72)
    print(f"FIGURE 2 — trace graph of {trace_id} with control points")
    print("=" * 72)
    graph = build_trace_graph(sim.store, trace_id)
    for line in trace_census(graph):
        print(line)
    print("\nGraphviz DOT (render with `dot -Tpng`):\n")
    print(to_dot(graph))

    print("\n" + "=" * 72)
    print("DASHBOARD (§III)")
    print("=" * 72)
    dashboard = ComplianceDashboard()
    for control in sim.controls:
        dashboard.register_control(control)
    dashboard.record_all(results)
    print(dashboard.render())


if __name__ == "__main__":
    main()
