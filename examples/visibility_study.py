"""How process visibility shapes compliance-detection quality.

"The efficacy of internal controls depends on the visibility of the
underlying process" (§II).  This study sweeps the capture rate from
unmanaged to fully managed on the expense-reimbursement workload and
reports precision/recall/F1 of the deployed controls against the injected
ground truth, plus what the three management profiles of the paper's
terminology achieve.

Run:  python examples/visibility_study.py
"""

from repro import ComplianceEvaluator, expenses
from repro.metrics.detection import detection_report
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import ManagementProfile, VisibilityPolicy
from repro.reporting.tables import render_table


def evaluate(visibility=None, cases=150, seed=31):
    workload = expenses.workload()
    plan = ViolationPlan.uniform(list(expenses.VIOLATION_KINDS), 0.25)
    sim = workload.simulate(
        cases=cases, seed=seed, violations=plan, visibility=visibility
    )
    evaluator = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
    )
    results = evaluator.run(sim.controls)
    truth = sim.ground_truth_for(workload.ground_truth)
    return detection_report(results, truth), sim


def main() -> None:
    rows = []
    for rate in (0.2, 0.4, 0.6, 0.8, 1.0):
        report, sim = evaluate(VisibilityPolicy.uniform(rate, seed=7))
        precision, recall, f1 = report.row()
        rows.append(
            (
                f"{rate:.0%}",
                sim.visible_events,
                sim.dropped_events,
                f"{precision:.3f}",
                f"{recall:.3f}",
                f"{f1:.3f}",
            )
        )
    print(
        render_table(
            ("capture rate", "visible", "dropped", "precision", "recall",
             "F1"),
            rows,
            title="Detection quality vs uniform capture rate "
                  "(expenses, 150 cases, 25% violation rate)",
        )
    )

    print()
    rows = []
    for profile in (
        ManagementProfile.UNMANAGED,
        ManagementProfile.PARTIALLY_MANAGED,
        ManagementProfile.FULLY_MANAGED,
    ):
        report, sim = evaluate(VisibilityPolicy.from_profile(profile, seed=7))
        precision, recall, f1 = report.row()
        rows.append(
            (profile.value, f"{precision:.3f}", f"{recall:.3f}",
             f"{f1:.3f}")
        )
    print(
        render_table(
            ("management profile", "precision", "recall", "F1"),
            rows,
            title="Detection quality per management profile",
        )
    )


if __name__ == "__main__":
    main()
