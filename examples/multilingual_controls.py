"""One data model, two business vocabularies, identical controls.

§IV of the paper: "Different verbalization for different business
vocabulary is possible.  This work suggests that the task of verbalization
is a role that is executed after the provenance graph data is created."

This example verbalizes the hiring data model twice — the default English
vocabulary and a German profile — authors the *same* internal control in
both, and shows the verdicts agree trace by trace.  No application code,
no data model, and no stored provenance changes between the two: only the
vocabulary layer.

Run:  python examples/multilingual_controls.py
"""

from repro import hiring
from repro.brms.bal.compiler import BalCompiler
from repro.brms.engine import RuleEngine
from repro.brms.profiles import (
    DEFAULT_PROFILE,
    profile_from_translations,
    verbalize_with_profile,
)
from repro.graph.build import build_trace_graph
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table

GERMAN = profile_from_translations(
    "de",
    concepts={
        "jobrequisition": "Stellenausschreibung",
        "approvalstatus": "Genehmigung",
        "candidatelist": "Kandidatenliste",
    },
    jobrequisition={
        "type": "Stellenart",
        "approvalOf": "Genehmigung",
        "candidatesFor": "Kandidatenliste",
    },
)

ENGLISH_CONTROL = """
definitions
  set 'req' to a Job Requisition
      where the position type of this Job Requisition is "new" ;
if
  all of the following conditions are true :
    - the approval of 'req' is not null ,
    - the candidate list of 'req' is not null
then
  the internal control is satisfied
"""

GERMAN_CONTROL = """
definitions
  set 'antrag' to a Stellenausschreibung
      where the Stellenart of this Stellenausschreibung is "new" ;
if
  all of the following conditions are true :
    - the Genehmigung of 'antrag' is not null ,
    - the Kandidatenliste of 'antrag' is not null
then
  the internal control is satisfied
"""


def main() -> None:
    workload = hiring.workload()
    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.3)
    sim = workload.simulate(cases=12, seed=77, violations=plan)

    english = verbalize_with_profile(sim.xom, DEFAULT_PROFILE)
    german = verbalize_with_profile(sim.xom, GERMAN)

    print("English drop-down (Job Requisition):")
    for item in english.dropdown_entries()["Job Requisition"][:4]:
        print(f"  - {item}")
    print("\nGerman drop-down (Stellenausschreibung):")
    for item in german.dropdown_entries()["Stellenausschreibung"][:4]:
        print(f"  - {item}")

    english_rule = BalCompiler(english).compile("gm-en", ENGLISH_CONTROL)
    german_rule = BalCompiler(german).compile("gm-de", GERMAN_CONTROL)

    rows = []
    agreements = 0
    for trace_id in sim.store.app_ids():
        graph = build_trace_graph(sim.store, trace_id)
        verdict_en = RuleEngine(sim.xom, english).evaluate(
            english_rule, graph
        ).verdict
        verdict_de = RuleEngine(sim.xom, german).evaluate(
            german_rule, graph
        ).verdict
        agreements += verdict_en is verdict_de
        rows.append(
            (trace_id, verdict_en.value, verdict_de.value,
             "yes" if verdict_en is verdict_de else "NO")
        )
    print()
    print(
        render_table(
            ("trace", "English control", "German control", "agree"),
            rows,
            title="Same control, two vocabularies, one provenance store",
        )
    )
    print(f"\nagreement: {agreements}/{len(rows)} traces")


if __name__ == "__main__":
    main()
