"""Quickstart: the paper's pipeline on a hand-built trace in ~60 lines.

Builds a tiny provenance data model, stores one execution trace, correlates
it into a graph, verbalizes the model into business vocabulary, authors the
paper's internal control in BAL, and checks compliance.

Run:  python examples/quickstart.py
"""

from repro import (
    BalCompiler,
    ComplianceEvaluator,
    CorrelationAnalytics,
    DataRecord,
    ExecutableObjectModel,
    ModelBuilder,
    ProvenanceStore,
    RecordClass,
    RecordQuery,
    Verbalizer,
    Vocabulary,
)
from repro.capture.correlation import attribute_join
from repro.controls.authoring import ControlAuthoringTool

# 1. Develop the provenance data model (§II of the paper).
model = (
    ModelBuilder("quickstart")
    .data("jobrequisition", "Job Requisition", reqid=str, type=str)
    .data("approvalstatus", "Approval Status", reqid=str, status=str)
    .relation(
        "approvalOf", RecordClass.DATA, RecordClass.DATA,
        label="the approval of",
    )
    .build()
)

# 2. Store one trace's provenance (normally recorder clients do this).
store = ProvenanceStore(model=model)
store.append(
    DataRecord.create(
        "PE1", "App01", "jobrequisition",
        attributes={"reqid": "Req001", "type": "new"},
    )
)
store.append(
    DataRecord.create(
        "PE2", "App01", "approvalstatus",
        attributes={"reqid": "Req001", "status": "approved"},
    )
)

# 3. Correlate records into provenance-graph edges.
analytics = CorrelationAnalytics(store, model)
analytics.add_rule(
    attribute_join(
        "approval-by-reqid", "approvalOf",
        RecordQuery(entity_type="approvalstatus"),
        RecordQuery(entity_type="jobrequisition"),
        "reqid", "reqid",
    )
)
analytics.run()

# 4. XOM -> BOM -> vocabulary (§II.D), then author the control in BAL.
xom = ExecutableObjectModel(model)
vocabulary = Vocabulary(Verbalizer(xom).verbalize())
tool = ControlAuthoringTool(vocabulary)
tool.author(
    "gm-approval",
    """
    definitions
      set 'the request' to a Job Requisition
          where the type of this Job Requisition is "new" ;
    if
      the approval of 'the request' is not null
    then
      the internal control is satisfied
    else
      the internal control is not satisfied ;
      alert "new position without approval"
    """,
)
tool.deploy("gm-approval")

# 5. Check compliance.
evaluator = ComplianceEvaluator(store, xom, vocabulary)
for result in evaluator.run(tool.deployed_controls()):
    print(result.describe())
