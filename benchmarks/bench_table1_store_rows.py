"""T1 — Table I: storing the provenance entities of an execution trace.

Regenerates the paper's Table I for one fully visible trace of the New
Position Open process: every row ``(ID, CLASS, APPID, XML)``, with the
record classes the paper enumerates (Resource, Task, Data, Relation,
Custom once a control point is bound).

Benchmarked operation: the capture path — recorder transforms events of
one trace into Table-I rows in the store.
"""

from repro.capture.recorder import RecorderClient
from repro.controls.binding import ControlBinder
from repro.controls.evaluator import ComplianceEvaluator
from repro.model.records import RecordClass
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_provenance_table
from repro.store.store import ProvenanceStore


def _one_trace_events():
    workload = hiring.workload()
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(ViolationPlan.none(), new_ratio=1.0),
        seed=1,
    )
    run = simulator.run_case()
    return workload, run


def test_table1_rows(benchmark, artifact):
    workload, run = _one_trace_events()
    model = workload.build_model()
    mapping = workload.build_mapping(model)

    def capture():
        store = ProvenanceStore(model=model)
        RecorderClient(store, mapping).process_all(run.events)
        return store

    store = benchmark(capture)

    # Correlate + bind the control so the table shows all five classes.
    from repro.capture.correlation import CorrelationAnalytics

    analytics = CorrelationAnalytics(store, model)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)
    analytics.run()

    sim = workload.simulate(cases=0)  # vocabulary stack
    evaluator = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
    binder = ControlBinder(store)
    binder.bind(evaluator.check_trace(sim.controls[0], run.app_id))

    rows = store.rows()
    classes = {row.record_class for row in rows}
    assert classes == {
        RecordClass.RESOURCE,
        RecordClass.TASK,
        RecordClass.DATA,
        RecordClass.RELATION,
        RecordClass.CUSTOM,
    }
    table = render_provenance_table(rows)
    artifact(
        "TABLE I — provenance entities of one New Position Open trace",
        table
        + f"\n\n({len(rows)} rows; classes present: "
        + ", ".join(sorted(c.value for c in classes))
        + ")",
        data={
            "row_count": len(rows),
            "classes": sorted(c.value for c in classes),
        },
    )
