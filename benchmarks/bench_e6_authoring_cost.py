"""E6 — authoring and change cost: business vocabulary vs IT artifacts.

Operationalizes §I's economic claim ("implementing new internal controls by
IT department every time there is a need is very costly and not flexible")
with three comparisons over the twelve controls of the three workloads:

1. artifact size (non-blank lines, lexical tokens) of the same control in
   BAL vs hardcoded Python vs raw store queries,
2. IT dependency — whether a developer must be involved to change it,
3. the one-time vs per-control cost split: the verbalization pipeline runs
   once per data model; each further control reuses the vocabulary.

Expected shape: BAL artifacts are several times smaller in tokens than
their Python twins; only BAL artifacts are business-editable; the raw
query variant is the worst of both.

Benchmarked operation: compiling all twelve BAL controls against their
vocabularies (the authoring-time cost a rule editor pays per save).
"""

from repro.baselines.hardcoded import (
    expenses_hardcoded_controls,
    incidents_hardcoded_controls,
    hiring_hardcoded_controls,
    procurement_hardcoded_controls,
)
from repro.baselines.storequery import hiring_gm_approval_query_control
from repro.brms.bal.compiler import BalCompiler
from repro.metrics.authoring import bal_cost, python_cost, query_cost
from repro.processes import expenses, hiring, incidents, procurement
from repro.reporting.tables import render_table

WORKLOADS = (
    (hiring, hiring_hardcoded_controls),
    (procurement, procurement_hardcoded_controls),
    (expenses, expenses_hardcoded_controls),
    (incidents, incidents_hardcoded_controls),
)


def test_e6_authoring_cost(benchmark, artifact):
    rows = []
    ratios = []
    for module, build_hardcoded in WORKLOADS:
        hardcoded = {c.name: c for c in build_hardcoded()}
        for spec in module.CONTROL_SPECS:
            bal = bal_cost(spec.name, spec.text)
            python = python_cost(spec.name, hardcoded[spec.name].check)
            ratios.append(python.tokens / bal.tokens)
            rows.append(
                (
                    module.workload().name,
                    spec.name,
                    bal.lines,
                    bal.tokens,
                    python.lines,
                    python.tokens,
                    f"{python.tokens / bal.tokens:.1f}x",
                    "no" if not bal.requires_it else "yes",
                )
            )
    query_control = hiring_gm_approval_query_control()
    query = query_cost(
        "gm-approval", list(query_control.probes), query_control.verdict
    )

    # Shape: every hardcoded twin costs more tokens than its BAL control.
    assert all(ratio > 1.0 for ratio in ratios)
    assert sum(ratios) / len(ratios) > 1.5

    columns = (
        "workload",
        "control",
        "BAL lines",
        "BAL tokens",
        "py lines",
        "py tokens",
        "py/BAL",
        "IT needed (BAL)",
    )
    table = render_table(
        columns,
        rows,
        title="E6: per-control artifact cost, BAL vs hardcoded Python",
    )
    table += (
        f"\n\nraw store-query variant of gm-approval: {query.lines} lines, "
        f"{query.tokens} tokens, IT needed: yes"
    )
    table += (
        "\n\nchange story: renaming or adding a requisition attribute "
        "touches 1 data-model declaration + re-runs verbalization; "
        "0 BAL controls change unless their phrases do, while every "
        "hardcoded control reading the attribute is a code change."
    )
    artifact(
        "E6 — authoring & change cost",
        table,
        data={
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "mean_python_over_bal_tokens": sum(ratios) / len(ratios),
        },
    )

    # Benchmark: compile all twelve controls against their vocabularies.
    stacks = [
        (module.workload().simulate(cases=0), module)
        for module, __ in WORKLOADS
    ]

    def compile_all():
        compiled = []
        for stack, module in stacks:
            compiler = BalCompiler(stack.vocabulary)
            for spec in module.CONTROL_SPECS:
                compiled.append(compiler.compile(spec.name, spec.text))
        return compiled

    results = benchmark(compile_all)
    assert len(results) == 12
