"""Multi-writer ingestion over the sharded store.

The sharded backend routes each trace to one shard (stable CRC32 of the
APPID) and serializes per-shard writes behind file locks, so N recorder
processes can append concurrently as long as they own disjoint shards.
This bench forks 1, 2, and 4 writer processes over a 4-shard SQLite
layout, each recording the event streams of the traces homed on its
shards, and reports wall-clock ingest throughput per configuration.

Correctness is checked once on the 4-writer database:

- a reader folds the shards into one store, runs correlation, and
  evaluates the workload's controls through the materializer sweep; the
  verdicts must be **byte-identical** to a cold single-store (unsharded,
  single-writer) sweep over the same events,
- data/event rows must match the oracle's byte-for-byte as multisets;
  correlation relations match modulo the scan-order ``REL<n>`` id.

The throughput bar: at full scale on a machine with >= 4 CPUs, 4 writers
must ingest at >= 2x the single-writer rate.  On smaller machines (or
under ``BAL_BENCH_SCALE=tiny``, the CI smoke variant) real parallelism
is physically unavailable, so the bench only insists the multi-writer
path is not catastrophically slower and that correctness holds.

Benchmarked operation: one single-writer sharded ingest at 24 traces.
"""

import multiprocessing
import os
import re
import time

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.store.backends import ShardedBackend
from repro.store.backends.sharded import shard_index_for
from repro.store.store import ProvenanceStore

TINY = os.environ.get("BAL_BENCH_SCALE") == "tiny"
CASES = 24 if TINY else 320
SHARDS = 4
WRITER_COUNTS = (1, 2, 4)
REPEATS = 1 if TINY else 2
PARALLEL_HW = (os.cpu_count() or 1) >= 4
# >= 2x at 4 writers is the acceptance bar, but it needs actual cores;
# a 1-core container can only pay fork overhead, so there the bench
# guards correctness plus a sanity floor.
MIN_SPEEDUP = 2.0 if (PARALLEL_HW and not TINY) else 0.3

_REL_ID = re.compile(r'ps:id="REL\d+"')


def _events(workload, cases):
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(
            ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
        ),
        seed=11,
    )
    return all_events(simulator.run(cases))


def _writer_main(path, model, mapping, events):
    """One writer process: append its shard-partition of the stream."""
    store = ProvenanceStore(
        model=model, backend=ShardedBackend.for_sqlite(path, SHARDS)
    )
    try:
        RecorderClient(store, mapping).process_all(events)
    finally:
        store.close()


def _run_writers(path, model, mapping, events, writers):
    """Fork *writers* processes over disjoint shard sets; returns seconds.

    Shard ``s`` belongs to writer ``s % writers``, so every trace's
    events stay ordered inside exactly one writer.  The parent creates
    the shard schemas up front — concurrent first-open CREATEs are the
    one cross-shard race the layout does not need to win.
    """
    ShardedBackend.for_sqlite(path, SHARDS).close()
    partitions = [
        [
            event
            for event in events
            if shard_index_for(event.app_id, SHARDS) % writers == index
        ]
        for index in range(writers)
    ]
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=_writer_main, args=(path, model, mapping, partition)
        )
        for partition in partitions
    ]
    started = time.perf_counter()
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    elapsed = time.perf_counter() - started
    for process in processes:
        assert process.exitcode == 0, (
            f"writer exited with {process.exitcode}"
        )
    return elapsed


def _correlate(store, workload, model):
    analytics = CorrelationAnalytics(store, model)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)
    analytics.run()


def _norm_rows(store):
    """Row multiset with correlation's scan-order REL ids masked out."""
    rows = []
    for row in store.rows():
        record_id, record_class, app_id, xml = row.as_tuple()
        if record_id.startswith("REL"):
            record_id = "REL*"
            xml = _REL_ID.sub('ps:id="REL*"', xml)
        rows.append((record_id, record_class, app_id, xml))
    return sorted(rows)


def _norm_verdicts(results):
    return [
        (
            r.control_name,
            r.trace_id,
            r.status,
            r.checked_at,
            tuple(r.alerts),
            tuple(sorted(r.bound_nodes.items())),
            tuple(r.touched_nodes),
        )
        for r in results
    ]


def test_multiwriter_ingest(benchmark, artifact, tmp_path):
    workload = hiring.workload()
    model = workload.build_model()
    mapping = workload.build_mapping(model)
    events = _events(workload, CASES)

    best = {}
    last_path = {}
    for writers in WRITER_COUNTS:
        for attempt in range(REPEATS):
            path = str(tmp_path / f"mw-{writers}-{attempt}.db")
            elapsed = _run_writers(path, model, mapping, events, writers)
            if writers not in best or elapsed < best[writers]:
                best[writers] = elapsed
            last_path[writers] = path

    speedup = best[1] / best[WRITER_COUNTS[-1]]
    assert speedup >= MIN_SPEEDUP, (
        f"{WRITER_COUNTS[-1]} writers ingest at only {speedup:.2f}x the "
        f"single-writer rate ({CASES} traces, {os.cpu_count()} cpus); "
        f"required >= {MIN_SPEEDUP}x"
    )

    # Correctness over the 4-writer layout: fold, correlate, evaluate.
    reader = ProvenanceStore(
        model=model,
        backend=ShardedBackend.for_sqlite(
            last_path[WRITER_COUNTS[-1]], SHARDS
        ),
    )
    _correlate(reader, workload, model)
    oracle = ProvenanceStore(model=model)
    RecorderClient(oracle, mapping).process_all(events)
    _correlate(oracle, workload, model)
    assert _norm_rows(reader) == _norm_rows(oracle), (
        "multi-writer sharded ingest and the single-store oracle "
        "disagree on stored rows"
    )
    sim = workload.simulate(cases=1, seed=11)
    trace_ids = sorted(reader.app_ids())
    sharded_verdicts = _norm_verdicts(
        ComplianceEvaluator(reader, sim.xom, sim.vocabulary).run(
            sim.controls, trace_ids=trace_ids
        )
    )
    oracle_verdicts = _norm_verdicts(
        ComplianceEvaluator(oracle, sim.xom, sim.vocabulary).run(
            sim.controls, trace_ids=trace_ids
        )
    )
    assert sharded_verdicts == oracle_verdicts, (
        "incremental verdicts over the multi-writer shards differ from "
        "the cold single-store sweep"
    )
    rows_stored = len(reader)
    reader.close()
    oracle.close()

    columns = ("writers", "ingest", "events/s", "vs 1 writer")
    rows = [
        (
            str(writers),
            f"{best[writers]:.3f}s",
            f"{len(events) / best[writers]:.0f}",
            f"{best[1] / best[writers]:.2f}x",
        )
        for writers in WRITER_COUNTS
    ]
    table = render_table(
        columns,
        rows,
        title=(
            f"Multi-writer sharded ingest — hiring, {CASES} traces, "
            f"{len(events)} events, {SHARDS} shards, "
            f"{os.cpu_count()} cpu(s)"
        ),
    )
    artifact(
        "Multi-writer ingest",
        table,
        data={
            "cases": CASES,
            "events": len(events),
            "shards": SHARDS,
            "cpus": os.cpu_count(),
            "scale": "tiny" if TINY else "full",
            "rows_stored": rows_stored,
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "seconds": {
                str(writers): best[writers] for writers in WRITER_COUNTS
            },
            "speedup_at_max_writers": speedup,
            "verdicts_identical": True,
        },
    )

    def single_writer_small(events=_events(workload, 24)):
        path = str(
            tmp_path / f"bench-{time.monotonic_ns()}.db"
        )
        return _run_writers(path, model, mapping, events, 1)

    benchmark(single_writer_small)
