"""BAL execution modes — interpreted vs compiled vs compiled+jobs.

The on-demand query frontend of §II.A re-runs full sweeps (every control
× every trace) whenever freshness is wanted, so its steady-state cost is
the repeated-sweep cost.  This bench measures that steady state on the
hiring workload for the sweep mechanisms stacked in
:class:`~repro.controls.evaluator.ComplianceEvaluator`:

- **interpret, rebuilt contexts** — the pre-compilation baseline: AST
  interpretation, every sweep rebuilds every trace graph,
- **interpret, shared contexts** — per-trace frames cached across sweeps,
- **compiled, shared contexts** — closure-codegen rule execution on top,
- **compiled + jobs=N** — the forked parallel sweep (fork cost dominates
  at this scale; the row shows when *not* to pass ``--jobs``).

Every mode must produce identical compliance rows — the sweep mechanisms
change cost, never semantics — and the compiled+shared steady state must
beat the baseline by at least 2x at full scale (run with
``BAL_BENCH_SCALE=tiny`` for the CI smoke variant, which only insists the
compiled path is not slower than the interpreter).

Benchmarked operation: one warm compiled+shared full sweep.
"""

import os
import time

from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table

TINY = os.environ.get("BAL_BENCH_SCALE") == "tiny"
CASES = 30 if TINY else 300
SWEEPS = 5
JOBS = 2 if TINY else 4
# Full scale must hit the 2x acceptance bar; the tiny CI smoke run only
# guards the sign of the comparison (noise swamps ratios at 30 traces).
MIN_SPEEDUP = 1.0 if TINY else 2.0

MODES = (
    ("interpret, rebuilt contexts", "interpret", False, None),
    ("interpret, shared contexts", "interpret", True, None),
    ("compiled, shared contexts", "compiled", True, None),
    (f"compiled, shared, jobs={JOBS}", "compiled", True, JOBS),
)


def _normalize(results):
    return [
        (
            r.control_name,
            r.trace_id,
            r.status.value,
            r.checked_at,
            tuple(r.alerts),
            tuple(sorted(r.bound_nodes.items())),
            tuple(r.touched_nodes),
        )
        for r in results
    ]


def _sweep_times(sim, execution_mode, share_contexts, jobs):
    # incremental=False: this bench prices the *evaluation* mechanisms, so
    # every sweep must actually re-evaluate every pair.  Verdict
    # memoization (which would make warm re-sweeps near-free) is measured
    # separately in bench_incremental_vs_sweep.
    evaluator = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
        execution_mode=execution_mode,
        share_contexts=share_contexts,
        incremental=False,
    )
    times = []
    results = None
    for __ in range(SWEEPS):
        start = time.perf_counter()
        results = evaluator.run(sim.controls, jobs=jobs)
        times.append(time.perf_counter() - start)
    return times, results


def test_bal_execution_modes(benchmark, artifact):
    sim = hiring.workload().simulate(
        cases=CASES,
        seed=7,
        violations=ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2),
    )

    measured = []
    reference = None
    for label, execution_mode, share_contexts, jobs in MODES:
        times, results = _sweep_times(sim, execution_mode, share_contexts, jobs)
        normalized = _normalize(results)
        if reference is None:
            reference = normalized
        # Cost changes, semantics never: every mode emits identical rows.
        assert normalized == reference, f"{label} diverged from baseline"
        measured.append((label, min(times), sorted(times)[len(times) // 2]))

    base_best = measured[0][1]
    compiled_best = measured[2][1]
    speedup = base_best / compiled_best
    assert speedup >= MIN_SPEEDUP, (
        f"compiled+shared sweep is {speedup:.2f}x the interpreted baseline; "
        f"required >= {MIN_SPEEDUP}x at {CASES} traces"
    )

    # Parallel-sweep regression guard: ``jobs=N`` may not lose to the
    # serial compiled sweep by more than a 20% noise envelope.  Below the
    # measured break-even point the evaluator is expected to keep the
    # sweep serial itself (the fallback counts as passing) — this is what
    # made fork-per-sweep a 2x regression at small scales.
    serial_best = measured[2][1]
    jobs_best = measured[3][1]
    assert jobs_best <= serial_best * 1.2, (
        f"jobs={JOBS} sweep ({jobs_best * 1000:.1f}ms) is more than 20% "
        f"slower than the serial compiled sweep "
        f"({serial_best * 1000:.1f}ms) at {CASES} traces; the break-even "
        f"fallback should have kept it serial"
    )

    columns = ("mode", "best sweep", "median sweep", "vs baseline")
    rows = [
        (
            label,
            f"{best * 1000:.1f}ms",
            f"{median * 1000:.1f}ms",
            f"{base_best / best:.2f}x",
        )
        for label, best, median in measured
    ]
    table = render_table(
        columns,
        rows,
        title=(
            f"BAL execution modes — hiring, {CASES} traces, "
            f"{len(sim.controls)} controls, {SWEEPS} sweeps each "
            f"(steady state)"
        ),
    )
    artifact(
        "BAL execution modes",
        table,
        data={
            "cases": CASES,
            "controls": len(sim.controls),
            "sweeps": SWEEPS,
            "scale": "tiny" if TINY else "full",
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "seconds": {
                label: {"best": best, "median": median}
                for label, best, median in measured
            },
            "compiled_vs_baseline_speedup": speedup,
        },
    )

    warm = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
        incremental=False,
    )
    warm.run(sim.controls)
    benchmark(lambda: warm.run(sim.controls))
