"""Backend comparison — memory vs SQLite (in-memory and on-disk).

The storage seam (``repro.store.backends``) trades memory-resident speed
for durability; this bench prices that trade on the three hot paths:

- **append** — the recorder-client capture pipeline (events → records →
  rows), which exercises SQLite's batched-transaction write path,
- **query** — indexed selects (per-trace, attribute-filtered) plus point
  lookups, which exercise the lazy-decode LRU cache,
- **deployed check** — batched continuous checking over a growing stream,
  the E5 workload, which mixes appends, index hits and graph builds.

Expected shape: memory wins on raw append (no serialization to disk);
SQLite ``:memory:`` tracks file SQLite closely on queries (both pay decode
on cache misses); the on-disk file pays WAL commit latency on appends but
stays within a small factor thanks to batched transactions — and is the
only column that survives a process restart.

Benchmarked operation: the full capture+check pipeline on the on-disk
SQLite backend.
"""

import time

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.recorder import RecorderClient
from repro.controls.deployment import ControlDeployment
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.store.backends import MemoryBackend, SQLiteBackend
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore

CASES = 120
BATCHES = 4
QUERY_ROUNDS = 3


def _backend_factories(tmp_path):
    return (
        ("memory", lambda: MemoryBackend()),
        ("sqlite :memory:", lambda: SQLiteBackend(":memory:")),
        (
            "sqlite file",
            lambda: SQLiteBackend(
                str(tmp_path / f"bench-{time.monotonic_ns()}.db")
            ),
        ),
    )


def _capture(workload, backend, cases):
    """Run the capture pipeline into a fresh store; returns (store, secs)."""
    model = workload.build_model()
    store = ProvenanceStore(model=model, backend=backend)
    recorder = RecorderClient(store, workload.build_mapping(model))
    analytics = CorrelationAnalytics(store, model)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(ViolationPlan.none()),
        seed=5,
    )
    runs = simulator.run(cases)
    start = time.perf_counter()
    for run in runs:
        recorder.process_all(run.events)
    analytics.run()
    store.flush()
    return store, time.perf_counter() - start


def _query(store):
    """Indexed selects + point lookups over every trace; returns secs."""
    start = time.perf_counter()
    for __ in range(QUERY_ROUNDS):
        for trace_id in store.app_ids():
            records = store.select(RecordQuery(app_id=trace_id))
            for record in records[:5]:
                store.get(record.record_id)
            store.find_data(trace_id, "jobrequisition", type="new")
    return time.perf_counter() - start


def _deployed(workload, stack, backend, cases):
    """Batched continuous checking over a growing stream; returns secs."""
    model = workload.build_model()
    store = ProvenanceStore(model=model, backend=backend)
    recorder = RecorderClient(store, workload.build_mapping(model))
    analytics = CorrelationAnalytics(store, model)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)
    deployment = ControlDeployment(
        store, stack.xom, stack.vocabulary,
        bind_results=False, immediate=False,
    )
    for control in stack.controls:
        deployment.deploy(control)
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(ViolationPlan.none()),
        seed=5,
    )
    start = time.perf_counter()
    for __ in range(BATCHES):
        for run in simulator.run(cases // BATCHES):
            recorder.process_all(run.events)
        analytics.run()
        deployment.flush()
    seconds = time.perf_counter() - start
    store.close()
    return seconds, deployment.rechecks


def test_backend_comparison(benchmark, artifact, tmp_path):
    workload = hiring.workload()
    stack = workload.simulate(cases=0)  # vocabulary + controls only

    rows = []
    for label, factory in _backend_factories(tmp_path):
        store, append_sec = _capture(workload, factory(), CASES)
        stored = len(store)
        query_sec = _query(store)
        store.close()
        check_sec, rechecks = _deployed(workload, stack, factory(), CASES)
        rows.append(
            (
                label,
                stored,
                f"{stored / append_sec:,.0f} rows/s",
                f"{query_sec:.3f}s",
                f"{check_sec:.3f}s",
                rechecks,
            )
        )

    columns = (
        "backend",
        "rows",
        "append throughput",
        f"query ({QUERY_ROUNDS} sweeps)",
        "deployed check",
        "rechecks",
    )
    table = render_table(
        columns,
        rows,
        title=(
            f"Backend comparison — hiring, {CASES} cases, "
            f"{BATCHES} check batches"
        ),
    )
    artifact(
        "Backend comparison",
        table,
        data={
            "cases": CASES,
            "columns": list(columns),
            "rows": [list(row) for row in rows],
        },
    )

    # Identical recheck counts: the seam changes cost, never semantics.
    assert len({row[5] for row in rows}) == 1

    benchmark(
        lambda: _deployed(
            workload, stack, SQLiteBackend(
                str(tmp_path / f"bm-{time.monotonic_ns()}.db")
            ), 40,
        )
    )
