"""E7 — provenance pipeline scaling.

Times the full capture pipeline phase by phase — simulate → record
(recorder clients) → correlate (enrichment analytics) → evaluate (controls
over trace graphs) — at growing trace counts on the hiring workload.

Expected shape: every phase scales near-linearly in trace count (the
correlation analytics are per-trace joins, not global products); the
per-trace cost is flat to within a small factor across the sweep.

Benchmarked operation: the record+correlate core at the smallest scale.
"""

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.metrics.timing import Stopwatch
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.store.store import ProvenanceStore

TRACE_COUNTS = (50, 200, 800)


def _run_scale(workload, stack, cases):
    watch = Stopwatch()
    with watch.span("simulate"):
        simulator = ProcessSimulator(
            workload.build_spec(),
            workload.case_factory(
                ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
            ),
            seed=7,
        )
        events = all_events(simulator.run(cases))
    model = workload.build_model()
    store = ProvenanceStore(model=model)
    with watch.span("record"):
        RecorderClient(store, workload.build_mapping(model)).process_all(
            events
        )
    with watch.span("correlate"):
        analytics = CorrelationAnalytics(store, model)
        for rule in workload.correlation_rules():
            analytics.add_rule(rule)
        analytics.run()
    with watch.span("evaluate"):
        evaluator = ComplianceEvaluator(store, stack.xom, stack.vocabulary)
        results = evaluator.run(stack.controls)
    return watch, len(store), len(results)


def test_e7_pipeline_scaling(benchmark, artifact):
    workload = hiring.workload()
    stack = workload.simulate(cases=0)

    rows = []
    per_trace_totals = []
    for cases in TRACE_COUNTS:
        watch, stored_rows, checked = _run_scale(workload, stack, cases)
        per_trace = watch.total / cases
        per_trace_totals.append(per_trace)
        rows.append(
            (
                cases,
                stored_rows,
                checked,
                f"{watch.seconds('simulate'):.3f}s",
                f"{watch.seconds('record'):.3f}s",
                f"{watch.seconds('correlate'):.3f}s",
                f"{watch.seconds('evaluate'):.3f}s",
                f"{watch.total:.3f}s",
                f"{per_trace * 1000:.2f}ms",
            )
        )

    # Near-linear: per-trace cost stays within a small factor across a 16x
    # scale-up (a quadratic pipeline would blow this bound up).
    assert max(per_trace_totals) / min(per_trace_totals) < 5.0

    columns = (
        "traces",
        "rows",
        "checks",
        "simulate",
        "record",
        "correlate",
        "evaluate",
        "total",
        "per trace",
    )
    table = render_table(
        columns,
        rows,
        title="E7: pipeline phase times vs trace count (hiring workload)",
    )
    artifact(
        "E7 — provenance pipeline scaling",
        table,
        data={
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "per_trace_seconds": per_trace_totals,
        },
    )

    def record_and_correlate():
        simulator = ProcessSimulator(
            workload.build_spec(),
            workload.case_factory(ViolationPlan.none()),
            seed=7,
        )
        events = all_events(simulator.run(50))
        model = workload.build_model()
        store = ProvenanceStore(model=model)
        RecorderClient(store, workload.build_mapping(model)).process_all(
            events
        )
        analytics = CorrelationAnalytics(store, model)
        for rule in workload.correlation_rules():
            analytics.add_rule(rule)
        analytics.run()
        return len(store)

    benchmark(record_and_correlate)
