"""E7 — provenance pipeline scaling.

Times the full capture pipeline phase by phase — simulate → record
(recorder clients) → correlate (enrichment analytics) → evaluate (controls
over trace graphs) → resweep (warm re-evaluation) — at growing trace
counts on the hiring workload, with the process's peak RSS after each
scale.

Expected shape: every phase scales near-linearly in trace count (the
correlation analytics are per-trace joins, not global products); the
per-trace cost is flat to within a small factor across the sweep.

Scales come in three sets, selected by ``BAL_BENCH_SCALE``:

- ``tiny`` — (20, 50): the CI smoke variant.  Shape assertions only.
- default — (50, 200, 800): the checked-in BENCH_e7 numbers.
- ``large`` — adds 10_000 and 100_000 traces on the SQLite backend,
  where the columnar payloads carry the sweep: predicate push-down
  answers the evaluator's record queries from indexed SQL and projected
  iteration decodes only the attributes the controls reference.

The large scales run on SQLite (that is where the columnar representation
lives); the small scales keep the in-memory backend so the series stays
comparable with earlier snapshots.

Benchmarked operation: the record+correlate core at the smallest scale.
"""

import os
import resource
import sys

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.metrics.timing import Stopwatch
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.store.backends.sqlite import SQLiteBackend
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore

_SCALE = os.environ.get("BAL_BENCH_SCALE", "")
if _SCALE == "tiny":
    TRACE_COUNTS = (20, 50)
elif _SCALE == "large":
    TRACE_COUNTS = (50, 200, 800, 10_000, 100_000)
else:
    TRACE_COUNTS = (50, 200, 800)

#: scales at or above this run on the SQLite backend (columnar + push-down
#: + projected sweeps); below it the in-memory backend keeps the series
#: comparable with pre-columnar snapshots.
_SQLITE_FROM = 10_000


def _peak_rss_mb() -> float:
    """High-water RSS of this process, in MiB (monotonic across scales)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, kilobytes on Linux
        peak //= 1024
    return peak / 1024.0


def _run_scale(workload, stack, cases):
    watch = Stopwatch()
    with watch.span("simulate"):
        simulator = ProcessSimulator(
            workload.build_spec(),
            workload.case_factory(
                ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
            ),
            seed=7,
        )
        events = all_events(simulator.run(cases))
    model = workload.build_model()
    backend = SQLiteBackend(":memory:") if cases >= _SQLITE_FROM else None
    store = ProvenanceStore(model=model, backend=backend)
    with watch.span("record"):
        RecorderClient(store, workload.build_mapping(model)).process_all(
            events
        )
    with watch.span("correlate"):
        analytics = CorrelationAnalytics(store, model)
        for rule in workload.correlation_rules():
            analytics.add_rule(rule)
        analytics.run()
    store.flush()
    with watch.span("evaluate"):
        evaluator = ComplianceEvaluator(store, stack.xom, stack.vocabulary)
        results = evaluator.run(stack.controls)
    # Warm full sweep: frames are cached, so this isolates rule execution
    # from graph building — the steady-state cost of re-auditing a store.
    with watch.span("resweep"):
        resweep = evaluator.run(stack.controls)
    assert len(resweep) == len(results)
    backend_name = "sqlite" if backend is not None else "memory"
    rows, checked = len(store), len(results)
    store.close()
    return watch, rows, checked, backend_name


def test_e7_pipeline_scaling(benchmark, artifact):
    workload = hiring.workload()
    stack = workload.simulate(cases=0)

    rows = []
    per_trace_totals = []
    resweep_seconds = []
    for cases in TRACE_COUNTS:
        watch, stored_rows, checked, backend_name = _run_scale(
            workload, stack, cases
        )
        per_trace = watch.total / cases
        if backend_name == "memory":
            per_trace_totals.append(per_trace)
        resweep_seconds.append(watch.seconds("resweep"))
        rows.append(
            (
                cases,
                backend_name,
                stored_rows,
                checked,
                f"{watch.seconds('simulate'):.3f}s",
                f"{watch.seconds('record'):.3f}s",
                f"{watch.seconds('correlate'):.3f}s",
                f"{watch.seconds('evaluate'):.3f}s",
                f"{watch.seconds('resweep'):.3f}s",
                f"{watch.total:.3f}s",
                f"{per_trace * 1000:.2f}ms",
                f"{_peak_rss_mb():.1f}MB",
            )
        )

    # Near-linear: per-trace cost stays within a small factor across a 16x
    # scale-up (a quadratic pipeline would blow this bound up).  Only the
    # memory-backend scales participate — the sqlite scales trade constant
    # factors for durability and are tracked by their own columns.
    assert max(per_trace_totals) / min(per_trace_totals) < 5.0

    columns = (
        "traces",
        "backend",
        "rows",
        "checks",
        "simulate",
        "record",
        "correlate",
        "evaluate",
        "resweep",
        "total",
        "per trace",
        "peak rss",
    )
    table = render_table(
        columns,
        rows,
        title="E7: pipeline phase times vs trace count (hiring workload)",
    )
    artifact(
        "E7 — provenance pipeline scaling",
        table,
        data={
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "per_trace_seconds": per_trace_totals,
            "resweep_seconds": resweep_seconds,
            "peak_rss_mb": _peak_rss_mb(),
        },
    )

    # Push-down smoke: on the SQLite backend the evaluator-style record
    # queries must compile to indexed WHERE clauses, not decode-then-filter
    # — asserted here so the tiny CI variant guards the fast path.
    sqlite_backend = SQLiteBackend(":memory:")
    sqlite_sim = workload.simulate(
        cases=min(TRACE_COUNTS), seed=7, backend=sqlite_backend
    )
    matched = sqlite_sim.store.select(
        RecordQuery(entity_type="jobrequisition")
    )
    assert matched and sqlite_backend.pushdown_queries > 0
    with_cols, total = sqlite_backend.columnar_coverage()
    assert with_cols == total > 0
    sqlite_sim.store.close()

    def record_and_correlate():
        simulator = ProcessSimulator(
            workload.build_spec(),
            workload.case_factory(ViolationPlan.none()),
            seed=7,
        )
        events = all_events(simulator.run(50))
        model = workload.build_model()
        store = ProvenanceStore(model=model)
        RecorderClient(store, workload.build_mapping(model)).process_all(
            events
        )
        analytics = CorrelationAnalytics(store, model)
        for rule in workload.correlation_rules():
            analytics.add_rule(rule)
        analytics.run()
        return len(store)

    benchmark(record_and_correlate)
