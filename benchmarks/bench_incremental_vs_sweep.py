"""Incremental re-check vs warm full re-sweep after a single-trace append.

The point of the materialized verdict table: once a store has been swept,
the next "are we still compliant?" question should cost what *changed*,
not what *exists*.  This bench stages exactly that situation — a store of
``CASES`` already-swept traces receives one new trace, then both
evaluation styles answer the same freshness question:

- **incremental** — ``run()`` on an evaluator with the materialized table:
  only the new trace's (control, trace) pairs evaluate, everything else is
  a table read,
- **warm sweep** — ``run()`` on an evaluator with context sharing but no
  verdict memoization (``incremental=False``): the strongest
  non-incremental baseline, since trace frames are cached and only the new
  trace's frame rebuilds, yet every pair still re-evaluates.

Both must return byte-identical rows (same normalization as the
execution-modes bench).  At full scale the incremental re-check must be at
least **5x** faster; under ``BAL_BENCH_SCALE=tiny`` (the CI smoke run) the
bar drops to "not slower", since fixed per-sweep overheads swamp ratios at
30 traces.

Benchmarked operation: one incremental re-check after a one-trace append.
"""

import dataclasses
import os
import time

from repro.controls.evaluator import ComplianceEvaluator
from repro.model.records import RelationRecord
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table

TINY = os.environ.get("BAL_BENCH_SCALE") == "tiny"
CASES = 30 if TINY else 300
ROUNDS = 5
MIN_SPEEDUP = 1.0 if TINY else 5.0


def _normalize(results):
    return [
        (
            r.control_name,
            r.trace_id,
            r.status.value,
            r.checked_at,
            tuple(r.alerts),
            tuple(sorted(r.bound_nodes.items())),
            tuple(r.touched_nodes),
        )
        for r in results
    ]


def _clone_trace(store, source_trace, new_trace):
    """A fresh trace: *source_trace*'s records re-identified under a new
    app id (edges rewired to the cloned endpoints)."""
    clones = []
    for record in store.records():
        if record.app_id != source_trace:
            continue
        changes = {
            "record_id": f"{record.record_id}::{new_trace}",
            "app_id": new_trace,
        }
        if isinstance(record, RelationRecord):
            changes["source_id"] = f"{record.source_id}::{new_trace}"
            changes["target_id"] = f"{record.target_id}::{new_trace}"
        clones.append(dataclasses.replace(record, **changes))
    return clones


def test_incremental_vs_sweep(benchmark, artifact):
    sim = hiring.workload().simulate(
        cases=CASES,
        seed=7,
        violations=ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2),
    )
    incremental = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
    )
    warm_sweep = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
        incremental=False,
    )
    # Cold sweeps: both sides materialize their frames (and the
    # incremental side its verdict table) before measurement starts.
    incremental.run(sim.controls)
    warm_sweep.run(sim.controls)

    template_trace = sim.store.app_ids()[0]
    rows = []
    incremental_times = []
    sweep_times = []
    for round_no in range(ROUNDS):
        new_trace = f"Incr{round_no:02d}"
        for record in _clone_trace(sim.store, template_trace, new_trace):
            sim.store.append(record)

        evals_before = incremental.materializer.refreshes
        start = time.perf_counter()
        incr_results = incremental.run(sim.controls)
        incr_sec = time.perf_counter() - start
        evals = incremental.materializer.refreshes - evals_before

        start = time.perf_counter()
        sweep_results = warm_sweep.run(sim.controls)
        sweep_sec = time.perf_counter() - start

        assert _normalize(incr_results) == _normalize(sweep_results), (
            f"incremental re-check diverged from the full sweep after "
            f"appending {new_trace}"
        )
        # Only the appended trace's pairs re-evaluated.
        assert evals == len(sim.controls)
        incremental_times.append(incr_sec)
        sweep_times.append(sweep_sec)
        rows.append(
            (
                new_trace,
                len(incr_results),
                evals,
                f"{incr_sec * 1000:.2f}ms",
                f"{sweep_sec * 1000:.2f}ms",
                f"{sweep_sec / incr_sec:.1f}x",
            )
        )

    median_incr = sorted(incremental_times)[ROUNDS // 2]
    median_sweep = sorted(sweep_times)[ROUNDS // 2]
    speedup = median_sweep / median_incr
    assert speedup >= MIN_SPEEDUP, (
        f"incremental re-check is only {speedup:.2f}x the warm full "
        f"sweep; required >= {MIN_SPEEDUP}x at {CASES} traces"
    )

    columns = (
        "appended trace",
        "result rows",
        "pairs evaluated",
        "incremental",
        "warm sweep",
        "speedup",
    )
    table = render_table(
        columns,
        rows,
        title=(
            f"Incremental re-check vs warm sweep — hiring, start "
            f"{CASES} traces, {len(sim.controls)} controls, +1 trace "
            f"per round"
        ),
    )
    artifact(
        "Incremental vs sweep",
        table,
        data={
            "cases": CASES,
            "controls": len(sim.controls),
            "rounds": ROUNDS,
            "scale": "tiny" if TINY else "full",
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "seconds": {
                "incremental_median": median_incr,
                "warm_sweep_median": median_sweep,
            },
            "speedup": speedup,
        },
    )

    benchmark(lambda: incremental.run(sim.controls))
