"""Ingestion fast path — record + correlate, before vs after.

PR 4's tentpole made the capture ingest path cheap twice over:

- **precompiled XML codecs** — the store encodes/decodes Table I rows with
  per-(CLASS, record-type) closures compiled from the data-model schema
  instead of building an ElementTree per row (``fast_codec=False``
  restores the ElementTree path, which stays in the tree as the
  differential oracle),
- **correlation planner** — ``CorrelationAnalytics`` classifies each rule
  and runs attribute joins as hash joins and co-trace rules as type-bucket
  products instead of the per-trace cartesian scan (``use_planner=False``
  restores the pairwise path).

This bench ingests the same simulated event stream through both
configurations and reports the record / correlate phase times, the
combined speedup, and the planner's pairs-considered reduction.  Both
paths must leave **byte-identical** store rows — the fast path changes
cost, never the Table I bytes.

At full scale (800 hiring traces) the combined record+correlate speedup
must be >= 2x (the PR's acceptance bar).  ``BAL_BENCH_SCALE=tiny`` runs
the CI smoke variant, which only insists the fast path is not slower.

Benchmarked operation: one fast-path record+correlate ingest at 50 traces.
"""

import os
import time

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.recorder import RecorderClient
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.store.store import ProvenanceStore

TINY = os.environ.get("BAL_BENCH_SCALE") == "tiny"
CASES = 50 if TINY else 800
REPEATS = 3
# Full scale must hit the PR's 2x acceptance bar; the tiny CI smoke run
# only guards the sign (fixed costs swamp ratios at 50 traces).
MIN_SPEEDUP = 1.0 if TINY else 2.0


def _events(workload, cases):
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(
            ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
        ),
        seed=7,
    )
    return all_events(simulator.run(cases))


def _ingest(workload, model, events, fast):
    """One full record+correlate ingest; returns (store, times, stats)."""
    store = ProvenanceStore(model=model, fast_codec=fast)
    started = time.perf_counter()
    RecorderClient(store, workload.build_mapping(model)).process_all(events)
    record_s = time.perf_counter() - started
    analytics = CorrelationAnalytics(store, model, use_planner=fast)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)
    started = time.perf_counter()
    analytics.run()
    correlate_s = time.perf_counter() - started
    return store, record_s, correlate_s, analytics.stats


def test_ingestion_fast_path(benchmark, artifact):
    workload = hiring.workload()
    model = workload.build_model()
    events = _events(workload, CASES)

    # Best-of-N per configuration: ingest cost is the measurement, and the
    # minimum is the least noise-contaminated sample of it.
    base_best = fast_best = None
    base_store = fast_store = None
    stats = None
    for __ in range(REPEATS):
        base_store, b_rec, b_cor, __stats = _ingest(
            workload, model, events, fast=False
        )
        fast_store, f_rec, f_cor, stats = _ingest(
            workload, model, events, fast=True
        )
        if base_best is None or b_rec + b_cor < sum(base_best):
            base_best = (b_rec, b_cor)
        if fast_best is None or f_rec + f_cor < sum(fast_best):
            fast_best = (f_rec, f_cor)

    # The fast path changes cost, never bytes: same Table I rows, same
    # order, through either codec and either correlation strategy.
    assert base_store.rows() == fast_store.rows(), (
        "fast-path ingest produced different store rows than the "
        "ElementTree + pairwise baseline"
    )

    base_total = sum(base_best)
    fast_total = sum(fast_best)
    speedup = base_total / fast_total
    assert speedup >= MIN_SPEEDUP, (
        f"fast-path ingest is only {speedup:.2f}x the baseline at "
        f"{CASES} traces; required >= {MIN_SPEEDUP}x"
    )

    columns = ("path", "record", "correlate", "total", "vs baseline")
    rows = [
        (
            "ElementTree codec + pairwise scan",
            f"{base_best[0]:.3f}s",
            f"{base_best[1]:.3f}s",
            f"{base_total:.3f}s",
            "1.00x",
        ),
        (
            "compiled codec + planned joins",
            f"{fast_best[0]:.3f}s",
            f"{fast_best[1]:.3f}s",
            f"{fast_total:.3f}s",
            f"{speedup:.2f}x",
        ),
    ]
    table = render_table(
        columns,
        rows,
        title=(
            f"Ingestion fast path — hiring, {CASES} traces, "
            f"{len(base_store)} rows "
            f"(pairs considered: {stats.pairs_considered} of "
            f"{stats.pairs_naive} naive, "
            f"reduction {stats.pairs_reduction:.3f})"
        ),
    )
    artifact(
        "Ingestion",
        table,
        data={
            "cases": CASES,
            "scale": "tiny" if TINY else "full",
            "rows_stored": len(base_store),
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "seconds": {
                "baseline_record": base_best[0],
                "baseline_correlate": base_best[1],
                "fast_record": fast_best[0],
                "fast_correlate": fast_best[1],
            },
            "speedup": speedup,
            "correlation_stats": stats.as_dict(),
        },
    )

    def fast_ingest_small():
        small = events if TINY else _events(workload, 50)
        store, __r, __c, __s = _ingest(workload, model, small, fast=True)
        return len(store)

    benchmark(fast_ingest_small)
