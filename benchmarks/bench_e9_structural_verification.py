"""E9 — structural (subgraph) verification vs full rule evaluation.

§II.C describes verification as pure subgraph existence: "The compliance
status of the internal control point is verified by checking if the edges
specified in the definition of internal control point exist."  The library
implements both styles; this experiment compares them on the paper's
worked control:

- **agreement** — for an edge-existential control the two styles must give
  identical verdicts on every trace,
- **limits** — for a value-comparing control (segregation of duties) the
  structural style extracts *no* required edges: it cannot express the
  check, which is exactly why the paper needs the rule system on top of
  the subgraph idea,
- **cost** — wall time of each style over the same store.

Benchmarked operation: the structural pass over all traces.
"""

from repro.brms.bal.compiler import BalCompiler
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.patterns import PatternVerifier, pattern_from_rule
from repro.metrics.detection import verdict_agreement
from repro.metrics.timing import Stopwatch
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table

CASES = 150


def test_e9_structural_verification(benchmark, artifact):
    workload = hiring.workload()
    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
    sim = workload.simulate(cases=CASES, seed=55, violations=plan)

    compiler = BalCompiler(sim.vocabulary)
    gm_rule = compiler.compile("gm-approval", hiring.GM_APPROVAL_CONTROL)
    sod_rule = compiler.compile("sod-approval", hiring.SOD_CONTROL)

    structural = pattern_from_rule(gm_rule, sim.vocabulary)
    assert {rel for __, rel in structural.required_relations} == {
        "approvalOf",
        "candidatesFor",
    }
    # The SOD control's essence is a value comparison: the structural
    # skeleton extracts nothing — the limit the rule engine exists for.
    sod_structural = pattern_from_rule(sod_rule, sim.vocabulary)
    assert sod_structural.required_relations == ()

    evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
    verifier = PatternVerifier(sim.store)

    watch = Stopwatch()
    with watch.span("rule engine"):
        engine_results = [
            r
            for r in evaluator.run(sim.controls)
            if r.control_name == "gm-approval"
        ]
    with watch.span("structural"):
        pattern_results = verifier.check_all_traces(structural)

    __, comparisons, disagreements = verdict_agreement(
        engine_results, pattern_results
    )
    assert comparisons == CASES
    assert disagreements == []

    rows = [
        (
            "rule engine",
            CASES,
            f"{watch.seconds('rule engine'):.4f}s",
            "edges + value comparisons + actions/alerts",
        ),
        (
            "structural (subgraph)",
            CASES,
            f"{watch.seconds('structural'):.4f}s",
            "edge existence only (no SOD-style value checks)",
        ),
    ]
    table = render_table(
        ("verification style", "traces", "time", "expressiveness"),
        rows,
        title=(
            "E9: the paper's worked control, verified both ways — "
            f"agreement {comparisons - len(disagreements)}/{comparisons}"
        ),
    )
    table += (
        "\n\nrequired subgraph of gm-approval: anchor jobrequisition"
        "[type=new] with incoming approvalOf and candidatesFor edges; "
        "sod-approval compiles to an empty edge set (value comparison — "
        "needs the rule engine)."
    )
    artifact(
        "E9 — structural vs rule-engine verification",
        table,
        data={
            "columns": [
                "verification style", "traces", "time", "expressiveness"
            ],
            "rows": [list(row) for row in rows],
            "agreement": comparisons - len(disagreements),
            "comparisons": comparisons,
        },
    )

    benchmark(lambda: verifier.check_all_traces(structural))
