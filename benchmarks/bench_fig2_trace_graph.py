"""F2 — Figure 2: a trace of the New Position Open process as a graph.

Regenerates the paper's Figure 2: the provenance graph of one execution
trace — person/task/data nodes, the correlation edges (actor, generates,
submitterOf, approvalOf, candidatesFor), and the internal-control custom
node "connected to Job Requisition, Approval Status and the Candidate List
data nodes".

Benchmarked operation: building the trace graph from the store (the
projection every compliance check starts with).
"""

from repro.controls.binding import CONTROL_NODE_TYPE, ControlBinder
from repro.controls.evaluator import ComplianceEvaluator
from repro.graph.build import build_trace_graph
from repro.graph.serialize import to_dot, trace_census
from repro.processes import hiring


def test_fig2_trace_graph(benchmark, artifact):
    workload = hiring.workload()
    sim = workload.simulate(cases=6, seed=4)
    # A new-position trace mirrors the paper's figure.
    trace_id = next(
        run.app_id
        for run in sim.runs
        if run.case["position_type"] == "new"
    )
    evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
    binder = ControlBinder(sim.store)
    result = evaluator.check_trace(sim.controls[0], trace_id)
    binder.bind(result)

    graph = benchmark(lambda: build_trace_graph(sim.store, trace_id))

    control_nodes = graph.nodes(entity_type=CONTROL_NODE_TYPE)
    assert len(control_nodes) == 1
    control_id = control_nodes[0].record_id
    checked = {
        graph.node(edge.target_id).entity_type
        for edge in graph.edges_from(control_id, "checks")
    }
    # The paper's three data nodes.
    assert {"jobrequisition", "approvalstatus", "candidatelist"} <= checked

    census = graph.census()
    assert census["node:Resource"] >= 2
    assert census["node:Task"] >= 3
    assert census["node:Data"] >= 3
    # §II.C's full relation inventory: "actor, generates, manager, next
    # task, submitterOf, approvalOf".
    assert census["edge:submitterOf"] == 1
    assert census["edge:approvalOf"] == 1
    assert census["edge:actor"] >= 2
    assert census["edge:generates"] == 1
    assert census["edge:managerOf"] >= 1
    assert census["edge:nextTask"] >= 2

    text = "\n".join(trace_census(graph))
    text += (
        "\n\ncontrol point "
        + control_id
        + " checks: "
        + ", ".join(sorted(checked))
    )
    text += "\n\n" + to_dot(graph)
    artifact(
        "FIGURE 2 — trace graph with the deployed internal control point",
        text,
        data={
            "census": census,
            "control_id": control_id,
            "checked_types": sorted(checked),
        },
    )
