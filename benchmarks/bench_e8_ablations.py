"""E8 — ablations of the design choices DESIGN.md calls out.

Three knobs, each switched off in isolation on the hiring workload:

1. **store secondary indexes** (DESIGN.md decision 1) — with indexing off,
   every control evaluation scans the whole table; time the compliance
   pass both ways,
2. **vocabulary lookup cache** (decision 3) — phrase → member resolution
   is the hottest call of rule evaluation; compare lookup counts, hit
   rates, the end-to-end pass, and the isolated lookup path,
3. **correlation rule set** (decision 2: controls are subgraphs, so the
   edges correlation produces are load-bearing) — drop the
   ``submitter-by-email`` rule and show which verdicts silently change.

Expected shape: (1) is a clear end-to-end speedup with identical verdicts;
(2) gives identical verdicts with a >99% hit rate — the win is on the
isolated lookup path (at this BOM size the end-to-end pass is within
noise, which the table reports honestly); (3) changes verdicts — the
graph, not the raw rows, is what controls see.

Benchmarked operation: the indexed compliance pass (the default config).
"""

from repro.controls.evaluator import ComplianceEvaluator
from repro.metrics.detection import verdict_agreement
from repro.metrics.timing import Stopwatch
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table

CASES = 150


def _simulate(indexed=True, cache=True, seed=77):
    workload = hiring.workload()
    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
    return workload.simulate(
        cases=CASES,
        seed=seed,
        violations=plan,
        indexed=indexed,
        cache_vocabulary=cache,
    )


def _timed_pass(sim, repeats=3, execution_mode="compiled"):
    evaluator = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary, execution_mode=execution_mode
    )
    watch = Stopwatch()
    results = None
    with watch.span("pass"):
        for __ in range(repeats):
            results = evaluator.run(sim.controls)
    return watch.seconds("pass") / repeats, results


def test_e8_ablations(benchmark, artifact):
    lines = []

    # -- ablation 1: store indexes ------------------------------------------
    indexed_sim = _simulate(indexed=True)
    scan_sim = _simulate(indexed=False)
    indexed_sec, indexed_results = _timed_pass(indexed_sim)
    scan_sec, scan_results = _timed_pass(scan_sim)
    __, comparisons, disagreements = verdict_agreement(
        indexed_results, scan_results
    )
    assert disagreements == []
    assert comparisons == len(indexed_results)
    speedup = scan_sec / indexed_sec
    assert speedup > 1.0, "index must not slow the compliance pass down"
    lines.append(
        render_table(
            ("store config", "pass time", "speedup", "verdicts"),
            [
                ("indexed", f"{indexed_sec:.4f}s", f"{speedup:.1f}x", "ref"),
                ("full scan", f"{scan_sec:.4f}s", "1.0x", "identical"),
            ],
            title=f"E8.1: secondary indexes ({CASES} traces)",
        )
    )

    # -- ablation 2: vocabulary cache ------------------------------------------
    # Interpreted execution: the closure back end resolves vocabulary
    # members once at lowering time, so only the interpreter still issues
    # the per-evaluation lookups this cache exists for.
    cached_sim = _simulate(cache=True)
    uncached_sim = _simulate(cache=False)
    cached_sec, cached_results = _timed_pass(
        cached_sim, execution_mode="interpret"
    )
    uncached_sec, uncached_results = _timed_pass(
        uncached_sim, execution_mode="interpret"
    )
    __, __, disagreements = verdict_agreement(
        cached_results, uncached_results
    )
    assert disagreements == []
    hit_rate = (
        cached_sim.vocabulary.cache_hits / cached_sim.vocabulary.lookups
    )
    assert hit_rate > 0.5, "rule evaluation should mostly hit the cache"
    assert uncached_sim.vocabulary.cache_hits == 0
    cached_lookups = cached_sim.vocabulary.lookups
    uncached_lookups = uncached_sim.vocabulary.lookups

    # Isolated lookup path: repeated phrase resolutions, both ways.
    lookup_watch = Stopwatch()
    repeats = 20000
    with lookup_watch.span("cached"):
        for __ in range(repeats):
            cached_sim.vocabulary.find_member(
                "Job Requisition", "general manager"
            )
    with lookup_watch.span("uncached"):
        for __ in range(repeats):
            uncached_sim.vocabulary.find_member(
                "Job Requisition", "general manager"
            )
    cached_lookup = lookup_watch.seconds("cached")
    uncached_lookup = lookup_watch.seconds("uncached")
    assert cached_lookup < uncached_lookup, (
        "the cache must win on the raw lookup path"
    )
    lines.append(
        render_table(
            ("vocabulary config", "pass time", "lookups", "hit rate",
             f"{repeats} raw lookups"),
            [
                (
                    "cached",
                    f"{cached_sec:.4f}s",
                    cached_lookups,
                    f"{hit_rate:.1%}",
                    f"{cached_lookup:.4f}s",
                ),
                (
                    "uncached",
                    f"{uncached_sec:.4f}s",
                    uncached_lookups,
                    "0.0%",
                    f"{uncached_lookup:.4f}s",
                ),
            ],
            title="E8.2: vocabulary lookup cache (interpreted pass)",
        )
    )

    # -- ablation 3: correlation rules are load-bearing -------------------------
    full_sim = _simulate(seed=78)
    full_results = ComplianceEvaluator(
        full_sim.store, full_sim.xom, full_sim.vocabulary
    ).run(full_sim.controls)

    from repro.processes.workload import Workload

    base = hiring.workload()
    reduced = Workload(
        name=base.name,
        build_model=base.build_model,
        build_spec=base.build_spec,
        case_factory=base.case_factory,
        build_mapping=base.build_mapping,
        correlation_rules=lambda: [
            rule
            for rule in hiring.correlation_rules()
            if rule.name != "submitter-by-email"
        ],
        control_specs=base.control_specs,
        ground_truth=base.ground_truth,
        violation_kinds=base.violation_kinds,
    )
    reduced_sim = reduced.simulate(
        cases=CASES,
        seed=78,
        violations=ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2),
    )
    reduced_results = ComplianceEvaluator(
        reduced_sim.store, reduced_sim.xom, reduced_sim.vocabulary
    ).run(reduced_sim.controls)
    __, comparisons, disagreements = verdict_agreement(
        full_results, reduced_results
    )
    flipped = [key for key in disagreements if key[0] == "submitter-known"]
    assert flipped, "dropping submitterOf correlation must flip verdicts"
    assert all(key[0] == "submitter-known" for key in disagreements)
    lines.append(
        render_table(
            ("correlation rules", "pairs compared", "verdicts changed",
             "which control"),
            [
                ("all rules", comparisons, 0, "-"),
                (
                    "without submitter-by-email",
                    comparisons,
                    len(disagreements),
                    "submitter-known (every trace now violated)",
                ),
            ],
            title="E8.3: correlation rules are load-bearing",
        )
    )

    artifact(
        "E8 — ablations",
        "\n\n".join(lines),
        data={
            "correlation_pairs_compared": comparisons,
            "correlation_verdicts_changed": len(disagreements),
            "sections": len(lines),
        },
    )

    sim = _simulate(indexed=True)
    evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
    benchmark(lambda: evaluator.run(sim.controls))
