"""Benchmark harness plumbing.

Each bench regenerates one paper artifact (table/figure) or one derived
experiment's rows.  The regenerated text is:

- recorded via the ``artifact`` fixture,
- written to ``benchmarks/out/<slug>.txt``,
- printed in the pytest terminal summary (so
  ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
  the rows alongside pytest-benchmark's timing table).
"""

from __future__ import annotations

import os
import re
from typing import List, Tuple

import pytest

_ARTIFACTS: List[Tuple[str, str]] = []
_OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def _slug(title: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")[:60]


@pytest.fixture
def artifact():
    """Record one regenerated artifact: ``artifact(title, text)``."""

    def record(title: str, text: str) -> None:
        _ARTIFACTS.append((title, text))
        os.makedirs(_OUT_DIR, exist_ok=True)
        path = os.path.join(_OUT_DIR, f"{_slug(title)}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"{title}\n\n{text}\n")

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ARTIFACTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REGENERATED PAPER ARTIFACTS & EXPERIMENT ROWS")
    write("(also written to benchmarks/out/)")
    write("=" * 78)
    for title, text in _ARTIFACTS:
        write("")
        write(f"### {title}")
        for line in text.splitlines():
            write(line)
