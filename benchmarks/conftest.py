"""Benchmark harness plumbing.

Each bench regenerates one paper artifact (table/figure) or one derived
experiment's rows.  The regenerated text is:

- recorded via the ``artifact`` fixture,
- written to ``benchmarks/out/<slug>.txt`` (human-readable) and
  ``benchmarks/out/<slug>.json`` (machine-readable: the same title/text
  plus whatever structured ``data`` payload the bench passes),
- printed in the pytest terminal summary (so
  ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
  the rows alongside pytest-benchmark's timing table).

The headline experiments additionally snapshot to the repo root
(``BENCH_e5.json``, ``BENCH_e7.json``) so a checkout carries its latest
measured numbers without digging into ``benchmarks/out/``.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, List, Optional, Tuple

import pytest

_ARTIFACTS: List[Tuple[str, str]] = []
_OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Root snapshot file → slug prefixes collected into it.  Snapshots merge
# (keyed by slug), so partial benchmark runs update their own entry
# without clobbering the others'.
_ROOT_SNAPSHOTS = {
    "BENCH_e5.json": ("e5-", "bal-execution-modes"),
    "BENCH_e7.json": ("e7-",),
}


def _slug(title: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")[:60]


def _canonical(value: Any) -> Any:
    """Round floats to 6 places, recursively, so re-measured artifacts
    only diff when a number meaningfully moved."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {key: _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def _dump(payload: Any) -> str:
    """The one JSON shape every artifact file uses: sorted keys, fixed
    float precision, trailing newline — byte-stable across runs that
    measured the same numbers."""
    return json.dumps(
        _canonical(payload), indent=2, sort_keys=True, default=str
    ) + "\n"


@pytest.fixture
def artifact():
    """Record one regenerated artifact: ``artifact(title, text, data=...)``.

    ``data`` is an optional JSON-serializable payload (typically
    ``{"columns": [...], "rows": [...]}``) mirroring the rendered table so
    downstream tooling can diff numbers without re-parsing text.
    """

    def record(title: str, text: str, data: Optional[Any] = None) -> None:
        _ARTIFACTS.append((title, text))
        os.makedirs(_OUT_DIR, exist_ok=True)
        slug = _slug(title)
        path = os.path.join(_OUT_DIR, f"{slug}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"{title}\n\n{text}\n")
        payload = {"title": title, "slug": slug, "data": data, "text": text}
        with open(
            os.path.join(_OUT_DIR, f"{slug}.json"), "w", encoding="utf-8"
        ) as handle:
            handle.write(_dump(payload))
        for snapshot, prefixes in _ROOT_SNAPSHOTS.items():
            if not slug.startswith(tuple(prefixes)):
                continue
            snapshot_path = os.path.join(_REPO_ROOT, snapshot)
            merged = {}
            try:
                with open(snapshot_path, encoding="utf-8") as handle:
                    merged = json.loads(handle.read()).get("artifacts", {})
            except (OSError, ValueError):
                pass
            merged[slug] = payload
            with open(snapshot_path, "w", encoding="utf-8") as handle:
                handle.write(_dump({"artifacts": merged}))

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ARTIFACTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REGENERATED PAPER ARTIFACTS & EXPERIMENT ROWS")
    write("(also written to benchmarks/out/)")
    write("=" * 78)
    for title, text in _ARTIFACTS:
        write("")
        write(f"### {title}")
        for line in text.splitlines():
            write(line)
