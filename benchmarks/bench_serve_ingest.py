"""Served ingestion: N recorder client processes against ``repro serve``.

The service runtime turns the batch pipeline into a long-lived process:
recorder clients stream events over HTTP while the runtime types, dedups,
and correlates.  Over a sharded store the runtime splits into per-shard
**ingest lanes** — each shard's recorder pipeline, dedup state, and
incremental correlation run under that lane's own lock, and events route
to lanes by the stable APPID hash — so clients streaming different
traces do not serialize on each other.  This bench forks 1..N client
processes, each streaming its partition of the hiring event stream to
one served runtime over the stdlib keep-alive HTTP transport, and
compares against the in-process baseline (a single direct
``RecorderClient`` over the same store, no wire, no service).

Reported per configuration:

- wall-clock ingest time and events/s,
- **scaling efficiency** — events/s at N clients ÷ events/s at 1 client
  (>1 means concurrent clients actually bought throughput),
- **lane occupancy** — each lane's share of routed events, showing how
  evenly the APPID hash spread the stream over the shards,
- **freshness lag** — how stale a reader is at the moment the writers
  stop: the time for one sync + verdicts round to bring the served table
  current over everything just ingested.

Correctness is checked once on the largest-client-count database: the
verdicts served at the end must be byte-identical to a cold sweep of the
same sharded SQLite files by a fresh evaluator.

The artifact embeds the previous (pre-lane, single-lock) measurement of
this bench as ``baseline_pr8``, so the before/after lives in one file.
The multi-client speedup assertion only arms on a machine with enough
cores to show it (the lanes still funnel into one Python process).

Benchmarked operation: one single-client served ingest at 8 traces.
"""

import json
import multiprocessing
import os
import threading
import time

from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.service import ComplianceHTTPServer, ComplianceRuntime, HTTPTransport
from repro.store.backends import ShardedBackend
from repro.store.store import ProvenanceStore

TINY = os.environ.get("BAL_BENCH_SCALE") == "tiny"
CASES = 12 if TINY else 96
CLIENT_COUNTS = (1, 2) if TINY else (1, 2, 4)
BATCH = 10
SHARDS = 4

_SNAPSHOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_e7.json",
)
_SLUG = "e7-serve-ingest-throughput"


def _events(workload, cases):
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(
            ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
        ),
        seed=11,
    )
    return all_events(simulator.run(cases))


def _partition(events, clients):
    """Whole traces round-robin across clients: per-trace event order is
    preserved inside exactly one client's stream."""
    trace_ids = sorted({event.app_id for event in events})
    owner = {
        trace: index % clients for index, trace in enumerate(trace_ids)
    }
    return [
        [e for e in events if owner[e.app_id] == index]
        for index in range(clients)
    ]


def _client_main(endpoint, events):
    """One recorder client process streaming its partition in batches."""
    client = RecorderClient(transport=HTTPTransport(endpoint))
    for start in range(0, len(events), BATCH):
        client.process_all(events[start:start + BATCH])


def _serve(workload, db):
    """A served runtime over a *SHARDS*-way sharded *db* on an ephemeral
    port; returns (server, thread).  ``threadsafe`` because each lane
    forks its own connection over its shard file and HTTP handler
    threads share the global fold/read handle."""
    store = ProvenanceStore(
        model=workload.build_model(),
        backend=ShardedBackend.for_sqlite(db, SHARDS, threadsafe=True),
    )
    sim = workload.attach(store)
    runtime = ComplianceRuntime.from_simulation(
        sim, workload=workload, owns_store=True
    )
    runtime.open()
    assert runtime.sharded, "bench expects the lane-parallel runtime"
    # ``repro serve`` always runs the background refresh loop; without it
    # the whole burst's fold cost lands on the first post-burst reader
    # and the freshness number measures a deployment nobody runs.  The
    # tick both folds lane output and refreshes the touched verdicts, so
    # it bounds how stale the first post-burst read can be.
    runtime.start_background(interval=0.1)
    server = ComplianceHTTPServer(runtime)
    thread = threading.Thread(
        target=server.serve_until_shutdown, daemon=True
    )
    thread.start()
    return server, thread


def _run_served(workload, db, events, clients, expected_traces):
    """Fork *clients* processes against one served runtime; returns
    (ingest_seconds, freshness_seconds, served_verdicts_json, lanes)."""
    server, thread = _serve(workload, db)
    endpoint = server.endpoint
    try:
        partitions = _partition(events, clients)
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(
                target=_client_main, args=(endpoint, partition)
            )
            for partition in partitions
        ]
        started = time.perf_counter()
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        ingest = time.perf_counter() - started
        for process in processes:
            assert process.exitcode == 0, (
                f"client exited with {process.exitcode}"
            )
        # Freshness lag: the writers just stopped; how long until a
        # reader sees a verdict table covering everything they sent?
        transport = HTTPTransport(endpoint)
        caught_up = time.perf_counter()
        transport.sync()
        payloads = transport.verdicts()
        freshness = time.perf_counter() - caught_up
        assert len({p["trace"] for p in payloads}) == expected_traces
        lanes = transport.stats().get("lanes") or []
        transport.close()
        return ingest, freshness, json.dumps(payloads), lanes
    finally:
        server.request_shutdown()
        thread.join(timeout=60.0)


def _run_embedded(workload, events):
    """The no-service baseline: direct in-process ingest + full sweep."""
    model = workload.build_model()
    mapping = workload.build_mapping(model)
    store = ProvenanceStore(model=model)
    started = time.perf_counter()
    RecorderClient(store, mapping).process_all(events)
    ingest = time.perf_counter() - started
    sim = workload.attach(store)
    runtime = ComplianceRuntime.from_simulation(sim)
    runtime.open()
    caught_up = time.perf_counter()
    runtime.verdicts()
    freshness = time.perf_counter() - caught_up
    runtime.shutdown()
    store.close()
    return ingest, freshness


def _cold_sweep(workload, db):
    """Fresh store + evaluator over the served shard files: the parity
    oracle."""
    store = ProvenanceStore(
        model=workload.build_model(),
        backend=ShardedBackend.for_sqlite(db, SHARDS),
    )
    sim = workload.attach(store)
    oracle = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
    payloads = json.dumps(
        [result.to_payload() for result in oracle.run(sim.controls)]
    )
    store.close()
    return payloads


def _occupancy(lanes, total_events):
    """Each lane's share of routed events, as ``28/26/24/22%``."""
    if not lanes or not total_events:
        return "n/a"
    shares = [
        round(100 * lane.get("events_routed", 0) / total_events)
        for lane in sorted(lanes, key=lambda lane: lane.get("lane", 0))
    ]
    return "/".join(str(share) for share in shares) + "%"


def _pr8_baseline():
    """The pre-lane measurement this artifact carries as its before.

    Reads the committed root snapshot's entry for this bench; once that
    entry is one of ours, the original baseline rides inside it as
    ``baseline_pr8`` and is propagated unchanged.
    """
    try:
        with open(_SNAPSHOT, encoding="utf-8") as handle:
            entry = json.load(handle)["artifacts"][_SLUG]["data"]
    except (OSError, ValueError, KeyError):
        return None
    if "baseline_pr8" in entry:
        return entry["baseline_pr8"]
    return entry


def test_serve_ingest_throughput(benchmark, artifact, tmp_path):
    workload = hiring.workload()
    events = _events(workload, CASES)

    base_ingest, base_freshness = _run_embedded(workload, events)
    results = {}
    served_json = {}
    occupancy = {}
    for clients in CLIENT_COUNTS:
        db = str(tmp_path / f"serve-{clients}.db")
        ingest, freshness, payloads, lanes = _run_served(
            workload, db, events, clients, CASES
        )
        results[clients] = (ingest, freshness)
        served_json[clients] = (db, payloads)
        occupancy[clients] = _occupancy(lanes, len(events))

    # Parity: what the busiest server ended up serving is exactly what a
    # cold sweep of its shard files computes.
    widest = CLIENT_COUNTS[-1]
    db, payloads = served_json[widest]
    assert payloads == _cold_sweep(workload, db), (
        "served verdicts diverge from a cold sweep of the same database"
    )

    single = len(events) / results[CLIENT_COUNTS[0]][0]
    scaling = {
        clients: (len(events) / results[clients][0]) / single
        for clients in CLIENT_COUNTS
    }
    # Lane-parallel ingest should buy real throughput once there are
    # cores to run the lanes on; on a starved box the lanes still work,
    # they just time-slice, so the gate only arms where it can pass.
    if not TINY and 4 in results and (os.cpu_count() or 1) >= 4:
        assert scaling[4] >= 2.0, (
            f"4 served clients reached only {scaling[4]:.2f}x the "
            f"single-client throughput on {os.cpu_count()} cpus"
        )

    columns = (
        "clients", "transport", "ingest", "events/s",
        "scaling eff", "lane occupancy", "freshness lag",
    )
    rows = [
        (
            "1", "embedded", f"{base_ingest:.3f}s",
            f"{len(events) / base_ingest:.0f}",
            "-", "-", f"{base_freshness * 1000:.0f}ms",
        )
    ]
    for clients in CLIENT_COUNTS:
        ingest, freshness = results[clients]
        rows.append(
            (
                str(clients), "http", f"{ingest:.3f}s",
                f"{len(events) / ingest:.0f}",
                f"{scaling[clients]:.2f}x",
                occupancy[clients],
                f"{freshness * 1000:.0f}ms",
            )
        )
    table = render_table(
        columns,
        rows,
        title=(
            f"Served ingest — hiring, {CASES} traces, "
            f"{len(events)} events, batch {BATCH}, {SHARDS} lanes, "
            f"{os.cpu_count()} cpu(s)"
        ),
    )
    artifact(
        "E7 serve ingest throughput",
        table,
        data={
            "cases": CASES,
            "events": len(events),
            "batch": BATCH,
            "shards": SHARDS,
            "cpus": os.cpu_count(),
            "scale": "tiny" if TINY else "full",
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "embedded_seconds": base_ingest,
            "served_seconds": {
                str(clients): results[clients][0]
                for clients in CLIENT_COUNTS
            },
            "freshness_seconds": {
                str(clients): results[clients][1]
                for clients in CLIENT_COUNTS
            },
            "scaling_efficiency": {
                str(clients): scaling[clients]
                for clients in CLIENT_COUNTS
            },
            "lane_occupancy": {
                str(clients): occupancy[clients]
                for clients in CLIENT_COUNTS
            },
            "verdicts_identical": True,
            "baseline_pr8": _pr8_baseline(),
        },
    )

    def single_client_small(events=_events(workload, 8)):
        db = str(tmp_path / f"bench-{time.monotonic_ns()}.db")
        return _run_served(workload, db, events, 1, 8)[0]

    benchmark(single_client_small)
