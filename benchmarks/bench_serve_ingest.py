"""Served ingestion: N recorder client processes against ``repro serve``.

The service runtime turns the batch pipeline into a long-lived process:
recorder clients stream events over HTTP while the runtime types, dedups,
correlates, and keeps verdicts fresh behind one lock.  This bench forks
1..N client processes, each streaming its partition of the hiring event
stream to one served runtime over the stdlib HTTP transport, and compares
against the in-process baseline (a single direct ``RecorderClient`` over
the same store, no wire, no service).

Reported per configuration:

- wall-clock ingest time and events/s,
- **freshness lag** — how stale a reader is at the moment the writers
  stop: the time for one sync + verdicts round to bring the served table
  current over everything just ingested (reads drain dirty pairs, so
  this is the price of the first post-burst query).

Correctness is checked once on the largest-client-count database: the
verdicts served at the end must be byte-identical to a cold sweep of the
same SQLite file by a fresh evaluator.

The HTTP path pays per-request JSON + socket overhead and every batch
funnels through the runtime's lock, so served ingest is expected to trail
the embedded baseline; the bench asserts it stays within a sane factor
rather than chasing a speedup.

Benchmarked operation: one single-client served ingest at 8 traces.
"""

import json
import multiprocessing
import os
import threading
import time

from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.service import ComplianceHTTPServer, ComplianceRuntime, HTTPTransport
from repro.store.backends import SQLiteBackend
from repro.store.store import ProvenanceStore

TINY = os.environ.get("BAL_BENCH_SCALE") == "tiny"
CASES = 12 if TINY else 96
CLIENT_COUNTS = (1, 2) if TINY else (1, 2, 4)
BATCH = 10


def _events(workload, cases):
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(
            ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2)
        ),
        seed=11,
    )
    return all_events(simulator.run(cases))


def _partition(events, clients):
    """Whole traces round-robin across clients: per-trace event order is
    preserved inside exactly one client's stream."""
    trace_ids = sorted({event.app_id for event in events})
    owner = {
        trace: index % clients for index, trace in enumerate(trace_ids)
    }
    return [
        [e for e in events if owner[e.app_id] == index]
        for index in range(clients)
    ]


def _client_main(endpoint, events):
    """One recorder client process streaming its partition in batches."""
    client = RecorderClient(transport=HTTPTransport(endpoint))
    for start in range(0, len(events), BATCH):
        client.process_all(events[start:start + BATCH])


def _serve(workload, db):
    """A served runtime over *db* on an ephemeral port; returns
    (server, thread).  ``threadsafe`` because HTTP handler threads share
    the SQLite connection behind the runtime's lock."""
    store = ProvenanceStore(
        model=workload.build_model(),
        backend=SQLiteBackend(db, threadsafe=True),
    )
    sim = workload.attach(store)
    runtime = ComplianceRuntime.from_simulation(
        sim, workload=workload, owns_store=True
    )
    runtime.open()
    server = ComplianceHTTPServer(runtime)
    thread = threading.Thread(
        target=server.serve_until_shutdown, daemon=True
    )
    thread.start()
    return server, thread


def _run_served(workload, db, events, clients, expected_traces):
    """Fork *clients* processes against one served runtime; returns
    (ingest_seconds, freshness_seconds, served_verdicts_json)."""
    server, thread = _serve(workload, db)
    endpoint = server.endpoint
    try:
        partitions = _partition(events, clients)
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(
                target=_client_main, args=(endpoint, partition)
            )
            for partition in partitions
        ]
        started = time.perf_counter()
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        ingest = time.perf_counter() - started
        for process in processes:
            assert process.exitcode == 0, (
                f"client exited with {process.exitcode}"
            )
        # Freshness lag: the writers just stopped; how long until a
        # reader sees a verdict table covering everything they sent?
        transport = HTTPTransport(endpoint)
        caught_up = time.perf_counter()
        transport.sync()
        payloads = transport.verdicts()
        freshness = time.perf_counter() - caught_up
        assert len({p["trace"] for p in payloads}) == expected_traces
        return ingest, freshness, json.dumps(payloads)
    finally:
        server.request_shutdown()
        thread.join(timeout=60.0)


def _run_embedded(workload, events):
    """The no-service baseline: direct in-process ingest + full sweep."""
    model = workload.build_model()
    mapping = workload.build_mapping(model)
    store = ProvenanceStore(model=model)
    started = time.perf_counter()
    RecorderClient(store, mapping).process_all(events)
    ingest = time.perf_counter() - started
    sim = workload.attach(store)
    runtime = ComplianceRuntime.from_simulation(sim)
    runtime.open()
    caught_up = time.perf_counter()
    runtime.verdicts()
    freshness = time.perf_counter() - caught_up
    runtime.shutdown()
    store.close()
    return ingest, freshness


def _cold_sweep(workload, db):
    """Fresh store + evaluator over the served file: the parity oracle."""
    store = ProvenanceStore(
        model=workload.build_model(), backend=SQLiteBackend(db)
    )
    sim = workload.attach(store)
    oracle = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
    payloads = json.dumps(
        [result.to_payload() for result in oracle.run(sim.controls)]
    )
    store.close()
    return payloads


def test_serve_ingest_throughput(benchmark, artifact, tmp_path):
    workload = hiring.workload()
    events = _events(workload, CASES)

    base_ingest, base_freshness = _run_embedded(workload, events)
    results = {}
    served_json = {}
    for clients in CLIENT_COUNTS:
        db = str(tmp_path / f"serve-{clients}.db")
        ingest, freshness, payloads = _run_served(
            workload, db, events, clients, CASES
        )
        results[clients] = (ingest, freshness)
        served_json[clients] = (db, payloads)

    # Parity: what the busiest server ended up serving is exactly what a
    # cold sweep of its database computes.
    widest = CLIENT_COUNTS[-1]
    db, payloads = served_json[widest]
    assert payloads == _cold_sweep(workload, db), (
        "served verdicts diverge from a cold sweep of the same database"
    )

    columns = (
        "clients", "transport", "ingest", "events/s", "freshness lag"
    )
    rows = [
        (
            "1", "embedded", f"{base_ingest:.3f}s",
            f"{len(events) / base_ingest:.0f}",
            f"{base_freshness * 1000:.0f}ms",
        )
    ]
    for clients in CLIENT_COUNTS:
        ingest, freshness = results[clients]
        rows.append(
            (
                str(clients), "http", f"{ingest:.3f}s",
                f"{len(events) / ingest:.0f}",
                f"{freshness * 1000:.0f}ms",
            )
        )
    table = render_table(
        columns,
        rows,
        title=(
            f"Served ingest — hiring, {CASES} traces, "
            f"{len(events)} events, batch {BATCH}, "
            f"{os.cpu_count()} cpu(s)"
        ),
    )
    artifact(
        "E7 serve ingest throughput",
        table,
        data={
            "cases": CASES,
            "events": len(events),
            "batch": BATCH,
            "cpus": os.cpu_count(),
            "scale": "tiny" if TINY else "full",
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "embedded_seconds": base_ingest,
            "served_seconds": {
                str(clients): results[clients][0]
                for clients in CLIENT_COUNTS
            },
            "freshness_seconds": {
                str(clients): results[clients][1]
                for clients in CLIENT_COUNTS
            },
            "verdicts_identical": True,
        },
    )

    def single_client_small(events=_events(workload, 8)):
        db = str(tmp_path / f"bench-{time.monotonic_ns()}.db")
        return _run_served(workload, db, events, 1, 8)[0]

    benchmark(single_client_small)
