"""F3 — Figure 3 / §II.D: steps of creating and editing internal controls.

Regenerates the paper's authoring pipeline artifacts for the
``jobrequisition`` class:

1. the XOM class listing (``package mycompany; public class
   jobrequisition …``),
2. the BOM entry lines (``mycompany.jobrequisition.managergen
   #phrase.navigation = {general manager} of {this}`` — the exact entries
   §II.D lists),
3. the rule editor's vocabulary drop-down,
4. the worked internal control parsed, compiled, and rendered back.

Benchmarked operation: the full verbalization pipeline (XOM generation →
BOM → vocabulary), which the paper argues is the one-time cost replacing
per-control IT work.
"""

from repro.brms.bal.compiler import BalCompiler
from repro.brms.verbalization import Verbalizer
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.processes import hiring


def test_fig3_verbalization(benchmark, artifact):
    model = hiring.build_model()

    def verbalize():
        xom = ExecutableObjectModel(model, package="mycompany")
        bom = Verbalizer(xom).verbalize()
        return xom, Vocabulary(bom)

    xom, vocabulary = benchmark(verbalize)

    entries = vocabulary.bom.dump_entries()
    assert (
        "mycompany.jobrequisition#concept.label = Job Requisition" in entries
    )
    assert (
        "mycompany.jobrequisition.managergen#phrase.navigation = "
        "{general manager} of {this}" in entries
    )
    assert (
        "mycompany.jobrequisition.reqid#phrase.navigation = "
        "{requisition ID} of {this}" in entries
    )
    assert (
        "mycompany.jobrequisition.position#phrase.navigation = "
        "{offered position} of {this}" in entries
    )
    assert (
        "mycompany.jobrequisition.type#phrase.navigation = "
        "{position type} of {this}" in entries
    )

    compiled = BalCompiler(vocabulary).compile(
        "gm-approval", hiring.GM_APPROVAL_CONTROL
    )
    assert compiled.concepts == ("Job Requisition",)

    parts = [
        "STEP 1 — XOM class generated from the provenance data model:",
        xom.render_class_source("jobrequisition"),
        "",
        "STEP 2 — BOM-to-XOM mapping entries (the paper's listing):",
    ]
    parts.extend(e for e in entries if "jobrequisition" in e)
    parts.append("")
    parts.append("STEP 3 — rule-editor drop-down for Job Requisition:")
    menus = vocabulary.dropdown_entries()
    parts.extend(f"  - {item}" for item in menus["Job Requisition"])
    parts.append("")
    parts.append("STEP 4 — the worked internal control, compiled + rendered:")
    parts.append(compiled.rule.render())
    artifact(
        "FIGURE 3 — XOM -> BOM -> vocabulary -> internal control",
        "\n".join(parts),
        data={
            "concepts": list(compiled.concepts),
            "dropdown": menus["Job Requisition"],
            "rendered_rule": compiled.rule.render(),
        },
    )
