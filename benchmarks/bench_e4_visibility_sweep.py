"""E4 — detection quality vs process visibility.

Operationalizes §II's "the efficacy of internal controls depends on the
visibility of the underlying process".  For capture rates 0.2 … 1.0 on the
hiring workload (20% injected violation rate per kind), three checkers are
scored against the injected ground truth:

- the vocabulary-authored BAL controls (the paper's approach),
- the hardcoded IT controls (must agree verdict-for-verdict with BAL),
- token replay (control-flow only; the process-mining-style comparator).

Expected shape: F1 rises monotonically-ish with visibility; BAL ==
hardcoded at every point; replay is strictly weaker at full visibility
(it cannot see data-level violations) and noisy under partial visibility.

Benchmarked operation: one full BAL compliance pass at full visibility.
"""

from repro.baselines.hardcoded import hiring_hardcoded_controls
from repro.baselines.replay import hiring_replay_checker
from repro.controls.evaluator import ComplianceEvaluator
from repro.metrics.detection import (
    detection_report,
    trace_level_detection,
    verdict_agreement,
)
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import VisibilityPolicy
from repro.reporting.tables import render_table

CASES = 150
RATE = 0.2
SWEEP = (0.2, 0.4, 0.6, 0.8, 1.0)


def _simulate(visibility):
    workload = hiring.workload()
    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), RATE)
    sim = workload.simulate(
        cases=CASES, seed=101, violations=plan, visibility=visibility
    )
    truth = sim.ground_truth_for(workload.ground_truth)
    return sim, truth


def test_e4_visibility_sweep(benchmark, artifact):
    rows = []
    bal_f1_series = []
    for rate in SWEEP:
        sim, truth = _simulate(VisibilityPolicy.uniform(rate, seed=5))
        evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
        bal_results = evaluator.run(sim.controls)
        hard_results = []
        for control in hiring_hardcoded_controls():
            hard_results.extend(control.evaluate_all(sim.store))
        __, comparisons, disagreements = verdict_agreement(
            bal_results, hard_results
        )
        assert disagreements == [], f"BAL != hardcoded at rate {rate}"
        assert comparisons == len(bal_results)

        bal_pairs = detection_report(bal_results, truth)
        bal_trace = trace_level_detection(
            bal_results, truth, [run.app_id for run in sim.runs]
        )
        replay_trace = trace_level_detection(
            hiring_replay_checker().evaluate_all(sim.store),
            truth,
            [run.app_id for run in sim.runs],
        )
        bal_f1_series.append(bal_pairs.overall.f1)
        rows.append(
            (
                f"{rate:.0%}",
                f"{bal_pairs.overall.precision:.3f}",
                f"{bal_pairs.overall.recall:.3f}",
                f"{bal_pairs.overall.f1:.3f}",
                f"{bal_trace.f1:.3f}",
                f"{replay_trace.f1:.3f}",
                "yes",
            )
        )

    # Shape assertions (see DESIGN.md / EXPERIMENTS.md):
    assert bal_f1_series[-1] == 1.0, "full visibility must be perfect"
    assert bal_f1_series[0] < bal_f1_series[-1], "losing events must hurt"
    # Replay cannot reach BAL's trace-level quality at full visibility
    # (self-approvals and disguised approval skips replay fine).
    last_row = rows[-1]
    assert float(last_row[5]) < float(last_row[4])

    columns = (
        "capture",
        "BAL prec",
        "BAL rec",
        "BAL F1 (pairs)",
        "BAL F1 (trace)",
        "replay F1 (trace)",
        "BAL==hardcoded",
    )
    table = render_table(
        columns,
        rows,
        title=(
            f"E4: detection vs visibility — hiring, {CASES} cases, "
            f"{RATE:.0%} violation rate per kind"
        ),
    )
    artifact(
        "E4 — detection quality vs process visibility",
        table,
        data={
            "cases": CASES,
            "violation_rate": RATE,
            "columns": list(columns),
            "rows": [list(row) for row in rows],
        },
    )

    # Benchmark: one full-visibility compliance pass.
    sim, __ = _simulate(None)
    evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
    benchmark(lambda: evaluator.run(sim.controls))
