"""E5 — checking throughput: deployed (continuous) vs on-demand.

§II.A names two analysis styles: queries deployed into the store that emit
results in real time, and an on-demand query frontend.  For controls this
becomes three operating points, all refreshed after each of B event
batches:

- **deployed (batched)** — appends mark (control, trace) pairs dirty; a
  flush per batch evaluates each dirty pair once,
- **on-demand** — a full sweep (every control × every trace) per batch,
- **deployed (immediate)** — every relevant append re-checks on the spot;
  freshest, and priced accordingly.

Expected shape: per-batch freshness costs ``new-traces × controls``
evaluations in batched-deployed mode versus ``all-traces × controls`` in
on-demand mode, so the on-demand/deployed evaluation ratio grows with the
number of batches already processed; immediate mode pays a constant factor
more than batched for per-event freshness.  All modes scale linearly in
trace count.

Benchmarked operation: the batched-deployed pipeline over one stream.
"""

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.recorder import RecorderClient
from repro.controls.deployment import ControlDeployment
from repro.controls.evaluator import ComplianceEvaluator
from repro.metrics.timing import Stopwatch
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator
from repro.processes.violations import ViolationPlan
from repro.reporting.tables import render_table
from repro.store.store import ProvenanceStore

TRACE_COUNTS = (50, 150, 300)
BATCHES = 5


def _pipeline(workload):
    model = workload.build_model()
    store = ProvenanceStore(model=model)
    recorder = RecorderClient(store, workload.build_mapping(model))
    analytics = CorrelationAnalytics(store, model)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(ViolationPlan.none()),
        seed=3,
    )
    return store, recorder, analytics, simulator


def _run_deployed(workload, stack, cases, immediate):
    store, recorder, analytics, simulator = _pipeline(workload)
    deployment = ControlDeployment(
        store, stack.xom, stack.vocabulary,
        bind_results=False, immediate=immediate,
    )
    for control in stack.controls:
        deployment.deploy(control)
    watch = Stopwatch()
    with watch.span("stream"):
        for __ in range(BATCHES):
            for run in simulator.run(cases // BATCHES):
                recorder.process_all(run.events)
            analytics.run()
            if not immediate:
                deployment.flush()
    return watch.seconds("stream"), deployment.rechecks


def _run_on_demand(workload, stack, cases):
    store, recorder, analytics, simulator = _pipeline(workload)
    evaluator = ComplianceEvaluator(store, stack.xom, stack.vocabulary)
    watch = Stopwatch()
    evaluations = 0
    with watch.span("stream"):
        for __ in range(BATCHES):
            for run in simulator.run(cases // BATCHES):
                recorder.process_all(run.events)
            analytics.run()
            evaluations += len(evaluator.run(stack.controls))
    return watch.seconds("stream"), evaluations


def test_e5_throughput(benchmark, artifact):
    workload = hiring.workload()
    stack = workload.simulate(cases=0)  # vocabulary + controls only

    rows = []
    for cases in TRACE_COUNTS:
        batched_sec, batched_evals = _run_deployed(
            workload, stack, cases, immediate=False
        )
        demand_sec, demand_evals = _run_on_demand(workload, stack, cases)
        imm_sec, imm_evals = _run_deployed(
            workload, stack, cases, immediate=True
        )
        rows.append(
            (
                cases,
                batched_evals,
                f"{batched_sec:.3f}s",
                demand_evals,
                f"{demand_sec:.3f}s",
                imm_evals,
                f"{imm_sec:.3f}s",
                f"{demand_evals / batched_evals:.2f}x",
            )
        )
        # Same per-batch freshness, strictly fewer evaluations.
        assert batched_evals < demand_evals
        # Immediate pays for per-event freshness.
        assert imm_evals > batched_evals

    columns = (
        "traces",
        "deployed evals",
        "deployed time",
        "on-demand evals",
        "on-demand time",
        "immediate evals",
        "immediate time",
        "on-demand/deployed",
    )
    table = render_table(
        columns,
        rows,
        title=(
            f"E5: checking cost per freshness mode — hiring, "
            f"{BATCHES} batches, {len(stack.controls)} controls"
        ),
    )
    artifact(
        "E5 — deployed vs on-demand checking throughput",
        table,
        data={
            "batches": BATCHES,
            "controls": len(stack.controls),
            "columns": list(columns),
            "rows": [list(row) for row in rows],
        },
    )

    benchmark(
        lambda: _run_deployed(workload, stack, 50, immediate=False)
    )
