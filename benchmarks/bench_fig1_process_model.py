"""F1 — Figure 1: the New Position Open process model.

Regenerates the process structure the paper's Figure 1 draws: the four
activities (submit / approve-reject / find candidates / notify), the
new-vs-existing XOR routing, and the performing roles.

Benchmarked operation: building + validating the spec and enumerating its
normative paths (the model-level work a conformance checker does once).
"""

from repro.baselines.replay import normative_sequences
from repro.processes import hiring


def test_fig1_process_model(benchmark, artifact):
    def build():
        spec = hiring.build_spec()
        spec.validate()
        paths = normative_sequences(
            spec, exclude_branches={"skip_approval", "skip"}
        )
        return spec, paths

    spec, paths = benchmark(build)

    activities = spec.activity_names()
    assert activities == [
        "submit_requisition",
        "approve_reject",
        "find_candidates",
        "notify",
    ]
    assert (
        "submit_requisition",
        "approve_reject",
        "find_candidates",
        "notify",
    ) in paths
    assert ("submit_requisition", "find_candidates", "notify") in paths

    lines = spec.describe()
    lines.append("")
    lines.append("normative end-to-end paths:")
    for path in sorted(paths):
        lines.append("  " + " -> ".join(path))
    artifact(
        "FIGURE 1 — New Position Open process model",
        "\n".join(lines),
        data={
            "activities": activities,
            "paths": [list(path) for path in sorted(paths)],
        },
    )
