"""Differential fuzz: the compiled XML codec against the ElementTree oracle.

The fast path's contract is exactness, not approximation: for every row it
claims, encoded XML is byte-identical to :func:`encode_record_xml` and
decoding produces a record equal to :func:`decode_row`'s — including the
:class:`CodecError` message when the row is corrupted.  Rows outside the
canonical shape must fall back to the oracle and therefore agree trivially;
what these tests pin down is that the compiled path never *disagrees*.
"""

import random

import pytest

from repro.errors import CodecError
from repro.model.attributes import AttributeSpec, AttributeType
from repro.model.records import (
    CustomRecord,
    DataRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
    TaskRecord,
)
from repro.model.schema import (
    NodeTypeSpec,
    ProvenanceDataModel,
    RelationTypeSpec,
)
from repro.store.xmlcodec import (
    StoredRow,
    XmlCodec,
    decode_row,
    encode_record_xml,
    encode_row,
)

# Deliberately nasty alphabet: markup metacharacters, every whitespace kind
# expat normalizes, entity-looking sequences, and non-ASCII text.
_CHARS = (
    "abz AZ09._-"
    "&<>\"'"
    "\t\n\r"
    "äßλЖ中🙂"
    ";#"
)

_NODE_CLASSES = {
    RecordClass.DATA: DataRecord,
    RecordClass.TASK: TaskRecord,
    RecordClass.RESOURCE: ResourceRecord,
    RecordClass.CUSTOM: CustomRecord,
}

_TYPED_ATTRS = (
    AttributeSpec("astring", AttributeType.STRING),
    AttributeSpec("anint", AttributeType.INTEGER),
    AttributeSpec("afloat", AttributeType.FLOAT),
    AttributeSpec("abool", AttributeType.BOOLEAN),
    AttributeSpec("awhen", AttributeType.TIMESTAMP),
)


def _model() -> ProvenanceDataModel:
    model = ProvenanceDataModel("codec-fuzz")
    model.add_node_type(
        NodeTypeSpec("widget", RecordClass.DATA, attributes=_TYPED_ATTRS)
    )
    model.add_node_type(NodeTypeSpec("review", RecordClass.TASK))
    model.add_node_type(NodeTypeSpec("person", RecordClass.RESOURCE))
    model.add_node_type(NodeTypeSpec("blob", RecordClass.CUSTOM))
    model.add_relation_type(
        RelationTypeSpec("linkOf", RecordClass.DATA, RecordClass.TASK)
    )
    return model


def _text(rng: random.Random, lo: int = 0, hi: int = 12) -> str:
    return "".join(
        rng.choice(_CHARS) for __ in range(rng.randint(lo, hi))
    )


_NAME_CHARS = "abcxyz0123456789_.-"


def _name(rng: random.Random) -> str:
    # Attribute names become XML tags, so canonical rows need XML Names;
    # junk names are covered separately (they must fall back, not break).
    return "a" + "".join(
        rng.choice(_NAME_CHARS) for __ in range(rng.randint(0, 6))
    )


def _record(rng: random.Random, index: int):
    """One randomized record spanning every class and attribute type."""
    roll = rng.random()
    record_id = f"R{index}-{_text(rng, 0, 4)}" or f"R{index}"
    app_id = f"App{rng.randint(1, 5)}{_text(rng, 0, 3)}"
    timestamp = rng.randint(-3, 10**9)
    if roll < 0.2:
        return RelationRecord.create(
            record_id, app_id, "linkOf",
            source_id=f"S{_text(rng, 1, 5)}",
            target_id=f"T{_text(rng, 1, 5)}",
            timestamp=timestamp,
            attributes={"rule": _text(rng)},
        )
    attributes = {}
    if roll < 0.55:
        entity_type = "widget"
        attributes = {
            "astring": _text(rng),
            "anint": rng.randint(-10**6, 10**6),
            "afloat": rng.choice(
                [0.0, -1.5, 3.14159, 1e300, float("inf"), 2.5e-10]
            ),
            "abool": rng.random() < 0.5,
            "awhen": rng.randint(0, 10**10),
        }
        cls = DataRecord
    else:
        entity_type, cls = rng.choice(
            [
                ("review", TaskRecord),
                ("person", ResourceRecord),
                ("blob", CustomRecord),
                # A type the model never declared: schema-less codec path.
                ("mystery", DataRecord),
            ]
        )
        for __ in range(rng.randint(0, 4)):
            attributes[_name(rng)] = _text(rng)
        if rng.random() < 0.3:
            # Reserved element names used as plain attributes: "source" /
            # "target" collide with relation plumbing on decode; both
            # paths must agree on what comes back.
            attributes[rng.choice(["source", "target"])] = _text(rng, 1, 6)
        if rng.random() < 0.2:
            attributes["empty"] = ""  # encodes as <ps:empty />
    return cls.create(
        record_id, app_id, entity_type,
        timestamp=timestamp, attributes=attributes,
    )


def _outcome(thunk):
    """(tag, payload) for a decode attempt: the decoded record, or the
    exact exception type and message.  The oracle mostly raises
    :class:`CodecError`, but leaks ``SchemaViolation`` for mistyped
    attribute text — parity covers whatever it does."""
    try:
        return ("ok", thunk())
    except Exception as exc:
        return (type(exc).__name__, str(exc))


class TestEncodeFuzz:
    def test_byte_identical_encoding_400_records(self):
        rng = random.Random(0xC0DEC)
        model = _model()
        codec = XmlCodec(model)
        codec.prime()
        for index in range(400):
            record = _record(rng, index)
            assert codec.encode_record_xml(record) == encode_record_xml(
                record
            ), f"encoder diverged on {record!r}"
            assert codec.encode_row(record) == encode_row(record)

    def test_byte_identical_without_model(self):
        rng = random.Random(7)
        codec = XmlCodec(None)
        for index in range(50):
            record = _record(rng, index)
            assert codec.encode_record_xml(record) == encode_record_xml(
                record
            )


class TestDecodeFuzz:
    def test_equal_records_400_rows_no_fallbacks(self):
        rng = random.Random(0xFA57)
        model = _model()
        codec = XmlCodec(model)
        decoded_ok = 0
        for index in range(400):
            record = _record(rng, index)
            row = encode_row(record)
            expected = _outcome(lambda: decode_row(row, model))
            actual = _outcome(lambda: codec.decode_row(row))
            assert actual == expected, f"decoder diverged on {row.xml!r}"
            if expected[0] == "ok":
                decoded_ok += 1
        # Every canonically encoded row must take the compiled path — a
        # fallback here means the fast decoder's shape grammar has a gap.
        # (Rows that legitimately error — e.g. an app_id whose embedded
        # copy strips differently — raise from the compiled path too and
        # count in neither bucket.)
        assert codec.fallback_decodes == 0
        assert codec.fast_decodes == decoded_ok
        assert decoded_ok >= 300

    def test_equal_records_without_model(self):
        rng = random.Random(11)
        codec = XmlCodec(None)
        for index in range(100):
            record = _record(rng, index)
            row = encode_row(record)
            expected = _outcome(lambda: decode_row(row, None))
            actual = _outcome(lambda: codec.decode_row(row))
            assert actual == expected, f"diverged on {row.xml!r}"

    def test_junk_attribute_names_stay_in_parity(self):
        # Names outside the XML Name grammar produce rows ElementTree
        # itself cannot re-parse; the compiled path must reject the shape
        # and reproduce the oracle's error, never "fix" the row.
        rng = random.Random(23)
        model = _model()
        codec = XmlCodec(model)
        for index in range(60):
            name = _text(rng, 1, 6) or "&"
            record = CustomRecord.create(
                f"J{index}", "App01", "blob", attributes={name: "v"}
            )
            row = encode_row(record)
            expected = _outcome(lambda: decode_row(row, model))
            actual = _outcome(lambda: codec.decode_row(row))
            assert actual == expected, f"diverged on {row.xml!r}"


def _canonical_row() -> StoredRow:
    record = DataRecord.create(
        "PE3", "App01", "widget",
        timestamp=86400,
        attributes={"astring": "a&b<c>", "anint": 7, "abool": True},
    )
    return encode_row(record)


def _mutations(row: StoredRow):
    """Corrupted / off-canon variants of one good row, labelled."""
    xml = row.xml
    swap = lambda old, new: xml.replace(old, new, 1)  # noqa: E731
    yield "id-mismatch", swap('ps:id="PE3"', 'ps:id="PE9"')
    yield "class-mismatch", swap('ps:class="data"', 'ps:class="task"')
    yield "appid-mismatch", swap("App01", "App99")
    yield "bad-timestamp", swap('value="86400"', 'value="soon"')
    yield "truncated", xml[:-7]
    yield "junk-tail", xml + "<trailing/>"
    yield "unclosed-child", swap("<ps:anint>", "<ps:anint><ps:anint>")
    yield "mismatched-close", swap("</ps:anint>", "</ps:other>")
    yield "bare-ampersand", swap("a&amp;b", "a& b")
    yield "unknown-entity", swap("a&amp;b", "a&nbsp;b")
    yield "invalid-char", swap("a&amp;b", "a\x01b")
    yield "nested-children", swap(
        "<ps:anint>7</ps:anint>",
        "<ps:anint><ps:deep>7</ps:deep></ps:anint>",
    )
    yield "extra-space", swap("<ps:timestamp value=", "<ps:timestamp  value=")
    yield "foreign-prefix", xml.replace("ps:", "qq:").replace(
        'xmlns:qq="', 'xmlns:qq="', 1
    )
    yield "no-namespace", swap(' xmlns:ps="http://repro.example/provenance"', "")
    yield "xml-declaration", '<?xml version="1.0"?>' + xml
    yield "comment-inside", swap("<ps:appid>", "<!-- x --><ps:appid>")
    yield "cdata-text", swap(
        "<ps:astring>", "<ps:astring><![CDATA[z]]>"
    )
    # Both corrupted AND malformed: structural parsing happens first in
    # ElementTree, so "malformed XML" must win over the id mismatch.
    yield "id-mismatch-and-truncated", swap('ps:id="PE3"', 'ps:id="PE9"')[:-7]
    yield "numeric-char-refs", swap("a&amp;b", "a&#38;&#x26;b")
    yield "timestamp-as-text", swap(
        '<ps:timestamp value="86400" />',
        "<ps:timestamp>86400</ps:timestamp>",
    )
    yield "crlf-in-text", swap("a&amp;b", "a\r\nb&#13;")


class TestErrorAndFallbackParity:
    @pytest.mark.parametrize(
        "label,xml",
        list(_mutations(_canonical_row())),
        ids=[label for label, __ in _mutations(_canonical_row())],
    )
    def test_mutated_rows_agree_with_oracle(self, label, xml):
        base = _canonical_row()
        row = StoredRow(base.record_id, base.record_class, base.app_id, xml)
        model = _model()
        codec = XmlCodec(model)
        expected = _outcome(lambda: decode_row(row, model))
        actual = _outcome(lambda: codec.decode_row(row))
        assert actual == expected, (
            f"{label}: compiled path {actual!r} != oracle {expected!r}"
        )

    def test_mutation_fuzz_parity(self):
        # Random pairs of mutations stacked on random records: whatever
        # the oracle does — decode, or raise with some message — the
        # compiled path does identically.
        rng = random.Random(0xBAD)
        model = _model()
        codec = XmlCodec(model)
        surgeries = list(_mutations(_canonical_row()))
        for index in range(150):
            record = _record(rng, index)
            row = encode_row(record)
            xml = row.xml
            for __ in range(rng.randint(1, 2)):
                label, __mutated = rng.choice(surgeries)
                # Re-apply the same *kind* of surgery to this row's XML.
                xml = _apply_surgery(label, xml)
            mutated = StoredRow(
                row.record_id, row.record_class, row.app_id, xml
            )
            expected = _outcome(lambda: decode_row(mutated, model))
            actual = _outcome(lambda: codec.decode_row(mutated))
            assert actual == expected, (
                f"diverged on {xml!r}: {actual!r} != {expected!r}"
            )


def _apply_surgery(label: str, xml: str) -> str:
    if label == "truncated" or label == "id-mismatch-and-truncated":
        return xml[:-5]
    if label == "junk-tail":
        return xml + "</ps:extra>"
    if label == "xml-declaration":
        return '<?xml version="1.0"?>' + xml
    if label == "invalid-char":
        return xml[: len(xml) // 2] + "\x0b" + xml[len(xml) // 2:]
    if label == "bare-ampersand":
        return xml.replace(">", ">& ", 1)
    if label == "no-namespace":
        return xml.replace(
            ' xmlns:ps="http://repro.example/provenance"', "", 1
        )
    if label == "extra-space":
        return xml.replace("><", "> <", 1)
    # Default surgery: perturb the first close tag.
    return xml.replace("</ps:", "</sp:", 1)


class TestCodecLifecycle:
    def test_prime_compiles_every_declared_type(self):
        model = _model()
        codec = XmlCodec(model)
        compiled = codec.prime()
        assert compiled == 5  # 4 node types + 1 relation type
        assert codec.prime() == 0  # idempotent

    def test_model_revision_invalidates_compiled_codecs(self):
        model = _model()
        codec = XmlCodec(model)
        codec.prime()
        record = DataRecord.create(
            "N1", "App01", "gadget", attributes={"num": "5"}
        )
        # 'gadget' is unknown: attribute stays a string on decode.
        row = encode_row(record)
        assert codec.decode_row(row).get("num") == "5"
        model.add_node_type(
            NodeTypeSpec(
                "gadget",
                RecordClass.DATA,
                attributes=(AttributeSpec("num", AttributeType.INTEGER),),
            )
        )
        # The schema learned the type; stale codecs must be recompiled.
        assert codec.decode_row(row).get("num") == 5
        assert decode_row(row, model).get("num") == 5
