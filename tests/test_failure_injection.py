"""Failure-injection tests: the messy realities of unmanaged capture.

Partially managed processes do not just drop events — they deliver them
out of order, duplicated across overlapping recorder clients, corrupted at
rest, or attributed to no trace at all.  These tests pin how each layer
degrades: explicitly, loudly where data integrity is at stake, and never
by inventing facts.
"""

import pytest

from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.status import ComplianceStatus
from repro.errors import CodecError
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.store.store import ProvenanceStore
from repro.store.xmlcodec import StoredRow, decode_row


def hiring_pipeline(events, seed_stack=None):
    """Run events through recorder + correlation; return (stack, store)."""
    workload = hiring.workload()
    stack = seed_stack or workload.simulate(cases=0)
    model = workload.build_model()
    store = ProvenanceStore(model=model)
    RecorderClient(store, workload.build_mapping(model)).process_all(events)
    from repro.capture.correlation import CorrelationAnalytics

    analytics = CorrelationAnalytics(store, model)
    for rule in workload.correlation_rules():
        analytics.add_rule(rule)
    analytics.run()
    return stack, store


def simulate_events(cases=5, seed=9):
    workload = hiring.workload()
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(ViolationPlan.none(), new_ratio=1.0),
        seed=seed,
    )
    return simulator.run(cases)


class TestOutOfOrderDelivery:
    def test_reversed_event_order_same_verdicts(self):
        runs = simulate_events()
        ordered = all_events(runs)
        stack, store_ordered = hiring_pipeline(ordered)
        __, store_reversed = hiring_pipeline(
            list(reversed(ordered)), seed_stack=stack
        )
        evaluator_a = ComplianceEvaluator(
            store_ordered, stack.xom, stack.vocabulary
        )
        evaluator_b = ComplianceEvaluator(
            store_reversed, stack.xom, stack.vocabulary
        )
        verdicts_a = {
            (r.control_name, r.trace_id): r.status
            for r in evaluator_a.run(stack.controls)
        }
        verdicts_b = {
            (r.control_name, r.trace_id): r.status
            for r in evaluator_b.run(stack.controls)
        }
        assert verdicts_a == verdicts_b

    def test_interleaved_traces_stay_separated(self):
        runs = simulate_events(cases=3)
        interleaved = []
        streams = [list(run.events) for run in runs]
        while any(streams):
            for stream in streams:
                if stream:
                    interleaved.append(stream.pop(0))
        stack, store = hiring_pipeline(interleaved)
        for run in runs:
            requisitions = store.find_data(run.app_id, "jobrequisition")
            assert len(requisitions) == 1
            assert requisitions[0].get("reqid") == run.case["reqid"]


class TestDuplicateDelivery:
    def test_overlapping_recorders_store_once(self):
        runs = simulate_events(cases=3)
        events = all_events(runs)
        stack, store_once = hiring_pipeline(events)
        __, store_twice = hiring_pipeline(events + events, seed_stack=stack)
        assert len(store_once) == len(store_twice)

    def test_duplicate_stats_counted(self):
        workload = hiring.workload()
        model = workload.build_model()
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(store, workload.build_mapping(model))
        events = all_events(simulate_events(cases=1))
        recorder.process_all(events)
        recorded = recorder.stats.recorded
        recorder.process_all(events)
        assert recorder.stats.recorded == recorded
        assert recorder.stats.duplicates == recorded


class TestCorruptedRows:
    def test_tampered_xml_detected_on_load(self, tmp_path):
        runs = simulate_events(cases=1)
        __, store = hiring_pipeline(all_events(runs))
        rows = store.rows()
        victim = rows[0]
        tampered = StoredRow(
            record_id=victim.record_id,
            record_class=victim.record_class,
            app_id="AppFAKE",  # column no longer matches embedded appid
            xml=victim.xml,
        )
        with pytest.raises(CodecError):
            decode_row(tampered)

    def test_truncated_xml_detected(self):
        runs = simulate_events(cases=1)
        __, store = hiring_pipeline(all_events(runs))
        victim = store.rows()[0]
        truncated = StoredRow(
            victim.record_id,
            victim.record_class,
            victim.app_id,
            victim.xml[: len(victim.xml) // 2],
        )
        with pytest.raises(CodecError):
            decode_row(truncated)

    @staticmethod
    def _tampered_db(tmp_path):
        """A SQLite store with one trace's row truncated at rest."""
        import sqlite3

        from repro.store.backends import SQLiteBackend

        path = str(tmp_path / "tampered.db")
        sim = hiring.workload().simulate(
            cases=2, seed=17, backend=SQLiteBackend(path)
        )
        sim.store.close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE provenance SET xml = substr(xml, 1, 20) "
                "WHERE appid = 'App01' AND rowid = "
                "(SELECT max(rowid) FROM provenance WHERE appid = 'App01')"
            )
        conn.close()
        return path, sim

    def test_indexed_open_fails_fast_on_tampered_row(self, tmp_path):
        from repro.errors import StoreError
        from repro.store.backends import SQLiteBackend
        from repro.store.store import ProvenanceStore as Store

        path, sim = self._tampered_db(tmp_path)
        with pytest.raises(StoreError):
            Store(model=sim.model, backend=SQLiteBackend(path))

    def test_tampered_row_surfaces_as_error_verdict(self, tmp_path):
        """Through the materializer, a tampered row becomes an explicit
        ERROR verdict (with a transition), never a silent skip — and the
        failure stays confined to the tampered trace."""
        from repro.store.backends import SQLiteBackend
        from repro.store.store import ProvenanceStore as Store

        path, sim = self._tampered_db(tmp_path)
        # Unindexed open defers decoding, so evaluation (not open) is
        # where the tampering surfaces.
        store = Store(
            model=sim.model, backend=SQLiteBackend(path), indexed=False
        )
        evaluator = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
        transitions = []
        evaluator.materializer.subscribe(transitions.append)
        results = evaluator.run(sim.controls)

        by_trace = {}
        for result in results:
            by_trace.setdefault(result.trace_id, []).append(result)
        assert all(
            r.status is ComplianceStatus.ERROR for r in by_trace["App01"]
        )
        assert any(
            "evaluation failed" in alert
            for r in by_trace["App01"]
            for alert in r.alerts
        )
        # The intact trace still evaluates normally.
        assert all(
            r.status is not ComplianceStatus.ERROR
            for r in by_trace["App02"]
        )
        # Listeners saw the integrity failure as a transition.
        assert any(
            t.result.status is ComplianceStatus.ERROR for t in transitions
        )
        store.close()


class TestUnattributedEvents:
    def test_traceless_events_quarantined_not_mixed(self):
        from repro.capture.events import ApplicationEvent, EventSource

        workload = hiring.workload()
        model = workload.build_model()
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(store, workload.build_mapping(model))
        orphan = ApplicationEvent(
            event_id="ORPHAN",
            source=EventSource.WORKFLOW,
            kind="workflow.requisition.submitted",
            timestamp=5,
            app_id="",  # the emitting system knows no trace
            payload={"reqid": "ReqX", "type": "new"},
        )
        envelope = recorder.process(orphan)
        assert envelope.recorded
        assert store.app_ids() == ["unattributed"]
        # Controls over real traces never see the orphan.
        assert store.find_data("App01", "jobrequisition") == []


class TestPartialTraceDegradation:
    def test_missing_requisition_means_not_applicable_not_violated(self):
        runs = simulate_events(cases=1)
        events = [
            event
            for event in all_events(runs)
            if event.kind != "workflow.requisition.submitted"
        ]
        stack, store = hiring_pipeline(events)
        evaluator = ComplianceEvaluator(store, stack.xom, stack.vocabulary)
        results = evaluator.run(stack.controls)
        assert results, "trace still has records"
        for result in results:
            assert result.status is ComplianceStatus.NOT_APPLICABLE

    def test_missing_approval_event_reads_as_violation(self):
        # The honest failure mode the paper accepts: absent evidence on a
        # present subject is indistinguishable from non-compliance.
        runs = simulate_events(cases=1)
        events = [
            event
            for event in all_events(runs)
            if event.kind != "workflow.approval.recorded"
        ]
        stack, store = hiring_pipeline(events)
        evaluator = ComplianceEvaluator(store, stack.xom, stack.vocabulary)
        statuses = {
            r.control_name: r.status for r in evaluator.run(stack.controls)
        }
        assert statuses["gm-approval"] is ComplianceStatus.VIOLATED
