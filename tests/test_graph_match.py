"""Unit tests for traversal and subgraph pattern matching."""

import pytest

from repro.errors import PatternError
from repro.graph.graph import ProvenanceGraph
from repro.graph.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    match_pattern,
)
from repro.graph.traversal import follow, neighbors, reachable
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
)
from repro.store.query import AttributePredicate


@pytest.fixture
def graph():
    """A small hiring trace: person -> requisition <- approval."""
    graph = ProvenanceGraph()
    graph.add_node_record(
        ResourceRecord.create(
            "R1", "App01", "person", attributes={"name": "Joe"}
        )
    )
    graph.add_node_record(
        DataRecord.create(
            "D1",
            "App01",
            "jobrequisition",
            attributes={"reqid": "Req001", "type": "new"},
        )
    )
    graph.add_node_record(
        DataRecord.create(
            "D2",
            "App01",
            "approval",
            attributes={"reqid": "Req001", "status": "approved"},
        )
    )
    graph.add_relation_record(
        RelationRecord.create(
            "E1", "App01", "submitterOf", source_id="R1", target_id="D1"
        )
    )
    graph.add_relation_record(
        RelationRecord.create(
            "E2", "App01", "approvalOf", source_id="D2", target_id="D1"
        )
    )
    return graph


class TestTraversal:
    def test_follow_out(self, graph):
        hits = follow(graph, "R1", "submitterOf")
        assert [r.record_id for r in hits] == ["D1"]

    def test_follow_in(self, graph):
        hits = follow(graph, "D1", "submitterOf", direction="in")
        assert [r.record_id for r in hits] == ["R1"]

    def test_follow_bad_direction(self, graph):
        with pytest.raises(ValueError):
            follow(graph, "R1", "submitterOf", direction="sideways")

    def test_neighbors(self, graph):
        ids = {r.record_id for r in neighbors(graph, "D1")}
        assert ids == {"R1", "D2"}

    def test_reachable(self, graph):
        assert reachable(graph, "R1") == {"D1"}
        assert reachable(graph, "D2") == {"D1"}
        assert reachable(graph, "D1") == set()

    def test_reachable_hop_limit(self, graph):
        graph.add_node_record(
            DataRecord.create("D3", "App01", "candidatelist")
        )
        graph.add_relation_record(
            RelationRecord.create(
                "E3", "App01", "generates", source_id="D1", target_id="D3"
            )
        )
        assert reachable(graph, "R1", max_hops=1) == {"D1"}
        assert reachable(graph, "R1") == {"D1", "D3"}

    def test_reachable_by_type(self, graph):
        assert reachable(graph, "R1", relation_type="approvalOf") == set()

    def test_reachable_unknown_node(self, graph):
        assert reachable(graph, "ZZ") == set()


class TestPatternValidation:
    def test_duplicate_variable_rejected(self):
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("a")], edges=[]
        )
        with pytest.raises(PatternError):
            pattern.validate()

    def test_unknown_edge_variable_rejected(self):
        pattern = GraphPattern(
            nodes=[NodePattern("a")],
            edges=[EdgePattern("a", "ghost")],
        )
        with pytest.raises(PatternError):
            pattern.validate()

    def test_node_pattern_lookup(self):
        pattern = GraphPattern(nodes=[NodePattern("a")])
        assert pattern.node_pattern("a").var == "a"
        with pytest.raises(PatternError):
            pattern.node_pattern("b")


class TestMatching:
    def test_single_match(self, graph):
        pattern = GraphPattern(
            nodes=[
                NodePattern("req", entity_type="jobrequisition"),
                NodePattern("appr", entity_type="approval"),
            ],
            edges=[EdgePattern("appr", "req", "approvalOf")],
        )
        bindings = match_pattern(graph, pattern)
        assert bindings == [{"req": "D1", "appr": "D2"}]

    def test_attribute_constrained_match(self, graph):
        pattern = GraphPattern(
            nodes=[
                NodePattern(
                    "req",
                    entity_type="jobrequisition",
                    predicates=(AttributePredicate("type", "==", "new"),),
                )
            ]
        )
        assert match_pattern(graph, pattern) == [{"req": "D1"}]

    def test_attribute_mismatch_no_match(self, graph):
        pattern = GraphPattern(
            nodes=[
                NodePattern(
                    "req",
                    entity_type="jobrequisition",
                    predicates=(
                        AttributePredicate("type", "==", "existing"),
                    ),
                )
            ]
        )
        assert match_pattern(graph, pattern) == []

    def test_missing_edge_no_match(self, graph):
        pattern = GraphPattern(
            nodes=[
                NodePattern("req", entity_type="jobrequisition"),
                NodePattern("person", record_class=RecordClass.RESOURCE),
            ],
            edges=[EdgePattern("req", "person", "submitterOf")],
        )
        # Edge goes person -> requisition, not the reverse.
        assert match_pattern(graph, pattern) == []

    def test_optional_variable_binds_when_present(self, graph):
        pattern = GraphPattern(
            nodes=[
                NodePattern("req", entity_type="jobrequisition"),
                NodePattern("appr", entity_type="approval", optional=True),
            ],
            edges=[EdgePattern("appr", "req", "approvalOf")],
        )
        bindings = match_pattern(graph, pattern)
        assert bindings == [{"req": "D1", "appr": "D2"}]

    def test_optional_variable_absent_when_missing(self, graph):
        pattern = GraphPattern(
            nodes=[
                NodePattern("req", entity_type="jobrequisition"),
                NodePattern(
                    "list", entity_type="candidatelist", optional=True
                ),
            ],
        )
        bindings = match_pattern(graph, pattern)
        assert bindings == [{"req": "D1"}]

    def test_required_variable_missing_no_match(self, graph):
        pattern = GraphPattern(
            nodes=[NodePattern("list", entity_type="candidatelist")]
        )
        assert match_pattern(graph, pattern) == []

    def test_multiple_matches(self, graph):
        graph.add_node_record(
            DataRecord.create(
                "D9",
                "App01",
                "approval",
                attributes={"reqid": "Req001", "status": "approved"},
            )
        )
        graph.add_relation_record(
            RelationRecord.create(
                "E9", "App01", "approvalOf", source_id="D9", target_id="D1"
            )
        )
        pattern = GraphPattern(
            nodes=[
                NodePattern("req", entity_type="jobrequisition"),
                NodePattern("appr", entity_type="approval"),
            ],
            edges=[EdgePattern("appr", "req", "approvalOf")],
        )
        bindings = match_pattern(graph, pattern)
        assert len(bindings) == 2
        assert {b["appr"] for b in bindings} == {"D2", "D9"}

    def test_distinct_nodes_per_binding(self, graph):
        # Two variables of the same type must bind different nodes.
        pattern = GraphPattern(
            nodes=[
                NodePattern("a", entity_type="approval"),
                NodePattern("b", entity_type="approval"),
            ]
        )
        assert match_pattern(graph, pattern) == []


class TestSerialize:
    def test_dot_output(self, graph):
        from repro.graph.serialize import to_dot

        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert '"R1" [label=' in dot
        assert '"R1" -> "D1"' in dot
        assert "shape=note" in dot  # data records render as notepads

    def test_json_output(self, graph):
        import json

        from repro.graph.serialize import to_json

        payload = json.loads(to_json(graph))
        assert len(payload["nodes"]) == 3
        assert len(payload["edges"]) == 2
        assert payload["edges"][0]["type"] in ("submitterOf", "approvalOf")

    def test_census_lines(self, graph):
        from repro.graph.serialize import trace_census

        lines = trace_census(graph)
        assert "3 nodes, 2 edges" in lines[0]
        assert any("Resource: person" in line for line in lines)
        assert any("approval" in line for line in lines)
