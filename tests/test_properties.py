"""Property-based tests on cross-module invariants (hypothesis).

Each property pins an invariant the rest of the system leans on:

- the physical store rows round-trip losslessly (Table I is the source of
  truth),
- BAL rendering is parse-stable (what the editor shows re-parses to the
  same rule),
- graph building conserves records and never invents edges,
- adding query predicates never widens a result set,
- visibility projection is a partition that preserves order,
- subgraph matching only returns bindings that actually satisfy the
  pattern.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brms.bal import ast
from repro.brms.bal.parser import parse_rule
from repro.capture.events import ApplicationEvent, EventSource
from repro.graph.build import BuildReport, build_graph
from repro.graph.graph import ProvenanceGraph
from repro.graph.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    match_pattern,
)
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    record_from_parts,
)
from repro.processes.visibility import VisibilityPolicy
from repro.store.query import AttributePredicate, RecordQuery
from repro.store.store import ProvenanceStore
from repro.store.xmlcodec import decode_row, encode_row

# -- strategies ---------------------------------------------------------------

# Structural BAL words: the lexer has no reserved words (phrases may contain
# ``of``), so a generated identifier or phrase that *is* a structural word
# renders to text the parser reads as grammar ("the of of 0") and the
# render/parse fixpoint legitimately fails.  Real vocabularies never use
# bare structural words as whole names; keep the generator out of them too.
_BAL_STRUCTURAL = frozenset(
    """
    if then else and or not is are was the a an of no any null there exists
    each all at least most more than it this that to as set define true
    false number one satisfied violated internal control
    """.split()
)
identifier = st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True).filter(
    lambda s: s not in _BAL_STRUCTURAL
)
safe_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x2FF
    ),
    min_size=1,
    max_size=12,
)
attribute_value = st.one_of(
    safe_text,
    st.integers(min_value=-(10**6), max_value=10**6),
    st.booleans(),
)

node_records = st.builds(
    lambda rid, app, etype, ts, attrs: record_from_parts(
        RecordClass.DATA, f"D{rid}", f"App{app:02d}", etype, ts, attrs
    ),
    rid=st.integers(min_value=1, max_value=10**6),
    app=st.integers(min_value=1, max_value=20),
    etype=identifier,
    ts=st.integers(min_value=0, max_value=10**9),
    attrs=st.dictionaries(identifier, attribute_value, max_size=4),
)


class TestStoreRoundTrip:
    @given(record=node_records)
    @settings(max_examples=60)
    def test_row_roundtrip_preserves_identity_and_time(self, record):
        back = decode_row(encode_row(record))
        assert back.record_id == record.record_id
        assert back.app_id == record.app_id
        assert back.entity_type == record.entity_type
        assert back.timestamp == record.timestamp
        # Untyped decode yields strings; the wire form must match.
        for name, value in record.attributes.items():
            wire = back.get(name)
            if isinstance(value, bool):
                assert wire == ("true" if value else "false")
            else:
                assert wire == str(value)

    @given(records=st.lists(node_records, max_size=15, unique_by=lambda r: r.record_id))
    @settings(max_examples=25)
    def test_dump_load_preserves_row_sequence(self, records, tmp_path_factory):
        store = ProvenanceStore()
        store.extend(records)
        path = str(tmp_path_factory.mktemp("store") / "rows.jsonl")
        store.dump(path)
        loaded = ProvenanceStore.load(path)
        assert [r.as_tuple() for r in loaded.rows()] == [
            r.as_tuple() for r in store.rows()
        ]


# -- BAL render/parse stability ---------------------------------------------------

literals = st.one_of(
    st.integers(min_value=0, max_value=999).map(ast.Literal),
    safe_text.map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
)
variables = identifier.map(lambda s: ast.VarRef(name=s))
parameters = identifier.map(lambda s: ast.ParamRef(name=s))
simple_exprs = st.one_of(literals, variables, parameters)


def navigations(children):
    return st.builds(
        ast.Navigation,
        phrase=identifier,
        target=children,
    )


expressions = st.recursive(
    simple_exprs,
    lambda children: st.one_of(
        navigations(children),
        st.builds(ast.CountOf, target=children),
        st.builds(
            ast.Arith,
            op=st.sampled_from(["+", "-", "*", "/"]),
            left=children,
            right=children,
        ),
    ),
    max_leaves=6,
)

comparisons = st.one_of(
    st.builds(
        ast.Comparison,
        op=st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
        left=expressions,
        right=expressions,
    ),
    st.builds(
        ast.Comparison,
        op=st.sampled_from(["is_null", "not_null"]),
        left=expressions,
        right=st.none(),
    ),
)

conditions = st.recursive(
    comparisons,
    lambda children: st.one_of(
        st.builds(
            ast.And,
            conditions=st.tuples(children, children),
            block=st.booleans(),
        ),
        st.builds(
            ast.Or,
            conditions=st.tuples(children, children),
            block=st.booleans(),
        ),
        st.builds(ast.Not, condition=children),
    ),
    max_leaves=4,
)

rules = st.builds(
    ast.Rule,
    definitions=st.lists(
        st.builds(ast.Definition, var=identifier, binder=expressions),
        max_size=2,
        unique_by=lambda d: d.var,
    ).map(tuple),
    condition=conditions,
    then_actions=st.just((ast.SetStatus(satisfied=True),)),
    else_actions=st.one_of(
        st.just(()),
        st.just((ast.SetStatus(satisfied=False),)),
        safe_text.map(lambda s: (ast.Alert(message=s),)),
    ),
)


class TestBalRenderStability:
    @given(rule=rules)
    @settings(max_examples=120, deadline=None)
    def test_render_parse_fixpoint(self, rule):
        rendered = rule.render()
        reparsed = parse_rule(rendered)
        # Parse -> render -> parse must be a fixpoint even when the first
        # parse normalizes shapes (e.g. literal folding of bullets).
        assert reparsed.render() == parse_rule(reparsed.render()).render()

    @given(expr=expressions)
    @settings(max_examples=120, deadline=None)
    def test_expression_render_reparses(self, expr):
        rule_text = (
            f"if {expr.render()} is null "
            f"then the internal control is satisfied"
        )
        reparsed = parse_rule(rule_text)
        assert reparsed.condition.op == "is_null"
        assert reparsed.condition.left.render() == expr.render()


# -- graph building -----------------------------------------------------------------


class TestGraphBuildInvariants:
    @given(
        node_count=st.integers(min_value=0, max_value=12),
        edge_seed=st.integers(min_value=0, max_value=2**30),
        dangling=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_conserved(self, node_count, edge_seed, dangling):
        rng = random.Random(edge_seed)
        store = ProvenanceStore()
        ids = []
        for index in range(node_count):
            record_id = f"N{index}"
            store.append(
                DataRecord.create(record_id, "App01", "thing")
            )
            ids.append(record_id)
        edges = 0
        if len(ids) >= 2:
            for index in range(rng.randint(0, 2 * len(ids))):
                source, target = rng.sample(ids, 2)
                store.append(
                    RelationRecord.create(
                        f"E{index}", "App01", "rel",
                        source_id=source, target_id=target,
                    )
                )
                edges += 1
        for index in range(dangling):
            if not ids:
                break
            store.append(
                RelationRecord.create(
                    f"X{index}", "App01", "rel",
                    source_id=ids[0], target_id=f"GONE{index}",
                )
            )
        report = BuildReport()
        graph = build_graph(store, report=report)
        assert graph.node_count == node_count
        assert graph.edge_count == edges
        assert report.dangling_count == (dangling if ids else 0)

    @given(subset_seed=st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=20, deadline=None)
    def test_subgraph_is_contained(self, subset_seed):
        rng = random.Random(subset_seed)
        graph = ProvenanceGraph()
        ids = [f"N{i}" for i in range(8)]
        for record_id in ids:
            graph.add_node_record(
                DataRecord.create(record_id, "App01", "thing")
            )
        for index in range(10):
            source, target = rng.sample(ids, 2)
            graph.add_relation_record(
                RelationRecord.create(
                    f"E{index}", "App01", "rel",
                    source_id=source, target_id=target,
                )
            )
        chosen = rng.sample(ids, rng.randint(0, len(ids)))
        sub = graph.subgraph(chosen)
        assert sub.node_count == len(chosen)
        for relation in sub.edges():
            assert relation.source_id in chosen
            assert relation.target_id in chosen
            assert graph.has_edge(relation.source_id, relation.target_id)


# -- query narrowing --------------------------------------------------------------------


class TestQueryNarrowing:
    @given(
        records=st.lists(node_records, max_size=25),
        name=identifier,
        value=attribute_value,
    )
    @settings(max_examples=40, deadline=None)
    def test_adding_predicates_never_widens(self, records, name, value):
        store = ProvenanceStore()
        seen = set()
        for record in records:
            if record.record_id not in seen:
                seen.add(record.record_id)
                store.append(record)
        base = RecordQuery(record_class=RecordClass.DATA)
        narrowed = base.where(name, "==", value)
        base_ids = {r.record_id for r in store.select(base)}
        narrowed_ids = {r.record_id for r in store.select(narrowed)}
        assert narrowed_ids <= base_ids

    @given(value=attribute_value)
    def test_exists_absent_partition(self, value):
        record = DataRecord.create(
            "D1", "App01", "thing", attributes={"a": value}
        )
        empty = DataRecord.create("D2", "App01", "thing")
        exists = AttributePredicate("a", "exists")
        absent = AttributePredicate("a", "absent")
        for candidate in (record, empty):
            assert exists.matches(candidate) != absent.matches(candidate)


# -- visibility --------------------------------------------------------------------------


class TestVisibilityPartition:
    @given(
        count=st.integers(min_value=0, max_value=60),
        rate=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**30),
    )
    @settings(max_examples=40, deadline=None)
    def test_projection_partitions_and_preserves_order(
        self, count, rate, seed
    ):
        events = [
            ApplicationEvent(
                event_id=f"E{i}",
                source=EventSource.WORKFLOW,
                kind="w.x",
                timestamp=i,
            )
            for i in range(count)
        ]
        visible, dropped = VisibilityPolicy.uniform(rate, seed=seed).project(
            events
        )
        assert len(visible) + len(dropped) == count
        assert set(e.event_id for e in visible).isdisjoint(
            e.event_id for e in dropped
        )
        timestamps = [e.timestamp for e in visible]
        assert timestamps == sorted(timestamps)


# -- pattern matching ----------------------------------------------------------------------


class TestMatchSoundness:
    @given(seed=st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=30, deadline=None)
    def test_returned_bindings_satisfy_pattern(self, seed):
        rng = random.Random(seed)
        graph = ProvenanceGraph()
        types = ["alpha", "beta"]
        ids = []
        for index in range(6):
            record_id = f"N{index}"
            graph.add_node_record(
                DataRecord.create(
                    record_id,
                    "App01",
                    rng.choice(types),
                    attributes={"k": rng.randint(0, 2)},
                )
            )
            ids.append(record_id)
        for index in range(6):
            source, target = rng.sample(ids, 2)
            graph.add_relation_record(
                RelationRecord.create(
                    f"E{index}", "App01", "rel",
                    source_id=source, target_id=target,
                )
            )
        pattern = GraphPattern(
            nodes=[
                NodePattern("a", entity_type="alpha"),
                NodePattern(
                    "b",
                    predicates=(AttributePredicate("k", ">=", 1),),
                ),
            ],
            edges=[EdgePattern("a", "b", "rel")],
        )
        for binding in match_pattern(graph, pattern):
            node_a = graph.node(binding["a"])
            node_b = graph.node(binding["b"])
            assert node_a.entity_type == "alpha"
            assert node_b.get("k") >= 1
            assert binding["a"] != binding["b"]
            assert graph.has_edge(binding["a"], binding["b"], "rel")
