"""Unit tests for query predicates and the xpath-lite language."""

import pytest

from repro.errors import QueryError
from repro.model.records import DataRecord, RecordClass
from repro.store.query import AttributePredicate, RecordQuery, xpath_lite
from repro.store.xmlcodec import StoredRow, encode_row


def record(**attributes):
    return DataRecord.create(
        "PE3", "App01", "jobrequisition", timestamp=50, attributes=attributes
    )


class TestAttributePredicate:
    def test_equality(self):
        assert AttributePredicate("type", "==", "new").matches(
            record(type="new")
        )
        assert not AttributePredicate("type", "==", "new").matches(
            record(type="existing")
        )

    def test_inequality(self):
        assert AttributePredicate("type", "!=", "new").matches(
            record(type="existing")
        )

    def test_ordering(self):
        assert AttributePredicate("amount", ">", 10).matches(record(amount=11))
        assert not AttributePredicate("amount", ">", 10).matches(
            record(amount=10)
        )
        assert AttributePredicate("amount", "<=", 10).matches(
            record(amount=10)
        )

    def test_exists_absent(self):
        assert AttributePredicate("type", "exists").matches(record(type="x"))
        assert not AttributePredicate("type", "exists").matches(record())
        assert AttributePredicate("type", "absent").matches(record())

    def test_missing_attribute_never_matches_comparison(self):
        assert not AttributePredicate("type", "==", "new").matches(record())

    def test_cross_type_comparison_is_false_not_error(self):
        assert not AttributePredicate("amount", ">", 10).matches(
            record(amount="lots")
        )

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            AttributePredicate("a", "~=", 1)


class TestRecordQuery:
    def test_where_chains_immutably(self):
        base = RecordQuery(entity_type="jobrequisition")
        refined = base.where("type", "==", "new")
        assert len(base.predicates) == 0
        assert len(refined.predicates) == 1

    def test_all_facets_conjoin(self):
        query = RecordQuery(
            record_class=RecordClass.DATA,
            app_id="App01",
            entity_type="jobrequisition",
            since=10,
            until=100,
        ).where("type", "==", "new")
        assert query.matches(record(type="new"))
        assert not query.matches(record(type="existing"))

    def test_time_window(self):
        assert not RecordQuery(since=51).matches(record())
        assert RecordQuery(since=50, until=50).matches(record())
        assert not RecordQuery(until=49).matches(record())


class TestXpathLite:
    @pytest.fixture
    def row(self):
        return encode_row(
            record(reqid="Req001", type="new", position="Sales")
        )

    def test_child_path(self, row):
        assert xpath_lite(row, "/jobrequisition/reqid") == ["Req001"]

    def test_child_path_with_ps_prefix(self, row):
        assert xpath_lite(row, "/ps:jobrequisition/ps:type") == ["new"]

    def test_anywhere_path(self, row):
        assert xpath_lite(row, "//position") == ["Sales"]

    def test_root_attribute(self, row):
        assert xpath_lite(row, "/jobrequisition/@ps:class") == ["data"]

    def test_no_match_returns_empty(self, row):
        assert xpath_lite(row, "/jobrequisition/salary") == []
        assert xpath_lite(row, "/invoice/amount") == []

    def test_timestamp_value_attribute(self, row):
        assert xpath_lite(row, "/jobrequisition/timestamp/@value") == ["50"]

    def test_malformed_path_rejected(self, row):
        with pytest.raises(QueryError):
            xpath_lite(row, "jobrequisition/reqid")
        with pytest.raises(QueryError):
            xpath_lite(row, "/")

    def test_malformed_xml_rejected(self):
        row = StoredRow("X", RecordClass.DATA, "App01", "<broken")
        with pytest.raises(QueryError):
            xpath_lite(row, "/a/b")


class TestContinuousQuery:
    def test_deploy_replays_history_and_streams(self):
        from repro.store.continuous import CollectingSink, ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        store.append(record(reqid="before"))
        query = ContinuousQuery(
            RecordQuery(entity_type="jobrequisition")
        ).deploy(store)
        sink = CollectingSink()
        query.subscribe(sink)
        # History replay happened before subscribe in this flow; emitted
        # counts it, the sink only sees live appends.
        assert query.emitted == 1
        store.append(
            DataRecord.create(
                "PE4", "App01", "jobrequisition", attributes={"reqid": "live"}
            )
        )
        assert [r.get("reqid") for r in sink.records] == ["live"]
        assert query.emitted == 2

    def test_subscribe_before_deploy_sees_history(self):
        from repro.store.continuous import CollectingSink, ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        store.append(record(reqid="before"))
        query = ContinuousQuery(RecordQuery(entity_type="jobrequisition"))
        sink = CollectingSink()
        query.subscribe(sink)
        query.deploy(store)
        assert [r.get("reqid") for r in sink.records] == ["before"]

    def test_no_replay_mode(self):
        from repro.store.continuous import CollectingSink, ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        store.append(record())
        query = ContinuousQuery(
            RecordQuery(entity_type="jobrequisition"), replay=False
        )
        sink = CollectingSink()
        query.subscribe(sink)
        query.deploy(store)
        assert len(sink) == 0

    def test_cancel_subscription(self):
        from repro.store.continuous import CollectingSink, ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        query = ContinuousQuery(RecordQuery()).deploy(store)
        sink = CollectingSink()
        handle = query.subscribe(sink)
        store.append(record())
        handle.cancel()
        store.append(
            DataRecord.create("PE9", "App01", "jobrequisition")
        )
        assert len(sink) == 1
        assert not handle.active

    def test_undeploy_stops_emission(self):
        from repro.store.continuous import ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        query = ContinuousQuery(RecordQuery()).deploy(store)
        query.undeploy()
        store.append(record())
        assert query.emitted == 0
        assert not query.deployed

    def test_double_deploy_rejected(self):
        from repro.store.continuous import ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        query = ContinuousQuery(RecordQuery()).deploy(store)
        with pytest.raises(RuntimeError):
            query.deploy(store)

    def test_last_cancel_detaches_from_store(self):
        from repro.store.continuous import CollectingSink, ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        query = ContinuousQuery(RecordQuery()).deploy(store)
        first = query.subscribe(CollectingSink())
        second = query.subscribe(CollectingSink())
        first.cancel()
        assert query.deployed  # one listener left: stay attached
        second.cancel()
        # Last listener gone: the query undeploys itself, so the store no
        # longer pays a match test (or holds a reference) for it.
        assert not query.deployed
        store.append(record())
        assert query.emitted == 0

    def test_redeploy_after_auto_detach(self):
        from repro.store.continuous import CollectingSink, ContinuousQuery
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore()
        query = ContinuousQuery(RecordQuery(), replay=False).deploy(store)
        query.subscribe(CollectingSink()).cancel()
        assert not query.deployed
        sink = CollectingSink()
        query.subscribe(sink)
        query.deploy(store)  # re-attach is allowed after auto-detach
        store.append(record())
        assert len(sink) == 1


class TestXpathParseMemo:
    """xpath_lite parses each row's XML at most once per row visit."""

    def test_row_major_loop_parses_once_per_row(self):
        from repro.store import query as query_module

        paths = [
            "/jobrequisition/reqid",
            "/jobrequisition/type",
            "//reqid",
            "/jobrequisition/@ps:class",
        ]
        first = encode_row(record(reqid="R1", type="new"))
        before = query_module.xml_parse_count()
        values = [xpath_lite(first, path) for path in paths]
        assert values[0] == ["R1"]
        assert values[1] == ["new"]
        # Four path expressions, one parse.
        assert query_module.xml_parse_count() - before == 1

        # Moving to the next row re-parses exactly once more, even when
        # the loop later alternates back (the memo holds one row).
        second = encode_row(record(reqid="R2", type="replacement"))
        assert xpath_lite(second, paths[0]) == ["R2"]
        assert xpath_lite(second, paths[1]) == ["replacement"]
        assert query_module.xml_parse_count() - before == 2
        assert xpath_lite(first, paths[0]) == ["R1"]
        assert query_module.xml_parse_count() - before == 3

    def test_malformed_row_parses_once_but_raises_per_call(self):
        from repro.store import query as query_module

        bad = StoredRow(
            record_id="PE9",
            record_class=RecordClass.DATA,
            app_id="App01",
            xml="<jobrequisition><reqid>R1",
        )
        before = query_module.xml_parse_count()
        for __ in range(3):
            with pytest.raises(QueryError, match="malformed XML"):
                xpath_lite(bad, "/jobrequisition/reqid")
        assert query_module.xml_parse_count() - before == 1
