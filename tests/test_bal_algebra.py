"""Property tests: BAL condition evaluation obeys Boolean algebra.

The evaluator's And/Or/Not must behave like the connectives they verbalize
— double negation, De Morgan, commutativity — for arbitrary generated
conditions over a fixed trace.  These laws protect rule authors: a control
rewritten into an equivalent logical form must keep its verdicts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brms.bal import ast
from repro.brms.bal.evaluate import EvalContext, evaluate_condition
from tests.conftest import build_hiring_trace


# Module-scope stack (hypothesis disallows function-scoped fixtures with
# @given): the hiring workload's model verbalizes the same phrases the
# conftest fixtures do.
from repro.brms.verbalization import Verbalizer
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.processes.hiring import build_model

_XOM = ExecutableObjectModel(build_model())
_VOCABULARY = Vocabulary(Verbalizer(_XOM).verbalize())


def make_context():
    trace = build_hiring_trace("App01")
    return EvalContext(
        graph=trace,
        xom=_XOM,
        vocabulary=_VOCABULARY,
        env={"req": _XOM.instances(trace, "jobrequisition")[0]},
    )


# Atomic conditions over the fixed trace: comparisons of literals and of
# navigations from the bound requisition.
literal_atoms = st.builds(
    lambda a, b, op: ast.Comparison(
        op=op, left=ast.Literal(a), right=ast.Literal(b)
    ),
    a=st.integers(min_value=0, max_value=3),
    b=st.integers(min_value=0, max_value=3),
    op=st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
)

navigation_atoms = st.sampled_from(
    [
        ast.Comparison(
            op="not_null",
            left=ast.Navigation(
                phrase="approval", target=ast.VarRef("req")
            ),
        ),
        ast.Comparison(
            op="eq",
            left=ast.Navigation(
                phrase="position type", target=ast.VarRef("req")
            ),
            right=ast.Literal("new"),
        ),
        ast.Comparison(
            op="is_null",
            left=ast.Navigation(
                phrase="candidate list", target=ast.VarRef("req")
            ),
        ),
    ]
)

atoms = st.one_of(literal_atoms, navigation_atoms)

conditions = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.builds(
            ast.And, conditions=st.tuples(children, children)
        ),
        st.builds(
            ast.Or, conditions=st.tuples(children, children)
        ),
        st.builds(ast.Not, condition=children),
    ),
    max_leaves=6,
)


class TestBooleanLaws:
    @given(condition=conditions)
    @settings(max_examples=80, deadline=None)
    def test_double_negation(self, condition):
        context = make_context()
        direct = evaluate_condition(condition, context)
        doubled = evaluate_condition(
            ast.Not(condition=ast.Not(condition=condition)), context
        )
        assert direct == doubled

    @given(left=conditions, right=conditions)
    @settings(max_examples=80, deadline=None)
    def test_de_morgan(self, left, right):
        context = make_context()
        not_and = evaluate_condition(
            ast.Not(condition=ast.And(conditions=(left, right))), context
        )
        or_nots = evaluate_condition(
            ast.Or(
                conditions=(
                    ast.Not(condition=left),
                    ast.Not(condition=right),
                )
            ),
            context,
        )
        assert not_and == or_nots

    @given(left=conditions, right=conditions)
    @settings(max_examples=80, deadline=None)
    def test_commutativity(self, left, right):
        context = make_context()
        assert evaluate_condition(
            ast.And(conditions=(left, right)), context
        ) == evaluate_condition(
            ast.And(conditions=(right, left)), context
        )
        assert evaluate_condition(
            ast.Or(conditions=(left, right)), context
        ) == evaluate_condition(
            ast.Or(conditions=(right, left)), context
        )

    @given(condition=conditions)
    @settings(max_examples=60, deadline=None)
    def test_excluded_middle(self, condition):
        context = make_context()
        assert evaluate_condition(
            ast.Or(
                conditions=(condition, ast.Not(condition=condition))
            ),
            context,
        )

    @given(condition=conditions)
    @settings(max_examples=60, deadline=None)
    def test_evaluation_is_pure(self, condition):
        context = make_context()
        first = evaluate_condition(condition, context)
        second = evaluate_condition(condition, context)
        assert first == second
