"""Unit and property tests for the Table-I XML codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.model.builder import ModelBuilder
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    TaskRecord,
)
from repro.store.xmlcodec import (
    StoredRow,
    decode_row,
    encode_record_xml,
    encode_row,
)


def requisition():
    return DataRecord.create(
        record_id="PE3",
        app_id="App01",
        entity_type="jobrequisition",
        timestamp=86400,
        attributes={
            "reqid": "Req001",
            "type": "new",
            "dept": "Dept501",
            "position": "Sales",
        },
    )


class TestEncode:
    def test_row_columns(self):
        row = encode_row(requisition())
        assert row.record_id == "PE3"
        assert row.record_class is RecordClass.DATA
        assert row.app_id == "App01"

    def test_xml_shape_matches_table1(self):
        xml = encode_record_xml(requisition())
        assert "jobrequisition" in xml
        assert 'class="data"' in xml or "class=\"data\"" in xml
        assert "Req001" in xml
        assert "Dept501" in xml

    def test_as_tuple_matches_paper_columns(self):
        row = encode_row(requisition())
        record_id, record_class, app_id, xml = row.as_tuple()
        assert (record_id, record_class, app_id) == ("PE3", "Data", "App01")
        assert xml.startswith("<ps:")

    def test_relation_encodes_endpoints(self):
        relation = RelationRecord.create(
            "PE5", "App01", "submitterOf", source_id="PE1", target_id="PE3"
        )
        xml = encode_record_xml(relation)
        assert "PE1" in xml and "PE3" in xml


class TestRoundTrip:
    def test_data_roundtrip_untyped(self):
        record = requisition()
        back = decode_row(encode_row(record))
        assert back.record_id == record.record_id
        assert back.app_id == record.app_id
        assert back.entity_type == record.entity_type
        assert back.timestamp == record.timestamp
        assert back.get("reqid") == "Req001"

    def test_data_roundtrip_typed_with_model(self):
        model = (
            ModelBuilder("m")
            .task("submission", "Submission", start=int, end=int)
            .build()
        )
        task = TaskRecord.create(
            "PE2",
            "App01",
            "submission",
            timestamp=10,
            attributes={"start": 10, "end": 25},
        )
        back = decode_row(encode_row(task), model)
        assert back.get("start") == 10
        assert back.get("end") == 25

    def test_relation_roundtrip(self):
        relation = RelationRecord.create(
            "PE5",
            "App01",
            "submitterOf",
            source_id="PE1",
            target_id="PE3",
            timestamp=7,
        )
        back = decode_row(encode_row(relation))
        assert isinstance(back, RelationRecord)
        assert back.source_id == "PE1"
        assert back.target_id == "PE3"
        assert back.timestamp == 7

    @given(
        reqid=st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x2FF
            ),
            min_size=1,
            max_size=20,
        ),
        timestamp=st.integers(min_value=0, max_value=10**9),
    )
    def test_roundtrip_property(self, reqid, timestamp):
        record = DataRecord.create(
            "PE1",
            "App01",
            "jobrequisition",
            timestamp=timestamp,
            attributes={"reqid": reqid},
        )
        back = decode_row(encode_row(record))
        assert back.get("reqid") == reqid
        assert back.timestamp == timestamp


class TestCorruptionDetection:
    def test_malformed_xml_raises(self):
        row = StoredRow("X1", RecordClass.DATA, "App01", "<not-closed")
        with pytest.raises(CodecError):
            decode_row(row)

    def test_id_mismatch_raises(self):
        row = encode_row(requisition())
        tampered = StoredRow("OTHER", row.record_class, row.app_id, row.xml)
        with pytest.raises(CodecError):
            decode_row(tampered)

    def test_class_mismatch_raises(self):
        row = encode_row(requisition())
        tampered = StoredRow(
            row.record_id, RecordClass.TASK, row.app_id, row.xml
        )
        with pytest.raises(CodecError):
            decode_row(tampered)

    def test_appid_mismatch_raises(self):
        row = encode_row(requisition())
        tampered = StoredRow(
            row.record_id, row.record_class, "App99", row.xml
        )
        with pytest.raises(CodecError):
            decode_row(tampered)
