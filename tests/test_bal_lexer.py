"""Unit tests for the BAL lexer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.brms.bal.tokens import Token, TokenType, tokenize
from repro.errors import BalSyntaxError


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestTokenKinds:
    def test_words(self):
        assert kinds("if then else") == [TokenType.WORD] * 3

    def test_string(self):
        tokens = tokenize('"new position"')
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "new position"

    def test_variable(self):
        tokens = tokenize("'the current job request'")
        assert tokens[0].type is TokenType.VARIABLE
        assert tokens[0].value == "the current job request"

    def test_parameter(self):
        tokens = tokenize("<string ID>")
        assert tokens[0].type is TokenType.PARAMETER
        assert tokens[0].value == "string ID"

    def test_numbers(self):
        assert values("42 3.5") == ["42", "3.5"]
        assert kinds("42 3.5") == [TokenType.NUMBER] * 2

    def test_number_trailing_dot_not_consumed(self):
        # "42." keeps the integer intact; the stray '.' itself is not a
        # BAL character and is rejected.
        with pytest.raises(BalSyntaxError):
            tokenize("42.")
        assert values("42.5") == ["42.5"]

    def test_punctuation(self):
        assert kinds("; : , - ( ) + * /") == [TokenType.PUNCT] * 9

    def test_mixed_statement(self):
        text = "set 'x' to a job requisition where the type of this is \"new\" ;"
        tokens = tokenize(text)
        assert tokens[0].is_word("set")
        assert tokens[1].type is TokenType.VARIABLE
        assert tokens[-2].is_punct(";")
        assert tokens[-1].type is TokenType.EOF

    def test_eof_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("x")[-1].type is TokenType.EOF


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("if\n  then")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_column_after_string(self):
        tokens = tokenize('"ab" x')
        assert tokens[1].column == 6


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(BalSyntaxError):
            tokenize('"never closed')

    def test_unterminated_variable(self):
        with pytest.raises(BalSyntaxError):
            tokenize("'never closed")

    def test_unterminated_parameter(self):
        with pytest.raises(BalSyntaxError):
            tokenize("<never closed")

    def test_empty_variable(self):
        with pytest.raises(BalSyntaxError):
            tokenize("''")

    def test_empty_parameter(self):
        with pytest.raises(BalSyntaxError):
            tokenize("<>")

    def test_unexpected_character(self):
        with pytest.raises(BalSyntaxError) as excinfo:
            tokenize("x @ y")
        assert excinfo.value.column == 3

    def test_error_carries_location(self):
        with pytest.raises(BalSyntaxError) as excinfo:
            tokenize("line one\n  @")
        assert excinfo.value.line == 2


class TestTokenHelpers:
    def test_is_word_case_insensitive(self):
        token = Token(TokenType.WORD, "If", 1, 1)
        assert token.is_word("if")
        assert token.is_word("then", "if")
        assert not token.is_word("then")

    def test_is_punct(self):
        token = Token(TokenType.PUNCT, ";", 1, 1)
        assert token.is_punct(";")
        assert token.is_punct(",", ";")
        assert not token.is_punct(",")


@given(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F
        ),
        min_size=1,
        max_size=30,
    )
)
def test_alnum_text_always_tokenizes(text):
    if text[0].isdigit():
        text = "x" + text
    tokens = tokenize(text)
    assert tokens[-1].type is TokenType.EOF
