"""Tests for the baselines: hardcoded controls, replay, store queries.

The load-bearing claim (paper + E4): hardcoded IT controls and
vocabulary-authored BAL controls produce IDENTICAL verdicts on the same
store, at any visibility level.
"""

import pytest

from repro.baselines.hardcoded import (
    expenses_hardcoded_controls,
    incidents_hardcoded_controls,
    hiring_hardcoded_controls,
    procurement_hardcoded_controls,
)
from repro.baselines.replay import hiring_replay_checker, normative_sequences
from repro.baselines.storequery import hiring_gm_approval_query_control
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.status import ComplianceStatus
from repro.metrics.detection import verdict_agreement
from repro.processes import expenses, hiring, incidents, procurement
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import VisibilityPolicy

HARDCODED = {
    "hiring": (hiring, hiring_hardcoded_controls),
    "procurement": (procurement, procurement_hardcoded_controls),
    "expenses": (expenses, expenses_hardcoded_controls),
    "incidents": (incidents, incidents_hardcoded_controls),
}


def simulate(module, cases=30, seed=17, rate=0.3, visibility=None):
    workload = module.workload()
    plan = ViolationPlan.uniform(list(module.VIOLATION_KINDS), rate)
    return workload.simulate(
        cases=cases, seed=seed, violations=plan, visibility=visibility
    )


class TestHardcodedEquivalence:
    @pytest.fixture(params=sorted(HARDCODED), ids=sorted(HARDCODED))
    def setup(self, request):
        return HARDCODED[request.param]

    def test_identical_verdicts_full_visibility(self, setup):
        module, build_controls = setup
        sim = simulate(module)
        evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
        bal_results = evaluator.run(sim.controls)
        hard_results = []
        for control in build_controls():
            hard_results.extend(control.evaluate_all(sim.store))
        agreements, comparisons, disagreements = verdict_agreement(
            bal_results, hard_results
        )
        assert comparisons == len(bal_results)
        assert disagreements == []
        assert agreements == comparisons

    def test_identical_verdicts_partial_visibility(self, setup):
        module, build_controls = setup
        sim = simulate(
            module, visibility=VisibilityPolicy.uniform(0.5, seed=23)
        )
        evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
        bal_results = evaluator.run(sim.controls)
        hard_results = []
        for control in build_controls():
            hard_results.extend(control.evaluate_all(sim.store))
        __, comparisons, disagreements = verdict_agreement(
            bal_results, hard_results
        )
        assert comparisons > 0
        assert disagreements == []


class TestReplayBaseline:
    def test_normative_sequences_exclude_violation_branches(self):
        sequences = normative_sequences(
            hiring.build_spec(),
            exclude_branches={"skip_approval", "skip"},
        )
        assert (
            "submit_requisition",
            "approve_reject",
            "find_candidates",
            "notify",
        ) in sequences
        # No normative path skips the candidate search.
        assert all("find_candidates" in seq for seq in sequences)

    def test_clean_traces_replay(self):
        sim = simulate(hiring, rate=0.0)
        checker = hiring_replay_checker()
        results = checker.evaluate_all(sim.store)
        assert all(
            r.status is ComplianceStatus.SATISFIED for r in results
        )

    def test_detects_control_flow_skip(self):
        workload = hiring.workload()
        plan = ViolationPlan.uniform(["no_candidates"], 1.0)
        sim = workload.simulate(cases=10, seed=3, violations=plan)
        checker = hiring_replay_checker()
        results = checker.evaluate_all(sim.store)
        assert all(
            r.status is ComplianceStatus.VIOLATED for r in results
        )

    def test_misses_data_level_violation(self):
        # A self-approval replays perfectly: control flow is unchanged.
        workload = hiring.workload()
        plan = ViolationPlan.uniform(["self_approval"], 1.0)
        sim = workload.simulate(cases=10, seed=3, violations=plan)
        checker = hiring_replay_checker()
        results = checker.evaluate_all(sim.store)
        assert all(
            r.status is ComplianceStatus.SATISFIED for r in results
        )

    def test_misses_skip_approval_disguised_as_existing_path(self):
        # Without business data, skipping approval on a NEW position looks
        # exactly like the legitimate existing-position path.
        workload = hiring.workload()
        plan = ViolationPlan.uniform(["skip_approval"], 1.0)
        sim = workload.simulate(cases=10, seed=3, violations=plan)
        checker = hiring_replay_checker()
        results = checker.evaluate_all(sim.store)
        assert all(
            r.status is ComplianceStatus.SATISFIED for r in results
        )

    def test_false_alarms_under_partial_visibility(self):
        sim = simulate(
            hiring, rate=0.0, visibility=VisibilityPolicy.uniform(0.5, seed=2)
        )
        checker = hiring_replay_checker()
        results = checker.evaluate_all(sim.store)
        violated = [
            r for r in results if r.status is ComplianceStatus.VIOLATED
        ]
        assert violated, "dropped task events should break replay"

    def test_prefix_mode(self):
        from repro.baselines.replay import ReplayChecker

        checker = ReplayChecker(
            name="t", sequences={("a", "b", "c")}, prefix_ok=True
        )
        assert checker.conforms(("a", "b"))
        assert checker.conforms(("a", "b", "c"))
        assert not checker.conforms(("b",))


class TestStoreQueryBaseline:
    def test_agrees_with_bal_control(self):
        sim = simulate(hiring)
        evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
        bal_results = [
            r
            for r in evaluator.run(sim.controls)
            if r.control_name == "gm-approval"
        ]
        query_results = hiring_gm_approval_query_control().evaluate_all(
            sim.store
        )
        __, comparisons, disagreements = verdict_agreement(
            bal_results, query_results
        )
        assert comparisons == len(bal_results)
        assert disagreements == []
