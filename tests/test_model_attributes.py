"""Unit tests for attribute typing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaViolation
from repro.model.attributes import AttributeSpec, AttributeType


class TestAttributeType:
    def test_string_roundtrip(self):
        assert AttributeType.STRING.from_wire("hello") == "hello"
        assert AttributeType.STRING.to_wire("hello") == "hello"

    def test_integer_roundtrip(self):
        assert AttributeType.INTEGER.from_wire("42") == 42
        assert AttributeType.INTEGER.to_wire(42) == "42"

    def test_integer_rejects_garbage(self):
        with pytest.raises(SchemaViolation):
            AttributeType.INTEGER.from_wire("forty-two")

    def test_float_roundtrip(self):
        assert AttributeType.FLOAT.from_wire("3.5") == 3.5

    def test_float_rejects_garbage(self):
        with pytest.raises(SchemaViolation):
            AttributeType.FLOAT.from_wire("pi")

    def test_boolean_accepts_variants(self):
        for text in ("true", "True", "1", "yes"):
            assert AttributeType.BOOLEAN.from_wire(text) is True
        for text in ("false", "FALSE", "0", "no"):
            assert AttributeType.BOOLEAN.from_wire(text) is False

    def test_boolean_rejects_garbage(self):
        with pytest.raises(SchemaViolation):
            AttributeType.BOOLEAN.from_wire("maybe")

    def test_boolean_to_wire(self):
        assert AttributeType.BOOLEAN.to_wire(True) == "true"
        assert AttributeType.BOOLEAN.to_wire(False) == "false"

    def test_timestamp_is_integer_seconds(self):
        assert AttributeType.TIMESTAMP.from_wire("86400") == 86400

    def test_accepts_distinguishes_bool_from_int(self):
        assert AttributeType.INTEGER.accepts(5)
        assert not AttributeType.INTEGER.accepts(True)
        assert AttributeType.BOOLEAN.accepts(True)
        assert not AttributeType.BOOLEAN.accepts(1)

    def test_float_accepts_int(self):
        assert AttributeType.FLOAT.accepts(3)
        assert AttributeType.FLOAT.accepts(3.5)

    @given(st.integers())
    def test_integer_wire_roundtrip_property(self, value):
        wire = AttributeType.INTEGER.to_wire(value)
        assert AttributeType.INTEGER.from_wire(wire) == value

    @given(st.booleans())
    def test_boolean_wire_roundtrip_property(self, value):
        wire = AttributeType.BOOLEAN.to_wire(value)
        assert AttributeType.BOOLEAN.from_wire(wire) is value

    @given(st.text(min_size=0, max_size=50))
    def test_string_wire_roundtrip_property(self, value):
        wire = AttributeType.STRING.to_wire(value)
        assert AttributeType.STRING.from_wire(wire) == value


class TestAttributeSpec:
    def test_default_verbalization_expands_underscores(self):
        spec = AttributeSpec(name="manager_gen")
        assert spec.verbalized == "manager gen"

    def test_explicit_verbalization_kept(self):
        spec = AttributeSpec(name="managergen", verbalized="general manager")
        assert spec.verbalized == "general manager"

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaViolation):
            AttributeSpec(name="bad name!")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaViolation):
            AttributeSpec(name="")

    def test_validate_accepts_matching_type(self):
        spec = AttributeSpec(name="count", type=AttributeType.INTEGER)
        spec.validate(5)

    def test_validate_rejects_wrong_type(self):
        spec = AttributeSpec(name="count", type=AttributeType.INTEGER)
        with pytest.raises(SchemaViolation):
            spec.validate("five")
