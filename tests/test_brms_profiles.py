"""Tests for verbalization profiles (different vocabularies, same model)."""

import pytest

from repro.brms.bal.compiler import BalCompiler
from repro.brms.engine import RuleEngine, RuleVerdict
from repro.brms.profiles import (
    DEFAULT_PROFILE,
    VerbalizationProfile,
    profile_from_translations,
    verbalize_with_profile,
)
from repro.errors import VocabularyError
from tests.conftest import build_hiring_trace

GERMAN = profile_from_translations(
    "de",
    concepts={
        "jobrequisition": "Stellenausschreibung",
        "approvalstatus": "Genehmigung",
        "candidatelist": "Kandidatenliste",
        "person": "Mitarbeiter",
    },
    jobrequisition={
        "type": "Stellenart",
        "reqid": "Vorgangsnummer",
        "managergen": "Bereichsleiter",
        "approvalOf": "Genehmigung",
        "candidatesFor": "Kandidatenliste",
        "submitterOf": "Antragsteller",
    },
)


class TestProfileConstruction:
    def test_default_profile_is_identity(self, hiring_xom):
        default = verbalize_with_profile(hiring_xom, DEFAULT_PROFILE)
        assert default.has_concept("Job Requisition")
        member = default.member("Job Requisition", "general manager")
        assert member.attribute == "managergen"

    def test_translated_concepts_and_phrases(self, hiring_xom):
        vocabulary = verbalize_with_profile(hiring_xom, GERMAN)
        assert vocabulary.has_concept("Stellenausschreibung")
        assert not vocabulary.has_concept("Job Requisition")
        member = vocabulary.member("Stellenausschreibung", "Bereichsleiter")
        assert member.attribute == "managergen"

    def test_untranslated_members_keep_default_phrase(self, hiring_xom):
        vocabulary = verbalize_with_profile(hiring_xom, GERMAN)
        member = vocabulary.member("Stellenausschreibung",
                                   "offered position")
        assert member.attribute == "position"

    def test_colliding_phrases_rejected(self, hiring_xom):
        bad = VerbalizationProfile(
            name="bad",
            phrases={
                ("jobrequisition", "reqid"): "thing",
                ("jobrequisition", "type"): "thing",
            },
        )
        with pytest.raises(VocabularyError):
            verbalize_with_profile(hiring_xom, bad)

    def test_profile_from_translations_lookup(self):
        profile = profile_from_translations(
            "x", jobrequisition={"managergen": "chef"}
        )
        assert profile.phrase("jobrequisition", "managergen", "gm") == "chef"
        assert profile.phrase("jobrequisition", "other", "gm") == "gm"
        assert profile.concept_label("jobrequisition", "Default") == "Default"


class TestCrossVocabularyEquivalence:
    """The same control authored in two vocabularies gives one verdict."""

    ENGLISH_RULE = """
    definitions
      set 'req' to a Job Requisition
          where the position type of this Job Requisition is "new" ;
    if
      the approval of 'req' is not null
    then
      the internal control is satisfied
    """

    GERMAN_RULE = """
    definitions
      set 'req' to a Stellenausschreibung
          where the Stellenart of this Stellenausschreibung is "new" ;
    if
      the Genehmigung of 'req' is not null
    then
      the internal control is satisfied
    """

    @pytest.mark.parametrize("with_approval", [True, False])
    def test_identical_verdicts(self, hiring_xom, with_approval):
        trace = build_hiring_trace("App01", with_approval=with_approval)
        english = verbalize_with_profile(hiring_xom, DEFAULT_PROFILE)
        german = verbalize_with_profile(hiring_xom, GERMAN)

        english_rule = BalCompiler(english).compile("c", self.ENGLISH_RULE)
        german_rule = BalCompiler(german).compile("c", self.GERMAN_RULE)

        english_outcome = RuleEngine(hiring_xom, english).evaluate(
            english_rule, trace
        )
        german_outcome = RuleEngine(hiring_xom, german).evaluate(
            german_rule, trace
        )
        assert english_outcome.verdict is german_outcome.verdict
        expected = (
            RuleVerdict.SATISFIED if with_approval
            else RuleVerdict.NOT_SATISFIED
        )
        assert english_outcome.verdict is expected

    def test_english_rule_fails_against_german_vocabulary(self, hiring_xom):
        from repro.errors import BalCompileError

        german = verbalize_with_profile(hiring_xom, GERMAN)
        with pytest.raises(BalCompileError):
            BalCompiler(german).compile("c", self.ENGLISH_RULE)
