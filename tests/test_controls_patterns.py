"""Tests for structural (subgraph-pattern) control verification."""

import pytest

from repro.brms.bal.compiler import BalCompiler
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.patterns import (
    PatternVerifier,
    pattern_from_rule,
)
from repro.controls.status import ComplianceStatus
from repro.errors import PatternError
from repro.metrics.detection import verdict_agreement
from repro.processes import hiring
from repro.processes.violations import ViolationPlan

PAPER_CONTROL = hiring.GM_APPROVAL_CONTROL


@pytest.fixture
def sim():
    workload = hiring.workload()
    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.3)
    return workload.simulate(cases=40, seed=21, violations=plan)


@pytest.fixture
def structural(sim):
    compiled = BalCompiler(sim.vocabulary).compile(
        "gm-approval", PAPER_CONTROL
    )
    return pattern_from_rule(compiled, sim.vocabulary)


class TestPatternCompilation:
    def test_anchor_constrained_by_where_clause(self, structural):
        anchor = structural.anchor_pattern.nodes[0]
        assert anchor.entity_type == "jobrequisition"
        assert len(anchor.predicates) == 1
        assert anchor.predicates[0].name == "type"
        assert anchor.predicates[0].value == "new"

    def test_required_relations_extracted(self, structural):
        relations = {rel for __, rel in structural.required_relations}
        assert relations == {"approvalOf", "candidatesFor"}

    def test_full_pattern_shape(self, structural):
        assert len(structural.full_pattern.nodes) == 3  # anchor + 2 evidence
        assert len(structural.full_pattern.edges) == 2
        assert all(
            edge.target_var == "anchor"
            for edge in structural.full_pattern.edges
        )

    def test_rule_without_anchor_rejected(self, sim):
        compiled = BalCompiler(sim.vocabulary).compile(
            "computational", "if 1 is 1 then the internal control is satisfied"
        )
        with pytest.raises(PatternError):
            pattern_from_rule(compiled, sim.vocabulary)

    def test_value_comparisons_are_ignored_not_misread(self, sim):
        # SOD compares two emails; the structural skeleton must not invent
        # constraints from it.
        compiled = BalCompiler(sim.vocabulary).compile(
            "sod", hiring.SOD_CONTROL
        )
        structural = pattern_from_rule(compiled, sim.vocabulary)
        assert structural.required_relations == ()


class TestPatternVerification:
    def test_agrees_with_rule_engine_on_edge_existence_control(
        self, sim, structural
    ):
        # The paper's worked control is purely edge-existential, so the
        # structural verifier and the full rule engine must agree on every
        # trace.
        engine_results = [
            r
            for r in ComplianceEvaluator(
                sim.store, sim.xom, sim.vocabulary
            ).run(sim.controls)
            if r.control_name == "gm-approval"
        ]
        pattern_results = PatternVerifier(sim.store).check_all_traces(
            structural
        )
        __, comparisons, disagreements = verdict_agreement(
            engine_results, pattern_results
        )
        assert comparisons == len(engine_results) == 40
        assert disagreements == []

    def test_statuses_present(self, sim, structural):
        results = PatternVerifier(sim.store).check_all_traces(structural)
        statuses = {r.status for r in results}
        assert ComplianceStatus.SATISFIED in statuses
        assert ComplianceStatus.VIOLATED in statuses
        assert ComplianceStatus.NOT_APPLICABLE in statuses

    def test_single_trace_check(self, sim, structural):
        trace_id = sim.store.app_ids()[0]
        result = PatternVerifier(sim.store).check_trace(structural, trace_id)
        assert result.trace_id == trace_id
        assert result.control_name == "gm-approval"
