"""Unit tests for XOM generation and runtime objects."""

import pytest

from repro.errors import XomError
from tests.conftest import build_hiring_trace


class TestXomGeneration:
    def test_class_per_node_type(self, hiring_xom):
        names = {c.node_type.name for c in hiring_xom.classes()}
        assert "jobrequisition" in names
        assert "person" in names
        assert "submission" in names

    def test_qualified_names_use_package(self, hiring_xom):
        xom_class = hiring_xom.xom_class("jobrequisition")
        assert xom_class.qualified_name == "mycompany.jobrequisition"
        assert xom_class.simple_name == "jobrequisition"

    def test_getters_generated_per_attribute(self, hiring_xom):
        xom_class = hiring_xom.xom_class("jobrequisition")
        assert xom_class.getters["managergen"] == "getManagergen"
        assert xom_class.getters["reqid"] == "getReqid"

    def test_relation_accessors_generated(self, hiring_xom):
        xom_class = hiring_xom.xom_class("jobrequisition")
        types = {a.relation_type for a in xom_class.relations}
        # Data records can be targets of submitterOf/approvalOf/... edges.
        assert "submitterOf" in types
        assert "approvalOf" in types

    def test_unknown_type_raises(self, hiring_xom):
        with pytest.raises(XomError):
            hiring_xom.xom_class("widget")

    def test_render_class_source_matches_paper_listing(self, hiring_xom):
        source = hiring_xom.render_class_source("jobrequisition")
        assert source.startswith("package mycompany;")
        assert "public class jobrequisition {" in source
        assert 'public String class = "data";' in source
        assert "getManagergen" in source


class TestXomObjects:
    @pytest.fixture
    def trace(self):
        return build_hiring_trace()

    def test_wrap_and_get(self, hiring_xom, trace):
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        assert requisition.get("reqid") == "Req-App01"
        assert requisition.get("missing") is None

    def test_instances(self, hiring_xom, trace):
        people = hiring_xom.instances(trace, "person")
        assert len(people) == 1
        assert people[0].record.record_id == "App01-R1"

    def test_follow_in(self, hiring_xom, trace):
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        submitters = requisition.follow("submitterOf", "in")
        assert [o.record.record_id for o in submitters] == ["App01-R1"]

    def test_follow_out(self, hiring_xom, trace):
        person = hiring_xom.wrap(trace.node("App01-R1"), trace)
        submitted = person.follow("submitterOf", "out")
        assert [o.record.record_id for o in submitted] == ["App01-D1"]

    def test_follow_one(self, hiring_xom, trace):
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        submitter = requisition.follow_one("submitterOf", "in")
        assert submitter is not None
        assert submitter.get("name") == "Joe Doe"

    def test_follow_one_absent_is_none(self, hiring_xom):
        trace = build_hiring_trace(with_approval=False)
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        assert requisition.follow_one("approvalOf", "in") is None

    def test_follow_bad_direction(self, hiring_xom, trace):
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        with pytest.raises(XomError):
            requisition.follow("submitterOf", "sideways")

    def test_equality_by_record_id(self, hiring_xom, trace):
        a = hiring_xom.wrap(trace.node("App01-D1"), trace)
        b = hiring_xom.wrap(trace.node("App01-D1"), trace)
        c = hiring_xom.wrap(trace.node("App01-R1"), trace)
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_wrap_custom_record_without_declared_type(
        self, hiring_xom, trace
    ):
        from repro.model.records import CustomRecord

        control = CustomRecord.create("App01-C1", "App01", "controlpoint")
        trace.add_node_record(control)
        wrapped = hiring_xom.wrap(control, trace)
        assert wrapped.xom_class.simple_name == "controlpoint"
        assert wrapped.get("anything") is None
