"""Sharded provenance store: routing, vector cursors, snapshots, writers.

The sharded backend's *contract* (same store semantics as any other
backend) is pinned by the conformance suites; this module tests what is
new about sharding itself:

- deterministic trace→shard routing, stable across processes,
- vector-cursor algebra, including the N=1 degenerate case that keeps
  pre-sharding ``int`` cursors (and the snapshots carrying them) valid,
- the composite change feed's mid-stream resumability,
- the scatter-gather view (``dirty_traces_by_shard``),
- snapshot compatibility: a verdict snapshot written by a plain SQLite
  store restores under a single-shard composite over the same file,
- a multi-writer smoke: two handles appending to disjoint shards of the
  same on-disk layout, folded together by a reader whose incremental
  verdicts match a cold unsharded sweep,
- the ``store-stats`` CLI subcommand.
"""

import io

import pytest

from repro.controls.authoring import ControlAuthoringTool
from repro.controls.evaluator import ComplianceEvaluator
from repro.errors import BackendError
from repro.store.backends import (
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
)
from repro.store.backends.sharded import shard_index_for, sqlite_shard_path
from repro.store.cursor import (
    VectorCursor,
    advance_cursor,
    coerce_cursor,
    cursor_covers,
    cursor_distance,
    cursor_from_wire,
    cursor_to_wire,
    cursor_total,
)
from repro.store.locks import FileLock, NullLock
from repro.store.store import ProvenanceStore

from tests.conftest import build_hiring_trace
from tests.test_controls_evaluation import GM_CONTROL, populate_store
from tests.test_incremental_core import norm
from tests.test_store_store import sample_records


def sharded_memory(shards):
    return ShardedBackend([MemoryBackend() for __ in range(shards)])


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


class TestRouting:
    def test_routing_is_deterministic_and_in_range(self):
        ids = [f"App{i:03d}" for i in range(200)]
        for n in (1, 2, 4, 7):
            first = [shard_index_for(app_id, n) for app_id in ids]
            assert all(0 <= index < n for index in first)
            assert [shard_index_for(a, n) for a in ids] == first
        # Not all traces on one shard (crc32 actually spreads them).
        assert len({shard_index_for(a, 4) for a in ids}) == 4

    def test_backend_and_store_agree_with_module_routing(self):
        backend = sharded_memory(4)
        store = ProvenanceStore(backend=backend)
        assert store.shard_count() == 4
        for app_id in ("App01", "App02", "App99"):
            expected = shard_index_for(app_id, 4)
            assert backend.shard_index(app_id) == expected
            assert store.shard_index(app_id) == expected
        store.close()

    def test_whole_trace_lands_on_one_shard(self):
        backend = sharded_memory(4)
        store = ProvenanceStore(backend=backend)
        store.extend(sample_records("App01"))
        store.extend(sample_records("App02"))
        store.flush()
        for app_id in ("App01", "App02"):
            home = backend.shard_index(app_id)
            for index, child in enumerate(backend.children):
                rows = [
                    r for r in child.iter_rows() if r.app_id == app_id
                ]
                assert bool(rows) == (index == home)
        store.close()

    def test_sqlite_shard_paths_are_distinct(self, tmp_path):
        base = str(tmp_path / "prov.db")
        paths = [sqlite_shard_path(base, i) for i in range(3)]
        assert len(set(paths)) == 3
        backend = ShardedBackend.for_sqlite(base, 3)
        assert [child.path for child in backend.children] == paths
        backend.close()

    def test_empty_shard_list_rejected(self):
        with pytest.raises(BackendError):
            ShardedBackend([])


# ---------------------------------------------------------------------------
# Vector cursors
# ---------------------------------------------------------------------------


class TestVectorCursor:
    def test_totals_and_distance(self):
        cursor = VectorCursor((3, 0, 5))
        assert cursor_total(cursor) == 8
        assert cursor_total(8) == 8
        assert cursor_distance(cursor, VectorCursor((1, 0, 5))) == 2
        assert cursor_distance(9, 4) == 5

    def test_degenerate_single_shard_equals_int(self):
        assert VectorCursor((7,)) == 7
        assert 7 == VectorCursor((7,))
        assert hash(VectorCursor((7,))) == hash(7)
        assert VectorCursor((0, 0)) == 0
        assert VectorCursor((1, 2)) != 3

    def test_covers_componentwise(self):
        high = VectorCursor((3, 4))
        low = VectorCursor((3, 2))
        assert cursor_covers(high, low)
        assert not cursor_covers(low, high)
        # Incomparable shapes never cover (except the empty int 0).
        assert cursor_covers(high, 0)
        assert not cursor_covers(high, 5)
        assert cursor_covers(VectorCursor((5,)), 4)
        assert not cursor_covers(3, VectorCursor((1, 1)))
        assert cursor_covers(0, VectorCursor((0, 0)))

    def test_advance_and_coerce(self):
        assert advance_cursor(3, 0) == 4
        with pytest.raises(ValueError):
            advance_cursor(3, 1)  # int cursors only know shard 0
        stepped = advance_cursor(VectorCursor((1, 1)), 1)
        assert stepped == VectorCursor((1, 2))
        assert coerce_cursor(0, 3) == VectorCursor((0, 0, 0))
        assert coerce_cursor(5, 1) == VectorCursor((5,))
        with pytest.raises(ValueError):
            coerce_cursor(5, 2)  # non-zero int is ambiguous across shards

    def test_wire_roundtrip(self):
        assert cursor_to_wire(6) == 6
        assert cursor_from_wire(6) == 6
        vector = VectorCursor((2, 0, 9))
        assert cursor_to_wire(vector) == [2, 0, 9]
        assert cursor_from_wire([2, 0, 9]) == vector
        assert str(vector) == "2|0|9"

    def test_cursors_are_immutable(self):
        cursor = VectorCursor((1, 2))
        with pytest.raises(AttributeError):
            cursor.seqs = (9, 9)


# ---------------------------------------------------------------------------
# Composite change feed
# ---------------------------------------------------------------------------


class TestCompositeFeed:
    def test_last_seq_mirrors_child_counts(self):
        backend = sharded_memory(4)
        store = ProvenanceStore(backend=backend)
        for i in range(12):
            store.extend(sample_records(f"App{i:02d}"))
        store.flush()
        cursor = store.last_seq()
        assert isinstance(cursor, VectorCursor)
        assert cursor.seqs == tuple(
            child.count() for child in backend.children
        )
        assert cursor_total(cursor) == 36
        store.close()

    def test_midstream_resume_replays_exact_suffix(self):
        store = ProvenanceStore(backend=sharded_memory(3))
        for i in range(8):
            store.extend(sample_records(f"App{i:02d}"))
        feed = list(store.changes_since(0))
        assert len(feed) == 24
        for position in (0, 5, 11, 22):
            cursor, __ = feed[position]
            resumed = list(store.changes_since(cursor))
            assert [
                (seq, r.record_id) for seq, r in resumed
            ] == [(seq, r.record_id) for seq, r in feed[position + 1:]]
        store.close()


# ---------------------------------------------------------------------------
# Scatter-gather dirty view
# ---------------------------------------------------------------------------


class TestScatterGather:
    def test_dirty_traces_grouped_by_home_shard(
        self, hiring_model, hiring_xom, hiring_vocabulary
    ):
        store = ProvenanceStore(
            model=hiring_model, backend=sharded_memory(4)
        )
        app_ids = [f"App{i:02d}" for i in range(1, 7)]
        for app_id in app_ids:
            graph = build_hiring_trace(app_id)
            for record in sorted(graph.nodes(), key=lambda r: r.record_id):
                store.append(record)
            for edge in sorted(graph.edges(), key=lambda r: r.record_id):
                store.append(edge)
        tool = ControlAuthoringTool(hiring_vocabulary)
        tool.author("gm-approval", GM_CONTROL)
        tool.deploy("gm-approval")
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        materializer = evaluator.materializer
        materializer.register(tool.control("gm-approval"))
        grouped = materializer.dirty_traces_by_shard()
        assert sorted(
            trace for traces in grouped.values() for trace in traces
        ) == sorted(app_ids)
        for shard, traces in grouped.items():
            assert traces  # no empty groups reported
            assert all(
                shard_index_for(trace, 4) == shard for trace in traces
            )
        evaluator.run([tool.control("gm-approval")])
        assert materializer.dirty_traces_by_shard() == {}
        store.close()

    def test_unsharded_store_groups_under_shard_zero(
        self, hiring_model, hiring_xom, hiring_vocabulary
    ):
        store = populate_store(
            hiring_model,
            [build_hiring_trace("App01"), build_hiring_trace("App02")],
        )
        tool = ControlAuthoringTool(hiring_vocabulary)
        tool.author("gm-approval", GM_CONTROL)
        tool.deploy("gm-approval")
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        evaluator.materializer.register(tool.control("gm-approval"))
        assert evaluator.materializer.dirty_traces_by_shard() == {
            0: ["App01", "App02"]
        }
        store.close()


# ---------------------------------------------------------------------------
# Snapshot compatibility across the sharding boundary
# ---------------------------------------------------------------------------


class TestSnapshotCompatibility:
    def _controls(self, hiring_vocabulary):
        tool = ControlAuthoringTool(hiring_vocabulary)
        tool.author("gm-approval", GM_CONTROL)
        tool.deploy("gm-approval")
        return [tool.control("gm-approval")]

    def test_pre_sharding_snapshot_restores_under_composite(
        self, tmp_path, hiring_model, hiring_xom, hiring_vocabulary
    ):
        """A snapshot saved with an int cursor (plain SQLite store, before
        sharding existed) must restore cleanly through the composite-cursor
        code path — the N=1 degenerate case."""
        db = str(tmp_path / "legacy.db")
        store = ProvenanceStore(
            model=hiring_model, backend=SQLiteBackend(db)
        )
        for app_id in ("App01", "App02", "App03"):
            graph = build_hiring_trace(
                app_id, with_approval=(app_id != "App02")
            )
            for record in sorted(graph.nodes(), key=lambda r: r.record_id):
                store.append(record)
            for edge in sorted(graph.edges(), key=lambda r: r.record_id):
                store.append(edge)
        controls = self._controls(hiring_vocabulary)
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        expected = norm(evaluator.run(controls))
        assert isinstance(evaluator.materializer.cursor, int)
        evaluator.materializer.save()
        store.close()

        # Reopen the same file as the only shard of a composite.
        sharded = ProvenanceStore(
            model=hiring_model,
            backend=ShardedBackend([SQLiteBackend(db)]),
        )
        assert isinstance(sharded.last_seq(), VectorCursor)
        controls = self._controls(hiring_vocabulary)
        revaluator = ComplianceEvaluator(
            sharded, hiring_xom, hiring_vocabulary
        )
        materializer = revaluator.materializer
        for control in controls:
            materializer.register(control)
        assert materializer.restore() is True
        # Nothing changed since the snapshot: the sweep is pure table
        # reads, zero re-evaluations.
        assert norm(revaluator.run(controls)) == expected
        assert materializer.refreshes == 0
        sharded.close()

    def test_layout_change_forces_cold_rematerialization(
        self, tmp_path, hiring_model, hiring_xom, hiring_vocabulary
    ):
        """A snapshot taken under one shard layout must not restore under
        another: the cursor shapes are incomparable, so restore() declines
        and the caller re-materializes from scratch."""
        base = str(tmp_path / "prov.db")
        store = ProvenanceStore(
            model=hiring_model,
            backend=ShardedBackend.for_sqlite(base, 2),
        )
        graph = build_hiring_trace("App01")
        for record in sorted(graph.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for edge in sorted(graph.edges(), key=lambda r: r.record_id):
            store.append(edge)
        controls = self._controls(hiring_vocabulary)
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        evaluator.run(controls)
        evaluator.materializer.save()
        store.close()

        # Aux state lives on shard 0; reopen shard 0 alone as a plain
        # store.  The snapshot's 2-vector cursor is incomparable with the
        # single file's feed, so restore() must refuse.
        solo = ProvenanceStore(
            model=hiring_model,
            backend=SQLiteBackend(sqlite_shard_path(base, 0)),
        )
        controls = self._controls(hiring_vocabulary)
        revaluator = ComplianceEvaluator(solo, hiring_xom, hiring_vocabulary)
        for control in controls:
            revaluator.materializer.register(control)
        assert revaluator.materializer.restore() is False
        solo.close()


# ---------------------------------------------------------------------------
# Multi-writer smoke (the full fork demo lives in bench_multiwriter.py)
# ---------------------------------------------------------------------------


class TestMultiWriter:
    def test_disjoint_shard_writers_fold_into_one_feed(
        self, tmp_path, hiring_model, hiring_xom, hiring_vocabulary
    ):
        base = str(tmp_path / "multi.db")
        shards = 2
        app_ids = [f"App{i:02d}" for i in range(1, 9)]
        by_shard = {
            index: [
                a for a in app_ids if shard_index_for(a, shards) == index
            ]
            for index in range(shards)
        }
        assert all(by_shard.values())  # the smoke needs both writers busy

        # Two concurrently open handles over the same shard files, each
        # appending only traces homed on "its" shard.
        writers = [
            ProvenanceStore(
                model=hiring_model,
                backend=ShardedBackend.for_sqlite(base, shards),
            )
            for __ in range(shards)
        ]
        try:
            for index, writer in enumerate(writers):
                for app_id in by_shard[index]:
                    graph = build_hiring_trace(
                        app_id, with_approval=(app_id != "App02")
                    )
                    for record in sorted(
                        graph.nodes(), key=lambda r: r.record_id
                    ):
                        writer.append(record)
                    for edge in sorted(
                        graph.edges(), key=lambda r: r.record_id
                    ):
                        writer.append(edge)
                writer.flush()
        finally:
            for writer in writers:
                writer.close()

        reader = ProvenanceStore(
            model=hiring_model,
            backend=ShardedBackend.for_sqlite(base, shards),
        )
        assert sorted(reader.app_ids()) == app_ids
        controls_tool = ControlAuthoringTool(hiring_vocabulary)
        controls_tool.author("gm-approval", GM_CONTROL)
        controls_tool.deploy("gm-approval")
        controls = [controls_tool.control("gm-approval")]
        actual = norm(
            ComplianceEvaluator(
                reader, hiring_xom, hiring_vocabulary
            ).run(controls, trace_ids=sorted(reader.app_ids()))
        )

        # Cold oracle: the same records in one unsharded memory store.
        oracle = ProvenanceStore(model=hiring_model)
        for app_id in app_ids:
            graph = build_hiring_trace(
                app_id, with_approval=(app_id != "App02")
            )
            for record in sorted(graph.nodes(), key=lambda r: r.record_id):
                oracle.append(record)
            for edge in sorted(graph.edges(), key=lambda r: r.record_id):
                oracle.append(edge)
        expected = norm(
            ComplianceEvaluator(
                oracle, hiring_xom, hiring_vocabulary
            ).run(controls, trace_ids=app_ids)
        )
        assert actual == expected
        reader.close()
        oracle.close()


# ---------------------------------------------------------------------------
# File locks
# ---------------------------------------------------------------------------


class TestFileLock:
    def test_lock_excludes_second_holder(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        import os

        path = str(tmp_path / "shard.lock")
        lock = FileLock(path)
        with lock:
            probe = os.open(path, os.O_RDWR)
            try:
                with pytest.raises(OSError):
                    fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
            finally:
                os.close(probe)
        # Released: a non-blocking acquire now succeeds.
        probe = os.open(path, os.O_RDWR)
        try:
            fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(probe, fcntl.LOCK_UN)
        finally:
            os.close(probe)

    def test_lock_reusable_and_nulllock_noop(self, tmp_path):
        lock = FileLock(str(tmp_path / "again.lock"))
        for __ in range(3):
            with lock:
                pass
        with NullLock():
            pass


# ---------------------------------------------------------------------------
# store-stats CLI
# ---------------------------------------------------------------------------


class TestStoreStatsCli:
    def test_per_shard_stats_over_simulated_db(self, tmp_path):
        from repro.cli import main

        db = str(tmp_path / "stats.db")
        assert (
            main(
                ["simulate", "hiring", "--cases", "6", "--backend",
                 "sqlite", "--db", db, "--shards", "2"],
                out=io.StringIO(),
            )
            == 0
        )
        out = io.StringIO()
        assert (
            main(
                ["store-stats", "--backend", "sqlite", "--db", db,
                 "--shards", "2"],
                out=out,
            )
            == 0
        )
        text = out.getvalue()
        lines = text.strip().splitlines()
        # Each shard contributes a row-count line and a columnar line;
        # totals close the listing.
        assert lines[0].startswith("shard 0:")
        assert lines[1].startswith("shard 0: columnar:")
        assert lines[2].startswith("shard 1:")
        assert lines[3].startswith("shard 1: columnar:")
        assert lines[-2].startswith("total:")
        assert "2 shard(s)" in lines[-2]
        assert lines[-1].startswith("total: columnar:")
        assert sqlite_shard_path(db, 0) in text
        assert sqlite_shard_path(db, 1) in text

    def test_stats_on_memory_backend(self):
        from repro.cli import main

        out = io.StringIO()
        assert main(["store-stats"], out=out) == 0
        assert "in memory" in out.getvalue()

    def test_shards_flag_rejects_nonpositive(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                ["simulate", "hiring", "--shards", "0"], out=io.StringIO()
            )
