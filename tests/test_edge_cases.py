"""Edge-case tests across modules: XML escaping, degenerate inputs."""

import pytest

from repro.errors import BindingError, XomError
from repro.model.records import DataRecord, RelationRecord
from repro.store.xmlcodec import decode_row, encode_row
from tests.conftest import build_hiring_trace


class TestXmlSpecialCharacters:
    @pytest.mark.parametrize(
        "value",
        [
            "a < b & c > d",
            'quoted "value" here',
            "apostrophe's",
            "ampersand && <tag> </tag>",
            "unicode: ü ß € 漢字",
            "  leading and trailing stripped is fine  ".strip(),
        ],
    )
    def test_attribute_values_roundtrip(self, value):
        record = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"note": value}
        )
        back = decode_row(encode_row(record))
        assert back.get("note") == value

    def test_xml_injection_cannot_forge_elements(self):
        # A malicious attribute value must stay a value, never become an
        # element that changes the record's shape.
        payload = "</ps:note><ps:status>approved</ps:status>"
        record = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"note": payload}
        )
        back = decode_row(encode_row(record))
        assert back.get("note") == payload
        assert back.get("status") is None

    def test_empty_attribute_value(self):
        record = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"note": ""}
        )
        back = decode_row(encode_row(record))
        assert back.get("note") == ""


class TestXomEdgeCases:
    def test_follow_one_with_multiple_edges_raises(self, hiring_xom):
        trace = build_hiring_trace("App01")
        trace.add_node_record(
            DataRecord.create(
                "App01-D9", "App01", "approvalstatus",
                attributes={"reqid": "Req-App01", "status": "approved"},
            )
        )
        trace.add_relation_record(
            RelationRecord.create(
                "App01-E9", "App01", "approvalOf",
                source_id="App01-D9", target_id="App01-D1",
            )
        )
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        with pytest.raises(XomError):
            requisition.follow_one("approvalOf", "in")
        # follow() (plural) still works.
        assert len(requisition.follow("approvalOf", "in")) == 2


class TestBinderEdgeCases:
    def test_bind_unknown_node_raises(self, hiring_model):
        from repro.controls.binding import ControlBinder
        from repro.controls.status import ComplianceResult, ComplianceStatus
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore(model=hiring_model)
        result = ComplianceResult(
            control_name="c",
            trace_id="App01",
            status=ComplianceStatus.SATISFIED,
            bound_nodes={"x": "GHOST-NODE"},
        )
        with pytest.raises(BindingError):
            ControlBinder(store).bind(result)


class TestTableRendering:
    def test_rows_wider_than_headers(self):
        from repro.reporting.tables import render_table

        text = render_table(("a",), [("x", "extra", "cells")])
        lines = text.splitlines()
        assert "extra" in lines[-1]
        assert "cells" in lines[-1]

    def test_empty_rows(self):
        from repro.reporting.tables import render_table

        text = render_table(("a", "b"), [])
        assert len(text.splitlines()) == 2  # header + rule


class TestRecorderEmptyStream:
    def test_process_all_empty(self, hiring_model):
        from repro.capture.recorder import RecorderClient
        from repro.processes.hiring import build_mapping
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore(model=hiring_model)
        recorder = RecorderClient(store, build_mapping(hiring_model))
        assert recorder.process_all([]) == []
        assert recorder.stats.seen == 0


class TestSimulatorZeroCases:
    def test_run_zero(self):
        from repro.processes import hiring
        from repro.processes.engine import ProcessSimulator
        from repro.processes.violations import ViolationPlan

        simulator = ProcessSimulator(
            hiring.build_spec(),
            hiring.case_factory(ViolationPlan.none()),
        )
        assert simulator.run(0) == []
