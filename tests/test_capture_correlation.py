"""Unit tests for correlation and enrichment analytics."""

import pytest

from repro.capture.correlation import (
    CorrelationAnalytics,
    CorrelationRule,
    attribute_join,
    co_trace,
)
from repro.errors import CaptureError
from repro.model.builder import ModelBuilder
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
    TaskRecord,
)
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore


@pytest.fixture
def model():
    return (
        ModelBuilder("hiring")
        .data("jobrequisition", "Job Requisition", reqid=str)
        .data("approval", "Approval", reqid=str, status=str)
        .resource("person", "Person", email=str)
        .task("submission", "Submission", actor_email=str)
        .relation("actor", RecordClass.RESOURCE, RecordClass.TASK)
        .relation("approvalOf", RecordClass.DATA, RecordClass.DATA)
        .relation("relatedTo", RecordClass.DATA, RecordClass.DATA)
        .build()
    )


@pytest.fixture
def store(model):
    store = ProvenanceStore(model=model)
    store.append(
        ResourceRecord.create(
            "R1", "App01", "person", attributes={"email": "jdoe@acme.com"}
        )
    )
    store.append(
        TaskRecord.create(
            "T1",
            "App01",
            "submission",
            attributes={"actor_email": "jdoe@acme.com"},
        )
    )
    store.append(
        DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"reqid": "Req001"}
        )
    )
    store.append(
        DataRecord.create(
            "D2",
            "App01",
            "approval",
            attributes={"reqid": "Req001", "status": "approved"},
        )
    )
    # A second trace whose records must not cross-link with App01.
    store.append(
        DataRecord.create(
            "D3", "App02", "jobrequisition", attributes={"reqid": "Req002"}
        )
    )
    store.append(
        DataRecord.create(
            "D4",
            "App02",
            "approval",
            attributes={"reqid": "Req002", "status": "rejected"},
        )
    )
    return store


class TestAttributeJoin:
    def test_links_on_equal_attributes(self, store, model):
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(
            attribute_join(
                "actor-by-email",
                "actor",
                RecordQuery(entity_type="person"),
                RecordQuery(entity_type="submission"),
                "email",
                "actor_email",
            )
        )
        created = analytics.run()
        assert len(created) == 1
        edge = created[0]
        assert edge.entity_type == "actor"
        assert edge.source_id == "R1"
        assert edge.target_id == "T1"
        assert edge.get("rule") == "actor-by-email"

    def test_missing_attribute_never_joins(self, store, model):
        store.append(
            TaskRecord.create("T2", "App01", "submission")
        )
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(
            attribute_join(
                "actor-by-email",
                "actor",
                RecordQuery(entity_type="person"),
                RecordQuery(entity_type="submission"),
                "email",
                "actor_email",
            )
        )
        created = analytics.run()
        assert all(edge.target_id != "T2" for edge in created)


class TestCoTrace:
    def test_links_within_trace_only(self, store, model):
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(
            co_trace(
                "approval-of-requisition",
                "approvalOf",
                RecordQuery(entity_type="approval"),
                RecordQuery(entity_type="jobrequisition"),
            )
        )
        created = analytics.run()
        pairs = {(e.source_id, e.target_id) for e in created}
        assert pairs == {("D2", "D1"), ("D4", "D3")}

    def test_run_scoped_to_one_trace(self, store, model):
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(
            co_trace(
                "approval-of-requisition",
                "approvalOf",
                RecordQuery(entity_type="approval"),
                RecordQuery(entity_type="jobrequisition"),
            )
        )
        created = analytics.run(app_ids=["App02"])
        assert {(e.source_id, e.target_id) for e in created} == {("D4", "D3")}


class TestAnalytics:
    def test_rerun_is_idempotent(self, store, model):
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(
            co_trace(
                "approval-of-requisition",
                "approvalOf",
                RecordQuery(entity_type="approval"),
                RecordQuery(entity_type="jobrequisition"),
            )
        )
        first = analytics.run()
        second = analytics.run()
        assert len(first) == 2
        assert second == []

    def test_fresh_analytics_on_populated_store_is_idempotent(
        self, store, model
    ):
        rule = co_trace(
            "approval-of-requisition",
            "approvalOf",
            RecordQuery(entity_type="approval"),
            RecordQuery(entity_type="jobrequisition"),
        )
        CorrelationAnalytics(store, model).add_rule(rule).run()
        created = CorrelationAnalytics(store, model).add_rule(rule).run()
        assert created == []

    def test_fresh_analytics_avoids_id_collision(self, store, model):
        rule_a = co_trace(
            "approval-of-requisition",
            "approvalOf",
            RecordQuery(entity_type="approval"),
            RecordQuery(entity_type="jobrequisition"),
        )
        CorrelationAnalytics(store, model).add_rule(rule_a).run()
        rule_b = co_trace(
            "related",
            "relatedTo",
            RecordQuery(entity_type="jobrequisition"),
            RecordQuery(entity_type="approval"),
        )
        created = CorrelationAnalytics(store, model).add_rule(rule_b).run()
        assert len(created) == 2  # would raise DuplicateRecordId on collision

    def test_undeclared_relation_type_rejected(self, store, model):
        analytics = CorrelationAnalytics(store, model)
        with pytest.raises(CaptureError):
            analytics.add_rule(
                co_trace(
                    "bad",
                    "nonexistentRelation",
                    RecordQuery(entity_type="approval"),
                    RecordQuery(entity_type="jobrequisition"),
                )
            )

    def test_self_loops_never_emitted(self, store, model):
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(
            co_trace(
                "self",
                "relatedTo",
                RecordQuery(entity_type="jobrequisition"),
                RecordQuery(entity_type="jobrequisition"),
            )
        )
        created = analytics.run()
        assert all(e.source_id != e.target_id for e in created)

    def test_relations_are_stored(self, store, model):
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(
            co_trace(
                "approval-of-requisition",
                "approvalOf",
                RecordQuery(entity_type="approval"),
                RecordQuery(entity_type="jobrequisition"),
            )
        )
        before = len(store)
        created = analytics.run()
        assert len(store) == before + len(created)
        assert all(isinstance(store.get(e.record_id), RelationRecord)
                   for e in created)


class TestSequenceRule:
    @pytest.fixture
    def task_store(self, model):
        store = ProvenanceStore(model=model)
        for index, ts in enumerate((30, 10, 20)):
            store.append(
                TaskRecord.create(
                    f"T{index}", "App01", "submission", timestamp=ts
                )
            )
        store.append(
            TaskRecord.create("TX", "App02", "submission", timestamp=5)
        )
        return store

    def add_next_task(self, model):
        from repro.model.records import RecordClass as RC
        from repro.model.schema import RelationTypeSpec

        if not model.has_relation_type("nextTask"):
            model.add_relation_type(
                RelationTypeSpec(
                    name="nextTask",
                    source_class=RC.TASK,
                    target_class=RC.TASK,
                    label="the previous task of",
                )
            )

    def test_links_immediate_successors_in_time_order(self, task_store,
                                                      model):
        from repro.capture.correlation import SequenceRule

        self.add_next_task(model)
        analytics = CorrelationAnalytics(task_store, model)
        analytics.add_rule(
            SequenceRule(
                name="next-task",
                relation_type="nextTask",
                query=RecordQuery(entity_type="submission"),
            )
        )
        created = analytics.run(app_ids=["App01"])
        pairs = [(e.source_id, e.target_id) for e in created]
        # Time order is T1(10) -> T2(20) -> T0(30).
        assert pairs == [("T1", "T2"), ("T2", "T0")]

    def test_single_record_produces_no_edges(self, task_store, model):
        from repro.capture.correlation import SequenceRule

        self.add_next_task(model)
        analytics = CorrelationAnalytics(task_store, model)
        analytics.add_rule(
            SequenceRule(
                name="next-task",
                relation_type="nextTask",
                query=RecordQuery(entity_type="submission"),
            )
        )
        assert analytics.run(app_ids=["App02"]) == []

    def test_sequence_rerun_is_idempotent(self, task_store, model):
        from repro.capture.correlation import SequenceRule

        self.add_next_task(model)
        rule = SequenceRule(
            name="next-task",
            relation_type="nextTask",
            query=RecordQuery(entity_type="submission"),
        )
        analytics = CorrelationAnalytics(task_store, model)
        analytics.add_rule(rule)
        first = analytics.run()
        assert analytics.run() == []
        assert len(first) == 2

    def test_undeclared_relation_rejected(self, task_store, model):
        from repro.capture.correlation import SequenceRule

        analytics = CorrelationAnalytics(task_store, model)
        with pytest.raises(CaptureError):
            analytics.add_rule(
                SequenceRule(
                    name="bad",
                    relation_type="notDeclared",
                    query=RecordQuery(entity_type="submission"),
                )
            )
