"""Unit tests for BOM construction, verbalization, and vocabulary."""

import pytest

from repro.brms.bom import BomMember, MemberKind
from repro.brms.vocabulary import Vocabulary
from repro.errors import BomError, VocabularyError
from tests.conftest import build_hiring_trace


class TestVerbalization:
    def test_concept_labels_come_from_model(self, hiring_bom):
        labels = {c.concept for c in hiring_bom.classes()}
        assert "Job Requisition" in labels
        assert "Approval Status" in labels
        assert "Person" in labels

    def test_attribute_navigation_phrases(self, hiring_bom):
        requisition = hiring_bom.concept("Job Requisition")
        member = requisition.member_by_phrase("general manager")
        assert member is not None
        assert member.kind is MemberKind.ATTRIBUTE
        assert member.attribute == "managergen"

    def test_custom_verbalized_attribute(self, hiring_bom):
        requisition = hiring_bom.concept("Job Requisition")
        assert requisition.member_by_phrase("requisition ID") is not None
        assert requisition.member_by_phrase("position type") is not None

    def test_relation_phrases_on_target_concept(self, hiring_bom):
        requisition = hiring_bom.concept("Job Requisition")
        submitter = requisition.member_by_phrase("submitter")
        assert submitter is not None
        assert submitter.kind is MemberKind.RELATION
        assert submitter.relation_type == "submitterOf"
        assert submitter.direction == "in"
        assert submitter.result_concept == "Person"

    def test_paper_bom_entry_lines(self, hiring_bom):
        entries = hiring_bom.dump_entries()
        assert (
            "mycompany.jobrequisition#concept.label = Job Requisition"
            in entries
        )
        assert (
            "mycompany.jobrequisition.managergen#phrase.navigation = "
            "{general manager} of {this}" in entries
        )

    def test_case_insensitive_concept_lookup(self, hiring_bom):
        assert hiring_bom.concept("job requisition").node_type == (
            "jobrequisition"
        )

    def test_unknown_concept_raises(self, hiring_bom):
        with pytest.raises(BomError):
            hiring_bom.concept("Invoice")

    def test_duplicate_phrase_on_concept_rejected(self, hiring_bom):
        requisition = hiring_bom.concept("Job Requisition")
        with pytest.raises(BomError):
            requisition.add_member(
                BomMember(
                    name="dup",
                    phrase="general manager",
                    kind=MemberKind.ATTRIBUTE,
                    attribute="x",
                )
            )


class TestMemberExecution:
    @pytest.fixture
    def requisition_object(self, hiring_xom):
        trace = build_hiring_trace()
        return hiring_xom.wrap(trace.node("App01-D1"), trace)

    def test_attribute_member(self, hiring_bom, requisition_object):
        member = hiring_bom.concept("Job Requisition").member_by_phrase(
            "general manager"
        )
        assert member.execute(requisition_object) == "Jane Smith"

    def test_relation_member(self, hiring_bom, requisition_object):
        member = hiring_bom.concept("Job Requisition").member_by_phrase(
            "submitter"
        )
        result = member.execute(requisition_object)
        assert result is not None
        assert result.get("name") == "Joe Doe"

    def test_relation_member_absent_yields_none(self, hiring_bom, hiring_xom):
        trace = build_hiring_trace(with_approval=False)
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        member = hiring_bom.concept("Job Requisition").member_by_phrase(
            "approval"
        )
        assert member.execute(requisition) is None

    def test_virtual_member_hashtable_pattern(
        self, hiring_bom, requisition_object
    ):
        # The paper's getManagergen example: general manager looked up from
        # a department hashtable instead of a record attribute.
        managers = {"Dept501": "Jane Smith", "Dept502": "Bob Roy"}
        hiring_bom.register_virtual(
            "Job Requisition",
            name="getManagergen",
            phrase="general manager by department",
            getter=lambda obj: managers.get(obj.get("dept")),
        )
        member = hiring_bom.concept("Job Requisition").member_by_phrase(
            "general manager by department"
        )
        assert member.phrase_kind == "action"
        assert member.execute(requisition_object) == "Jane Smith"

    def test_virtual_member_entry_is_action_phrase(self, hiring_bom):
        hiring_bom.register_virtual(
            "Job Requisition",
            name="getFoo",
            phrase="foo",
            getter=lambda obj: 1,
        )
        entries = hiring_bom.dump_entries()
        assert (
            "mycompany.jobrequisition.getFoo#phrase.action = {foo} of {this}"
            in entries
        )


class TestVocabulary:
    def test_member_lookup(self, hiring_vocabulary):
        member = hiring_vocabulary.member("Job Requisition", "general manager")
        assert member.attribute == "managergen"

    def test_member_lookup_unknown_phrase_raises(self, hiring_vocabulary):
        with pytest.raises(VocabularyError):
            hiring_vocabulary.member("Job Requisition", "salary band")

    def test_unknown_concept_raises(self, hiring_vocabulary):
        with pytest.raises(VocabularyError):
            hiring_vocabulary.concept("Invoice")

    def test_concepts_with_phrase(self, hiring_vocabulary):
        owners = hiring_vocabulary.concepts_with_phrase("requisition ID")
        assert set(owners) >= {
            "Job Requisition",
            "Approval Status",
            "Candidate List",
        }

    def test_match_concept_prefix_longest_wins(self, hiring_vocabulary):
        match = hiring_vocabulary.match_concept_prefix(
            ["job", "requisition", "where"]
        )
        assert match == ("Job Requisition", 2)

    def test_match_concept_prefix_none(self, hiring_vocabulary):
        assert hiring_vocabulary.match_concept_prefix(["invoice"]) is None

    def test_match_phrase_prefix(self, hiring_vocabulary):
        match = hiring_vocabulary.match_phrase_prefix(
            ["general", "manager", "of"]
        )
        assert match == ("general manager", 2)

    def test_cache_hit_counting(self, hiring_vocabulary):
        hiring_vocabulary.find_member("Job Requisition", "general manager")
        hiring_vocabulary.find_member("Job Requisition", "general manager")
        assert hiring_vocabulary.lookups == 2
        assert hiring_vocabulary.cache_hits == 1

    def test_cache_disabled(self, hiring_bom):
        vocabulary = Vocabulary(hiring_bom, cache=False)
        vocabulary.find_member("Job Requisition", "general manager")
        vocabulary.find_member("Job Requisition", "general manager")
        assert vocabulary.cache_hits == 0

    def test_invalidate_cache(self, hiring_vocabulary):
        hiring_vocabulary.find_member("Job Requisition", "general manager")
        hiring_vocabulary.invalidate_cache()
        hiring_vocabulary.find_member("Job Requisition", "general manager")
        assert hiring_vocabulary.cache_hits == 0

    def test_dropdown_entries_rendered(self, hiring_vocabulary):
        entries = hiring_vocabulary.dropdown_entries()
        assert (
            "the general manager of the job requisition"
            in entries["Job Requisition"]
        )


class TestAutocomplete:
    def test_prefix_completion(self, hiring_vocabulary):
        suggestions = hiring_vocabulary.complete("gen")
        assert "the general manager of" in suggestions

    def test_completion_case_insensitive(self, hiring_vocabulary):
        assert hiring_vocabulary.complete("GENERAL") == (
            hiring_vocabulary.complete("general")
        )

    def test_completion_deduplicates_across_concepts(self, hiring_vocabulary):
        # "requisition ID" is verbalized on several concepts; one entry.
        suggestions = hiring_vocabulary.complete("requisition")
        assert suggestions.count("the requisition ID of") == 1

    def test_completion_limit(self, hiring_vocabulary):
        assert len(hiring_vocabulary.complete("", limit=3)) == 3

    def test_no_match_empty(self, hiring_vocabulary):
        assert hiring_vocabulary.complete("zzz") == []
