"""Unit tests for detection/authoring/timing metrics and table rendering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.metrics.authoring import bal_cost, python_cost, query_cost
from repro.metrics.detection import (
    ConfusionCounts,
    detection_report,
    trace_level_detection,
    verdict_agreement,
)
from repro.metrics.timing import Stopwatch
from repro.reporting.tables import render_provenance_table, render_table


def result(control, trace, status):
    return ComplianceResult(
        control_name=control, trace_id=trace, status=status
    )


S = ComplianceStatus.SATISFIED
V = ComplianceStatus.VIOLATED
NA = ComplianceStatus.NOT_APPLICABLE
U = ComplianceStatus.UNDETERMINED


class TestConfusionCounts:
    def test_perfect(self):
        counts = ConfusionCounts()
        counts.add(True, True)
        counts.add(False, False)
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0

    def test_false_positive(self):
        counts = ConfusionCounts()
        counts.add(False, True)
        counts.add(True, True)
        assert counts.precision == 0.5
        assert counts.recall == 1.0

    def test_false_negative(self):
        counts = ConfusionCounts()
        counts.add(True, False)
        counts.add(True, True)
        assert counts.recall == 0.5

    def test_empty_degenerate(self):
        counts = ConfusionCounts()
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0
        assert counts.total == 0

    def test_zero_f1(self):
        counts = ConfusionCounts()
        counts.add(True, False)
        assert counts.f1 == 0.0

    @given(
        st.lists(st.tuples(st.booleans(), st.booleans()), max_size=60)
    )
    def test_counts_always_sum(self, pairs):
        counts = ConfusionCounts()
        for actual, predicted in pairs:
            counts.add(actual, predicted)
        assert counts.total == len(pairs)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.f1 <= 1.0


class TestDetectionReport:
    TRUTH = {
        "App01": {"c1": V, "c2": S},
        "App02": {"c1": S, "c2": S},
        "App03": {"c1": NA, "c2": V},
    }

    def test_perfect_detection(self):
        results = [
            result("c1", "App01", V),
            result("c2", "App01", S),
            result("c1", "App02", S),
            result("c2", "App02", S),
            result("c1", "App03", NA),
            result("c2", "App03", V),
        ]
        report = detection_report(results, self.TRUTH)
        assert report.overall.f1 == 1.0
        assert report.per_control["c1"].true_positive == 1

    def test_undetermined_counts_as_missed(self):
        results = [result("c1", "App01", U)]
        report = detection_report(results, self.TRUTH)
        assert report.overall.false_negative == 1

    def test_pairs_missing_from_truth_skipped(self):
        results = [result("cX", "App01", V)]
        report = detection_report(results, self.TRUTH)
        assert report.overall.total == 0

    def test_trace_level(self):
        results = [
            result("c1", "App01", V),
            result("c2", "App01", S),
            result("c1", "App02", V),  # false alarm at trace level
            result("c1", "App03", S),
            result("c2", "App03", S),  # missed trace
        ]
        counts = trace_level_detection(results, self.TRUTH)
        assert counts.true_positive == 1
        assert counts.false_positive == 1
        assert counts.false_negative == 1


class TestVerdictAgreement:
    def test_agreement_and_disagreement(self):
        a = [result("c", "App01", V), result("c", "App02", S)]
        b = [result("c", "App01", V), result("c", "App02", V)]
        agreements, comparisons, disagreements = verdict_agreement(a, b)
        assert (agreements, comparisons) == (1, 2)
        assert disagreements == [("c", "App02")]

    def test_unmatched_pairs_ignored(self):
        a = [result("c", "App01", V)]
        b = [result("other", "App01", V)]
        __, comparisons, __ = verdict_agreement(a, b)
        assert comparisons == 0


class TestAuthoringCosts:
    def test_bal_cost(self):
        cost = bal_cost("c", "if 1 is 1\nthen the control is satisfied")
        assert cost.language == "bal"
        assert cost.lines == 2
        assert cost.tokens > 5
        assert not cost.requires_it

    def test_python_cost(self):
        from repro.baselines.hardcoded import _hiring_gm_approval

        cost = python_cost("gm-approval", _hiring_gm_approval)
        assert cost.language == "python"
        assert cost.requires_it
        assert cost.lines > 5
        assert cost.tokens > 30

    def test_query_cost(self):
        from repro.baselines.storequery import (
            hiring_gm_approval_query_control,
        )

        control = hiring_gm_approval_query_control()
        cost = query_cost("gm-approval", list(control.probes),
                          control.verdict)
        assert cost.language == "xquery"
        assert cost.requires_it

    def test_bal_cheaper_than_python(self):
        from repro.baselines.hardcoded import _hiring_gm_approval
        from repro.processes.hiring import GM_APPROVAL_CONTROL

        bal = bal_cost("gm", GM_APPROVAL_CONTROL)
        python = python_cost("gm", _hiring_gm_approval)
        assert bal.tokens < python.tokens


class TestStopwatch:
    def test_spans_accumulate(self):
        watch = Stopwatch()
        with watch.span("a"):
            pass
        with watch.span("a"):
            pass
        with watch.span("b"):
            pass
        assert watch.seconds("a") >= 0
        assert len(watch.rows()) == 2
        assert watch.total >= watch.seconds("a")

    def test_render(self):
        watch = Stopwatch()
        with watch.span("phase-one"):
            pass
        assert "phase-one" in watch.render()


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(
            ("name", "value"), [("a", 1), ("longer", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_render_provenance_table(self):
        from repro.model.records import DataRecord
        from repro.store.xmlcodec import encode_row

        row = encode_row(
            DataRecord.create(
                "PE3", "App01", "jobrequisition",
                attributes={"reqid": "Req001"},
            )
        )
        text = render_provenance_table([row], title="TABLE I")
        assert "TABLE I" in text
        assert "PE3" in text
        assert "Data" in text
        assert "App01" in text
        assert "…" in text or "reqid" in text
