"""Unit tests for event mapping and the recorder client."""

import pytest

from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.filters import RelevanceFilter, SensitiveDataScrubber
from repro.capture.mapping import EventMapping
from repro.capture.recorder import RecorderClient
from repro.errors import MappingError
from repro.model.builder import ModelBuilder
from repro.model.records import RecordClass
from repro.store.store import ProvenanceStore


@pytest.fixture
def model():
    return (
        ModelBuilder("hiring")
        .data("jobrequisition", "Job Requisition", reqid=str, type=str)
        .task("submission", "Submission", start=int, actor=str)
        .build()
    )


@pytest.fixture
def mapping(model):
    return (
        EventMapping(model)
        .rule(
            kind="requisition.submitted",
            record_class=RecordClass.DATA,
            entity_type="jobrequisition",
            fields={"reqid": "reqid", "type": "position_type"},
            key="reqid",
        )
        .rule(
            kind="task.completed",
            record_class=RecordClass.TASK,
            entity_type="submission",
            fields={"start": "started_at", "actor": "actor"},
            when=lambda e: e.get("task") == "submit",
        )
    )


def submitted_event(event_id="E1", app_id="App01", reqid="Req001"):
    return ApplicationEvent(
        event_id=event_id,
        source=EventSource.WORKFLOW,
        kind="requisition.submitted",
        timestamp=5,
        app_id=app_id,
        payload={"reqid": reqid, "position_type": "new", "noise": "zzz"},
    )


class TestMappingRule:
    def test_applies_to_kind(self, mapping):
        rule = mapping.match(submitted_event())
        assert rule is not None
        assert rule.entity_type == "jobrequisition"

    def test_guard_respected(self, mapping):
        wrong = ApplicationEvent(
            "E2", EventSource.WORKFLOW, "task.completed",
            payload={"task": "other"},
        )
        assert mapping.match(wrong) is None

    def test_key_based_record_id(self, mapping):
        record = mapping.map(submitted_event())
        assert record.record_id == "App01:jobrequisition:Req001"

    def test_event_id_fallback_when_key_missing(self, mapping):
        event = submitted_event()
        event = ApplicationEvent(
            event.event_id, event.source, event.kind, event.timestamp,
            event.app_id, {"position_type": "new"},
        )
        record = mapping.map(event)
        assert record.record_id == "evt:E1"

    def test_fields_typed_via_model(self, mapping):
        event = ApplicationEvent(
            "E3", EventSource.WORKFLOW, "task.completed", 9, "App01",
            {"task": "submit", "started_at": "7", "actor": "joe"},
        )
        record = mapping.map(event)
        assert record.get("start") == 7
        assert record.get("actor") == "joe"

    def test_missing_fields_omitted(self, mapping):
        event = ApplicationEvent(
            "E3", EventSource.WORKFLOW, "task.completed", 9, "App01",
            {"task": "submit"},
        )
        record = mapping.map(event)
        assert not record.has("start")

    def test_unmapped_kind_raises(self, mapping):
        with pytest.raises(MappingError):
            mapping.map(
                ApplicationEvent("E9", EventSource.EMAIL, "mail.sent")
            )

    def test_kinds_listing(self, mapping):
        assert mapping.kinds() == ["requisition.submitted", "task.completed"]

    def test_unattributed_event_gets_placeholder_app(self, mapping):
        record = mapping.map(submitted_event(app_id=""))
        assert record.app_id == "unattributed"


class TestRecorderClient:
    def test_records_mapped_event(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(store, mapping)
        envelope = recorder.process(submitted_event())
        assert envelope.recorded
        assert len(store) == 1
        assert recorder.stats.recorded == 1

    def test_default_relevance_from_mapping_kinds(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(store, mapping)
        envelope = recorder.process(
            ApplicationEvent("E9", EventSource.EMAIL, "mail.sent")
        )
        assert not envelope.recorded
        assert recorder.stats.dropped_irrelevant == 1
        assert len(store) == 0

    def test_duplicate_artifact_skipped(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(store, mapping)
        recorder.process(submitted_event(event_id="E1"))
        envelope = recorder.process(submitted_event(event_id="E2"))
        assert not envelope.recorded
        assert envelope.dropped_reason == "duplicate artifact"
        assert recorder.stats.duplicates == 1
        assert len(store) == 1

    def test_scrubber_counts_fields(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(
            store,
            mapping,
            scrubber=SensitiveDataScrubber(sensitive_fields=["noise"]),
        )
        envelope = recorder.process(submitted_event())
        assert envelope.recorded
        assert envelope.scrubbed_fields == 1
        assert recorder.stats.scrubbed_fields == 1

    def test_strict_mode_raises_on_unmapped(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(
            store,
            mapping,
            relevance=RelevanceFilter(),  # admit everything
            strict=True,
        )
        with pytest.raises(MappingError):
            recorder.process(
                ApplicationEvent("E9", EventSource.EMAIL, "mail.sent")
            )

    def test_nonstrict_drops_unmapped(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(
            store, mapping, relevance=RelevanceFilter()
        )
        envelope = recorder.process(
            ApplicationEvent("E9", EventSource.EMAIL, "mail.sent")
        )
        assert not envelope.recorded
        assert recorder.stats.dropped_unmapped == 1

    def test_process_all(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(store, mapping)
        envelopes = recorder.process_all(
            [submitted_event(reqid=f"R{i}", event_id=f"E{i}") for i in range(3)]
        )
        assert len(envelopes) == 3
        assert recorder.stats.seen == 3
        assert recorder.stats.as_dict()["recorded"] == 3

    def test_last_seq_checkpoints_change_feed(self, model, mapping):
        store = ProvenanceStore(model=model)
        recorder = RecorderClient(store, mapping)
        assert recorder.stats.last_seq == 0
        recorder.process(submitted_event(reqid="R1", event_id="E1"))
        assert recorder.stats.last_seq == store.last_seq() == 1
        # Dropped events don't advance the checkpoint.
        recorder.process(
            ApplicationEvent("E9", EventSource.EMAIL, "mail.sent")
        )
        assert recorder.stats.last_seq == 1
        recorder.process(submitted_event(reqid="R2", event_id="E2"))
        assert recorder.stats.as_dict()["last_seq"] == 2
        # The checkpoint is a valid changes_since cursor.
        assert list(store.changes_since(recorder.stats.last_seq)) == []
