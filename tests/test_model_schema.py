"""Unit tests for the provenance data model (schema + builder)."""

import pytest

from repro.errors import ModelError, SchemaViolation
from repro.model.attributes import AttributeSpec, AttributeType
from repro.model.builder import ModelBuilder
from repro.model.records import (
    DataRecord,
    CustomRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
)
from repro.model.schema import NodeTypeSpec, RelationTypeSpec


@pytest.fixture
def model():
    return (
        ModelBuilder("hiring")
        .data(
            "jobrequisition",
            "Job Requisition",
            reqid=AttributeSpec("reqid", required=True),
            type=str,
            position=str,
            dept=str,
        )
        .resource("person", "Person", name=str, email=str, manager=str)
        .task("submission", "Submission", start=int, end=int)
        .relation(
            "submitterOf",
            RecordClass.RESOURCE,
            RecordClass.DATA,
            label="the submitter of",
        )
        .build()
    )


class TestNodeTypeSpec:
    def test_label_defaults_to_capitalized_name(self):
        spec = NodeTypeSpec(name="person", record_class=RecordClass.RESOURCE)
        assert spec.label == "Person"

    def test_relation_class_rejected(self):
        with pytest.raises(ModelError):
            NodeTypeSpec(name="x", record_class=RecordClass.RELATION)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ModelError):
            NodeTypeSpec(
                name="x",
                record_class=RecordClass.DATA,
                attributes=(AttributeSpec("a"), AttributeSpec("a")),
            )

    def test_validate_record_class_mismatch(self, model):
        spec = model.node_type("jobrequisition")
        wrong = ResourceRecord.create("R1", "App01", "jobrequisition")
        with pytest.raises(SchemaViolation):
            spec.validate_record(wrong)

    def test_validate_missing_required(self, model):
        spec = model.node_type("jobrequisition")
        record = DataRecord.create("D1", "App01", "jobrequisition")
        with pytest.raises(SchemaViolation):
            spec.validate_record(record)

    def test_validate_ok(self, model):
        spec = model.node_type("jobrequisition")
        record = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"reqid": "R1"}
        )
        spec.validate_record(record)


class TestRelationTypeSpec:
    def test_relation_cannot_link_relations(self):
        with pytest.raises(ModelError):
            RelationTypeSpec(
                name="x",
                source_class=RecordClass.RELATION,
                target_class=RecordClass.DATA,
            )


class TestProvenanceDataModel:
    def test_duplicate_node_type_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_node_type(
                NodeTypeSpec(name="person", record_class=RecordClass.RESOURCE)
            )

    def test_duplicate_relation_type_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_relation_type(
                RelationTypeSpec(
                    name="submitterOf",
                    source_class=RecordClass.RESOURCE,
                    target_class=RecordClass.DATA,
                )
            )

    def test_unknown_node_type_raises(self, model):
        with pytest.raises(ModelError):
            model.node_type("widget")

    def test_node_types_filter_by_class(self, model):
        names = [s.name for s in model.node_types(RecordClass.DATA)]
        assert names == ["jobrequisition"]

    def test_node_type_by_label(self, model):
        spec = model.node_type_by_label("job requisition")
        assert spec is not None and spec.name == "jobrequisition"
        assert model.node_type_by_label("nothing") is None

    def test_validate_undeclared_data_type_rejected(self, model):
        record = DataRecord.create("D1", "App01", "invoice")
        with pytest.raises(SchemaViolation):
            model.validate(record)

    def test_validate_custom_extension_point_allowed(self, model):
        record = CustomRecord.create("C1", "App01", "controlpoint")
        model.validate(record)  # must not raise

    def test_validate_undeclared_relation_rejected(self, model):
        relation = RelationRecord.create(
            "E1", "App01", "owns", source_id="A", target_id="B"
        )
        with pytest.raises(SchemaViolation):
            model.validate(relation)

    def test_validate_relation_endpoints(self, model):
        relation = RelationRecord.create(
            "E1", "App01", "submitterOf", source_id="R1", target_id="D1"
        )
        person = ResourceRecord.create("R1", "App01", "person")
        requisition = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"reqid": "R1"}
        )
        model.validate_relation_endpoints(relation, person, requisition)
        with pytest.raises(SchemaViolation):
            model.validate_relation_endpoints(relation, requisition, person)

    def test_coerce_attributes_typed(self, model):
        typed = model.coerce_attributes("submission", {"start": "10"})
        assert typed == {"start": 10}

    def test_coerce_attributes_undeclared_passthrough(self, model):
        typed = model.coerce_attributes("submission", {"extra": "x"})
        assert typed == {"extra": "x"}

    def test_coerce_attributes_unknown_type_passthrough(self, model):
        typed = model.coerce_attributes("unknown_type", {"a": "1"})
        assert typed == {"a": "1"}

    def test_describe_mentions_types(self, model):
        text = model.describe()
        assert "jobrequisition" in text
        assert "submitterOf" in text


class TestModelBuilder:
    def test_builder_rejects_mismatched_spec_name(self):
        with pytest.raises(ModelError):
            ModelBuilder("m").data("d", "D", a=AttributeSpec("b"))

    def test_builder_rejects_unknown_decl(self):
        with pytest.raises(ModelError):
            ModelBuilder("m").data("d", "D", a=object())

    def test_builder_accepts_attribute_type(self):
        model = (
            ModelBuilder("m").data("d", "D", ts=AttributeType.TIMESTAMP).build()
        )
        spec = model.node_type("d").attribute("ts")
        assert spec.type is AttributeType.TIMESTAMP

    def test_empty_model_name_rejected(self):
        with pytest.raises(ModelError):
            ModelBuilder("")
