"""Integration tests for the three workloads.

The key property: at full visibility, vocabulary-authored controls agree
with the injected ground truth on every (control, trace) pair, for every
workload.  This is the end-to-end guarantee everything else builds on.
"""

import pytest

from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.status import ComplianceStatus
from repro.processes import expenses, hiring, incidents, procurement
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import VisibilityPolicy

WORKLOADS = {
    "hiring": hiring,
    "procurement": procurement,
    "expenses": expenses,
    "incidents": incidents,
}


@pytest.fixture(params=sorted(WORKLOADS), ids=sorted(WORKLOADS))
def module(request):
    return WORKLOADS[request.param]


def run_workload(module, cases=25, seed=5, rate=0.25, visibility=None):
    workload = module.workload()
    plan = ViolationPlan.uniform(list(module.VIOLATION_KINDS), rate)
    sim = workload.simulate(
        cases=cases, seed=seed, violations=plan, visibility=visibility
    )
    evaluator = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
    )
    results = evaluator.run(sim.controls)
    truth = sim.ground_truth_for(workload.ground_truth)
    return sim, results, truth


class TestFullVisibilityAgreement:
    def test_verdicts_match_ground_truth(self, module):
        __, results, truth = run_workload(module)
        for result in results:
            assert result.status is truth[result.trace_id][
                result.control_name
            ], (result.trace_id, result.control_name)

    def test_every_pair_checked(self, module):
        sim, results, __ = run_workload(module)
        assert len(results) == len(sim.runs) * len(sim.controls)

    def test_clean_run_has_no_violations(self, module):
        workload = module.workload()
        sim = workload.simulate(cases=15, seed=2)
        evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
        results = evaluator.run(sim.controls)
        assert not [
            r for r in results if r.status is ComplianceStatus.VIOLATED
        ]

    def test_simulation_deterministic(self, module):
        workload = module.workload()
        sim_a = workload.simulate(cases=10, seed=9)
        sim_b = workload.simulate(cases=10, seed=9)
        rows_a = [row.as_tuple() for row in sim_a.store.rows()]
        rows_b = [row.as_tuple() for row in sim_b.store.rows()]
        assert rows_a == rows_b


class TestPartialVisibility:
    def test_dropped_events_counted(self, module):
        sim, __, __ = run_workload(
            module, visibility=VisibilityPolicy.uniform(0.6, seed=4)
        )
        assert sim.dropped_events > 0
        assert sim.visible_events > 0

    def test_detection_degrades_with_lost_visibility(self, module):
        from repro.metrics.detection import detection_report

        __, full_results, truth = run_workload(module, cases=60, rate=0.3)
        full = detection_report(full_results, truth)

        __, partial_results, __ = run_workload(
            module,
            cases=60,
            rate=0.3,
            visibility=VisibilityPolicy.uniform(0.4, seed=8),
        )
        partial = detection_report(partial_results, truth)
        assert full.overall.f1 == 1.0
        assert partial.overall.f1 < full.overall.f1

    def test_zero_visibility_is_all_undetermined_or_na(self, module):
        sim, results, __ = run_workload(
            module, cases=10, visibility=VisibilityPolicy.uniform(0.0)
        )
        assert sim.visible_events == 0
        for result in results:
            assert result.status in (
                ComplianceStatus.UNDETERMINED,
                ComplianceStatus.NOT_APPLICABLE,
            )


class TestHiringSpecifics:
    def test_trace_contains_paper_record_inventory(self):
        sim, __, __ = run_workload(hiring, cases=5, rate=0.0)
        # Find a new-position trace and check §II.C's record inventory.
        new_runs = [
            run for run in sim.runs if run.case["position_type"] == "new"
        ]
        assert new_runs, "seed produced no new-position case"
        trace_id = new_runs[0].app_id
        from repro.graph.build import build_trace_graph

        graph = build_trace_graph(sim.store, trace_id)
        types = {record.entity_type for record in graph.nodes()}
        assert {
            "jobrequisition",
            "approvalstatus",
            "candidatelist",
            "person",
            "submission",
            "approvaltask",
        } <= types
        edge_types = {edge.entity_type for edge in graph.edges()}
        assert {"submitterOf", "approvalOf", "candidatesFor", "actor",
                "generates", "managerOf", "nextTask"} <= edge_types

    def test_skip_approval_only_affects_new_positions(self):
        workload = hiring.workload()
        plan = ViolationPlan.uniform(["skip_approval"], 1.0)
        sim = workload.simulate(cases=20, seed=6, violations=plan)
        for run in sim.runs:
            if run.case["position_type"] == "new":
                assert "approve_reject" not in run.path
            expected = hiring.ground_truth(run.case, "gm-approval")
            if run.case["position_type"] == "new":
                assert expected is ComplianceStatus.VIOLATED
            else:
                assert expected is ComplianceStatus.NOT_APPLICABLE

    def test_sensitive_fields_never_reach_store(self):
        sim, __, __ = run_workload(hiring, cases=10)
        for row in sim.store.rows():
            assert "salary_band" not in row.xml


class TestProcurementSpecifics:
    def test_price_mismatch_changes_invoice_amount(self):
        workload = procurement.workload()
        plan = ViolationPlan.uniform(["price_mismatch"], 1.0)
        sim = workload.simulate(cases=10, seed=3, violations=plan)
        for run in sim.runs:
            invoices = sim.store.find_data(run.app_id, "invoice")
            orders = sim.store.find_data(run.app_id, "purchaseorder")
            assert invoices and orders
            assert invoices[0].get("amount") != orders[0].get("amount")

    def test_below_threshold_orders_not_applicable(self):
        case = {"amount": procurement.APPROVAL_THRESHOLD - 1,
                "violations": set()}
        assert procurement.ground_truth(case, "po-approval") is (
            ComplianceStatus.NOT_APPLICABLE
        )


class TestExpensesSpecifics:
    def test_receipt_threshold_boundaries(self):
        below = {"amount": expenses.RECEIPT_THRESHOLD - 1,
                 "violations": set()}
        at = {"amount": expenses.RECEIPT_THRESHOLD, "violations": set()}
        assert expenses.ground_truth(below, "receipt-required") is (
            ComplianceStatus.NOT_APPLICABLE
        )
        assert expenses.ground_truth(at, "receipt-required") is (
            ComplianceStatus.SATISFIED
        )

    def test_audit_threshold_is_strictly_greater(self):
        at = {"amount": expenses.AUDIT_THRESHOLD, "violations": set()}
        above = {"amount": expenses.AUDIT_THRESHOLD + 1,
                 "violations": set()}
        assert expenses.ground_truth(at, "audit-high-value") is (
            ComplianceStatus.NOT_APPLICABLE
        )
        assert expenses.ground_truth(above, "audit-high-value") is (
            ComplianceStatus.SATISFIED
        )
