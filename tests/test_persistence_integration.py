"""Integration: the full pipeline survives a disk round-trip.

An auditor scenario: capture happens on one system, the store is exported,
and compliance checking runs later elsewhere.  Everything downstream of the
store (graphs, controls, verdicts, dashboards) must be identical after a
dump/load cycle — the physical Table-I rows are the single source of truth.
"""

import pytest

from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.store.store import ProvenanceStore


@pytest.fixture(scope="module")
def sim():
    workload = hiring.workload()
    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.3)
    return workload.simulate(cases=25, seed=33, violations=plan)


class TestStoreRoundTrip:
    def test_verdicts_identical_after_dump_load(self, sim, tmp_path):
        path = str(tmp_path / "provenance.jsonl")
        sim.store.dump(path)
        loaded = ProvenanceStore.load(path, model=sim.model)

        original = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary
        ).run(sim.controls)
        replayed = ComplianceEvaluator(
            loaded, sim.xom, sim.vocabulary
        ).run(sim.controls)

        assert [
            (r.control_name, r.trace_id, r.status) for r in original
        ] == [(r.control_name, r.trace_id, r.status) for r in replayed]

    def test_typed_attributes_survive(self, sim, tmp_path):
        path = str(tmp_path / "provenance.jsonl")
        sim.store.dump(path)
        loaded = ProvenanceStore.load(path, model=sim.model)
        trace_id = sim.store.app_ids()[0]
        for original in sim.store.find_data(trace_id, "candidatelist"):
            restored = loaded.get(original.record_id)
            assert restored.get("count") == original.get("count")
            assert isinstance(restored.get("count"), int)

    def test_untyped_load_keeps_rows_but_strings(self, sim, tmp_path):
        path = str(tmp_path / "provenance.jsonl")
        sim.store.dump(path)
        loaded = ProvenanceStore.load(path)  # no model: wire strings
        trace_id = sim.store.app_ids()[0]
        lists = loaded.find_data(trace_id, "candidatelist")
        if lists:
            assert isinstance(lists[0].get("count"), str)

    def test_loaded_store_row_bytes_identical(self, sim, tmp_path):
        path = str(tmp_path / "provenance.jsonl")
        sim.store.dump(path)
        loaded = ProvenanceStore.load(path, model=sim.model)
        assert [r.as_tuple() for r in loaded.rows()] == [
            r.as_tuple() for r in sim.store.rows()
        ]
