"""End-to-end tests for the served runtime: HTTP front end + transport.

The serve contract: recorder clients stream events over HTTP while
readers query verdicts mid-ingest; a killed-and-restarted server resumes
from its persisted cursor; and whatever the wire does, the final served
verdicts are byte-identical to a cold sweep of the same database.
"""

import contextlib
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.service import (
    ComplianceHTTPServer,
    ComplianceRuntime,
    HTTPTransport,
    TransportError,
)
from repro.store.backends import SQLiteBackend
from repro.store.store import ProvenanceStore


def _event_stream(workload, cases, seed=11, rate=0.25):
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(
            ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), rate)
        ),
        seed=seed,
    )
    return all_events(simulator.run(cases))


def _cold_sweep_payloads(sim):
    oracle = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
    )
    return json.dumps(
        [result.to_payload() for result in oracle.run(sim.controls)]
    )


def _sqlite_runtime(workload, db):
    """A served runtime over *db*; ``threadsafe`` because HTTP handler
    threads and the test thread share the connection (the runtime's lock
    serializes them — the same wiring ``repro serve`` uses)."""
    store = ProvenanceStore(
        model=workload.build_model(),
        backend=SQLiteBackend(db, threadsafe=True),
    )
    sim = workload.attach(store)
    runtime = ComplianceRuntime.from_simulation(
        sim, workload=workload, owns_store=True
    )
    return sim, runtime


@contextlib.contextmanager
def _served(runtime):
    """An ephemeral-port server thread; graceful shutdown on exit."""
    server = ComplianceHTTPServer(runtime)  # port 0 -> ephemeral
    thread = threading.Thread(
        target=server.serve_until_shutdown, daemon=True
    )
    thread.start()
    try:
        yield server.endpoint
    finally:
        server.request_shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive()


class TestHTTPRoundtrip:
    def test_ingest_query_snapshot_over_the_wire(self):
        workload = hiring.workload()
        sim = workload.simulate(cases=0, seed=2011)
        runtime = ComplianceRuntime.from_simulation(
            sim, workload=workload
        )
        runtime.open()
        events = _event_stream(workload, cases=4)
        with _served(runtime) as endpoint:
            transport = HTTPTransport(endpoint)
            health = transport.health()
            assert health["status"] == "ok"
            assert health["workload"] == "new-position-open"

            client = RecorderClient(transport=transport)
            client.process_all(events)
            assert client.stats.recorded > 0
            # The same batch again is all duplicates — the server's
            # dedup reaches the client's counters across the wire.
            client.process_all(events)
            assert client.stats.duplicates == client.stats.recorded

            stats = transport.stats()
            assert stats["traces"] == 4
            assert stats["ingest_batches"] == 2

            served = transport.sync()
            assert "last_seq" in served

            payloads = transport.verdicts()
            assert json.dumps(payloads) == _cold_sweep_payloads(sim)
            subset = transport.verdicts(
                control="gm-approval", status="violated"
            )
            assert all(
                p["control"] == "gm-approval" and p["status"] == "violated"
                for p in subset
            )
            assert transport.snapshot() == {"saved": True}
        # Context exit shut the server down and closed the runtime.
        assert runtime.stats  # object survives; session is closed
        with pytest.raises(Exception):
            runtime.verdicts()

    def test_transitions_endpoint_pages_by_index(self):
        workload = hiring.workload()
        sim = workload.simulate(cases=0, seed=2011)
        runtime = ComplianceRuntime.from_simulation(
            sim, workload=workload
        )
        runtime.open()
        with _served(runtime) as endpoint:
            transport = HTTPTransport(endpoint)
            client = RecorderClient(transport=transport)
            client.process_all(_event_stream(workload, cases=2))
            transport.sync()
            first = json.loads(
                urllib.request.urlopen(
                    f"{endpoint}/transitions?after=0", timeout=30
                ).read()
            )
            assert first["newest"] == len(first["transitions"]) > 0
            entry = first["transitions"][0]
            assert {"index", "verdict", "previous", "changed",
                    "description"} <= set(entry)
            caught_up = json.loads(
                urllib.request.urlopen(
                    f"{endpoint}/transitions?after={first['newest']}",
                    timeout=30,
                ).read()
            )
            assert caught_up["transitions"] == []

    def test_error_surfaces_are_json(self):
        workload = hiring.workload()
        sim = workload.simulate(cases=1, seed=2011)
        # No workload: ingestion disabled -> 409 over the wire.
        runtime = ComplianceRuntime.from_simulation(sim)
        runtime.open()
        with _served(runtime) as endpoint:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{endpoint}/nowhere", timeout=30)
            assert excinfo.value.code == 404
            assert "error" in json.loads(excinfo.value.read())

            malformed = urllib.request.Request(
                f"{endpoint}/ingest", data=b"not json",
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(malformed, timeout=30)
            assert excinfo.value.code == 400

            transport = HTTPTransport(endpoint)
            with pytest.raises(TransportError) as excinfo:
                transport.ingest(_event_stream(workload, cases=1)[:1])
            assert "409" in str(excinfo.value)

    def test_unreachable_server_is_a_transport_error(self):
        # A port nothing listens on: connection refused, not a hang.
        transport = HTTPTransport("http://127.0.0.1:9", timeout=2)
        with pytest.raises(TransportError):
            transport.health()


class TestServeLifecycle:
    """The acceptance scenario: concurrent HTTP writers + live readers,
    a mid-stream kill/restart, and byte-identical final verdicts."""

    WRITERS = 2

    def _partition(self, events):
        trace_ids = sorted({event.app_id for event in events})
        owner = {
            trace: index % self.WRITERS
            for index, trace in enumerate(trace_ids)
        }
        return [
            [e for e in events if owner[e.app_id] == index]
            for index in range(self.WRITERS)
        ]

    def _drive_writers(self, endpoint, partitions, errors):
        """Each writer is its own HTTPTransport client streaming small
        batches; a reader polls verdicts + stats while they run."""
        stop_reading = threading.Event()

        def write(partition):
            try:
                client = RecorderClient(
                    transport=HTTPTransport(endpoint)
                )
                for start in range(0, len(partition), 5):
                    client.process_all(partition[start:start + 5])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def read():
            try:
                reader = HTTPTransport(endpoint)
                while not stop_reading.is_set():
                    for payload in reader.verdicts():
                        assert payload["control"] and payload["trace"]
                    reader.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        reader = threading.Thread(target=read)
        writers = [
            threading.Thread(target=write, args=(partition,))
            for partition in partitions
        ]
        reader.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop_reading.set()
        reader.join()

    def test_concurrent_ingest_with_mid_stream_restart(self, tmp_path):
        db = str(tmp_path / "serve.db")
        workload = hiring.workload()
        events = _event_stream(workload, cases=10, seed=47)
        partitions = self._partition(events)
        half = [len(p) // 2 for p in partitions]
        errors = []

        # Phase A: serve an empty database, stream the first half from
        # two concurrent HTTP clients with a live reader, then stop the
        # server mid-stream (graceful kill: snapshot + cursor persist).
        sim1, first = _sqlite_runtime(workload, db)
        report = first.open()
        assert not report.restored
        with _served(first) as endpoint:
            self._drive_writers(
                endpoint,
                [p[:n] for p, n in zip(partitions, half)],
                errors,
            )
        assert errors == []

        # Phase B: restart over the same file. The snapshot covers every
        # row already ingested — nothing re-evaluates at startup.
        sim2, second = _sqlite_runtime(workload, db)
        report = second.open()
        assert report.restored
        assert report.evaluated == 0
        with _served(second) as endpoint:
            self._drive_writers(
                endpoint,
                [p[n:] for p, n in zip(partitions, half)],
                errors,
            )
            assert errors == []
            # Every event landed exactly once across both phases.
            transport = HTTPTransport(endpoint)
            stats = transport.stats()
            assert stats["traces"] == 10
            # The served table equals a cold sweep of the same store —
            # byte-identical, mid-restart history notwithstanding.
            transport.sync()
            served = json.dumps(transport.verdicts())
            assert served == _cold_sweep_payloads(sim2)

        # Phase C: a third open resumes from the final cursor; the full
        # stream was already evaluated, so startup does zero work, and a
        # plain cold re-audit of the file agrees with what was served.
        sim3, third = _sqlite_runtime(workload, db)
        report = third.open()
        assert report.restored
        assert report.evaluated == 0
        assert json.dumps(
            [r.to_payload() for r in third.verdicts()]
        ) == served
        third.shutdown()
