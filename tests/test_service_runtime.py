"""Tests for the ComplianceRuntime service core and runtime transports.

The contract under test: a runtime's served verdicts are byte-identical
to a cold sweep of the same store at the same instant, under ingestion,
concurrent readers, out-of-band writers, and shutdown/restart cycles.
"""

import json
import threading

import pytest

from repro.capture.recorder import RecorderClient
from repro.controls.evaluator import ComplianceEvaluator
from repro.errors import CaptureError, MappingError, ServiceError
from repro.faults import FaultPlan, SimulatedCrash, active_plan
from repro.processes import hiring
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.violations import ViolationPlan
from repro.service import ComplianceRuntime, InProcessTransport
from repro.store.backends import (
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
)
from repro.store.store import ProvenanceStore


def _event_stream(workload, cases, seed=11, rate=0.25):
    """A raw application-event stream, store-free (recorder input)."""
    simulator = ProcessSimulator(
        workload.build_spec(),
        workload.case_factory(
            ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), rate)
        ),
        seed=seed,
    )
    return all_events(simulator.run(cases))


def _cold_sweep_payloads(sim):
    """The cold-sweep oracle: a fresh evaluator over the same store."""
    oracle = ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
    )
    return json.dumps(
        [result.to_payload() for result in oracle.run(sim.controls)]
    )


def _served_payloads(runtime):
    return json.dumps(
        [result.to_payload() for result in runtime.verdicts()]
    )


def _open_runtime(workload, cases=0, seed=2011, backend=None, **kwargs):
    sim = workload.simulate(cases=cases, seed=seed, backend=backend)
    runtime = ComplianceRuntime.from_simulation(
        sim, workload=workload, **kwargs
    )
    return sim, runtime


class TestRuntimeCore:
    def test_open_reports_startup_sweep(self):
        workload = hiring.workload()
        sim, runtime = _open_runtime(workload, cases=6)
        report = runtime.open()
        assert not report.restored
        assert report.traces == 6
        assert report.evaluated == 6 * len(sim.controls)
        with pytest.raises(ServiceError):
            runtime.open()
        runtime.shutdown()

    def test_verdicts_match_cold_sweep_and_filter(self):
        workload = hiring.workload()
        sim, runtime = _open_runtime(workload, cases=8)
        runtime.open()
        assert _served_payloads(runtime) == _cold_sweep_payloads(sim)
        one_control = runtime.verdicts(control="gm-approval")
        assert len(one_control) == 8
        assert {r.control_name for r in one_control} == {"gm-approval"}
        one_trace = runtime.verdicts(trace="App03")
        assert {r.trace_id for r in one_trace} == {"App03"}
        by_status = runtime.verdicts(status="satisfied")
        assert all(r.status.value == "satisfied" for r in by_status)
        runtime.shutdown()

    def test_ingest_pipeline_and_dedup(self):
        workload = hiring.workload()
        sim, runtime = _open_runtime(workload)
        runtime.open()
        events = _event_stream(workload, cases=5)
        reply = runtime.ingest(events)
        assert reply.recorded > 0
        assert reply.duplicates == 0
        assert reply.correlated > 0  # hiring has correlation rules
        assert len(reply.dispositions) == len(events)
        assert (
            sum(1 for recorded, __ in reply.dispositions if recorded)
            == reply.recorded
        )
        # The same batch again: idempotent capture, everything a duplicate.
        again = runtime.ingest(events)
        assert again.recorded == 0
        assert again.duplicates == reply.recorded
        assert again.correlated == 0
        # Served verdicts over the ingested rows = cold sweep of them.
        assert _served_payloads(runtime) == _cold_sweep_payloads(sim)
        runtime.shutdown()

    def test_ingest_without_mapping_is_rejected(self):
        workload = hiring.workload()
        sim = workload.simulate(cases=2, seed=2011)
        runtime = ComplianceRuntime.from_simulation(sim)  # no workload
        runtime.open()
        with pytest.raises(ServiceError):
            runtime.ingest(_event_stream(workload, cases=1))
        runtime.shutdown()

    def test_sync_folds_out_of_band_appends(self):
        import dataclasses

        workload = hiring.workload()
        sim = workload.simulate(cases=4, seed=2011)
        # Watch-style read-only runtime: no mapping, no correlation —
        # another pipeline owns the rows; this one only evaluates them.
        runtime = ComplianceRuntime.from_simulation(sim)
        runtime.open()
        # Another handle over the same backend appends behind our back.
        other = ProvenanceStore(backend=sim.store.backend)
        template = next(
            r for r in other.records() if r.app_id == "App02"
        )
        other.append(
            dataclasses.replace(template, record_id="oob-service-1")
        )
        outcome = runtime.sync()
        assert outcome.new_rows == 1
        # Only App02's pairs re-evaluate, one per control.
        assert outcome.refreshed == len(sim.controls)
        assert _served_payloads(runtime) == _cold_sweep_payloads(sim)
        runtime.shutdown()

    def test_transitions_feed_is_indexed(self):
        workload = hiring.workload()
        sim, runtime = _open_runtime(workload)
        runtime.open()
        newest, entries = runtime.transitions_since(0)
        assert newest == 0 and entries == []
        runtime.ingest(_event_stream(workload, cases=2))
        runtime.sync()
        newest, entries = runtime.transitions_since(0)
        assert newest == len(entries) > 0
        assert [index for index, __ in entries] == list(
            range(1, newest + 1)
        )
        # A caught-up reader sees nothing new.
        __, tail = runtime.transitions_since(newest)
        assert tail == []
        runtime.shutdown()

    def test_stats_counters(self):
        workload = hiring.workload()
        sim, runtime = _open_runtime(workload, cases=3)
        runtime.open()
        stats = runtime.stats()
        assert stats["workload"] == sim.workload_name
        assert stats["traces"] == 3
        assert stats["controls"] == [c.name for c in sim.controls]
        assert stats["dirty_pairs"] == 0
        runtime.ingest(_event_stream(workload, cases=1))
        assert runtime.stats()["ingest_batches"] == 1
        runtime.shutdown()

    def test_shutdown_is_idempotent_and_closes_owned_store(self):
        workload = hiring.workload()
        sim, runtime = _open_runtime(workload, cases=2, owns_store=True)
        runtime.open()
        runtime.shutdown()
        runtime.shutdown()  # second call is a no-op
        with pytest.raises(ServiceError):
            runtime.verdicts()


class TestSnapshotResume:
    def _attach_runtime(self, workload, db, **kwargs):
        store = ProvenanceStore(
            model=workload.build_model(), backend=SQLiteBackend(db)
        )
        sim = workload.attach(store)
        runtime = ComplianceRuntime.from_simulation(
            sim, workload=workload, owns_store=True, **kwargs
        )
        return sim, runtime

    def test_restart_resumes_from_cursor(self, tmp_path):
        db = str(tmp_path / "service.db")
        workload = hiring.workload()
        events = _event_stream(workload, cases=6)
        half = len(events) // 2

        sim1, first = self._attach_runtime(workload, db)
        report1 = first.open()
        assert not report1.restored
        first.ingest(events[:half])
        first.sync()
        first.shutdown()  # graceful: snapshot + flush + close

        sim2, second = self._attach_runtime(workload, db)
        report2 = second.open()
        # The snapshot covered every row: nothing re-evaluates at startup.
        assert report2.restored
        assert report2.evaluated == 0
        # The stream's tail lands after the restart; correlation id
        # sequences continue where the first process left off.
        second.ingest(events[half:])
        second.sync()
        assert _served_payloads(second) == _cold_sweep_payloads(sim2)
        second.shutdown()

    def test_rows_appended_while_down_reevaluate_only_their_trace(
        self, tmp_path
    ):
        import dataclasses

        db = str(tmp_path / "service.db")
        workload = hiring.workload()

        sim1, first = self._attach_runtime(workload, db)
        first.open()
        first.ingest(_event_stream(workload, cases=5))
        first.shutdown()

        other = ProvenanceStore(backend=SQLiteBackend(db))
        template = next(
            r for r in other.records() if r.app_id == "App01"
        )
        other.append(
            dataclasses.replace(template, record_id="downtime-row-1")
        )
        other.close()

        sim2, second = self._attach_runtime(workload, db)
        report = second.open()
        assert report.restored
        # One touched trace -> one pair per control, not 5 traces' worth.
        assert 0 < report.evaluated <= len(sim2.controls)
        assert _served_payloads(second) == _cold_sweep_payloads(sim2)
        second.shutdown()


class TestConcurrency:
    def test_threaded_ingest_with_live_readers(self):
        workload = hiring.workload()
        sim, runtime = _open_runtime(workload)
        runtime.open()
        events = _event_stream(workload, cases=12, seed=23)
        writers = 3
        # Partition whole traces round-robin: each writer owns disjoint
        # traces, so per-trace event order is preserved within a writer.
        trace_ids = sorted({event.app_id for event in events})
        owner = {
            trace: index % writers
            for index, trace in enumerate(trace_ids)
        }
        partitions = [
            [e for e in events if owner[e.app_id] == index]
            for index in range(writers)
        ]
        errors = []
        stop_reading = threading.Event()

        def write(partition):
            try:
                client = RecorderClient(
                    transport=InProcessTransport(runtime)
                )
                # Many small batches maximize interleaving.
                for start in range(0, len(partition), 7):
                    client.process_all(partition[start:start + 7])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def read():
            try:
                while not stop_reading.is_set():
                    for result in runtime.verdicts():
                        # Reads mid-ingest must always be coherent rows.
                        assert result.control_name and result.trace_id
                    runtime.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        reader = threading.Thread(target=read)
        threads = [
            threading.Thread(target=write, args=(partition,))
            for partition in partitions
        ]
        reader.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_reading.set()
        reader.join()
        assert errors == []
        runtime.sync()
        assert runtime.stats()["traces"] == len(trace_ids)
        assert _served_payloads(runtime) == _cold_sweep_payloads(sim)
        runtime.shutdown()

    def test_background_refresh_folds_out_of_band_rows(self):
        import dataclasses
        import time

        workload = hiring.workload()
        sim = workload.simulate(cases=3, seed=2011)
        # Read-only runtime: the out-of-band writer owns correlation.
        runtime = ComplianceRuntime.from_simulation(sim)
        runtime.open()
        runtime.start_background(interval=0.01)
        with pytest.raises(ServiceError):
            runtime.start_background(interval=0.01)
        other = ProvenanceStore(backend=sim.store.backend)
        template = next(
            r for r in other.records() if r.app_id == "App01"
        )
        other.append(
            dataclasses.replace(template, record_id="bg-oob-1")
        )
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if runtime.stats()["rows"] == len(other):
                if runtime.stats()["dirty_pairs"] == 0:
                    break
            time.sleep(0.01)
        assert runtime.stats()["dirty_pairs"] == 0
        assert _served_payloads(runtime) == _cold_sweep_payloads(sim)
        runtime.shutdown()
        assert not runtime.background_running


class TestShardedLanes:
    """The sharded runtime: per-shard ingest lanes + the verdict cache.

    Same contract as everywhere else — served verdicts byte-identical to
    a cold sweep — but now under lane-parallel writers, mid-stream
    snapshots, simulated lane crashes, and cache hits.
    """

    SHARDS = 4

    def _sharded_memory_runtime(self, workload, shards=SHARDS):
        backend = ShardedBackend(
            [MemoryBackend() for __ in range(shards)]
        )
        sim, runtime = _open_runtime(workload, backend=backend)
        return sim, runtime

    def _attach_sharded(self, workload, db, shards=SHARDS):
        store = ProvenanceStore(
            model=workload.build_model(),
            backend=ShardedBackend.for_sqlite(
                db, shards, threadsafe=True
            ),
        )
        sim = workload.attach(store)
        runtime = ComplianceRuntime.from_simulation(
            sim, workload=workload, owns_store=True
        )
        return sim, runtime

    def test_memory_shards_share_children_without_forking(self):
        workload = hiring.workload()
        sim, runtime = self._sharded_memory_runtime(workload)
        runtime.open()
        assert runtime.sharded
        assert runtime.lane_count == self.SHARDS
        # Sharded runtimes expose per-lane stats, no single recorder.
        assert runtime.recorder is None
        assert len(runtime.stats()["lanes"]) == self.SHARDS
        runtime.shutdown()

    def test_lane_parallel_ingest_matches_cold_sweep(self):
        """N threads × N shards, with a mid-stream snapshot: parity."""
        workload = hiring.workload()
        sim, runtime = self._sharded_memory_runtime(workload)
        runtime.open()
        events = _event_stream(workload, cases=12, seed=29)
        writers = self.SHARDS
        trace_ids = sorted({event.app_id for event in events})
        owner = {
            trace: index % writers
            for index, trace in enumerate(trace_ids)
        }
        partitions = [
            [e for e in events if owner[e.app_id] == index]
            for index in range(writers)
        ]
        errors = []
        barrier = threading.Barrier(writers + 1)

        def write(partition):
            try:
                client = RecorderClient(
                    transport=InProcessTransport(runtime)
                )
                barrier.wait()
                for start in range(0, len(partition), 7):
                    client.process_all(partition[start:start + 7])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(partition,))
            for partition in partitions
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        # A snapshot while every lane is mid-stream must fold whatever
        # is committed so far without corrupting anything.
        runtime.snapshot()
        for thread in threads:
            thread.join()
        assert errors == []
        runtime.sync()
        stats = runtime.stats()
        # Every event landed in exactly one lane.
        assert sum(
            lane["events_routed"] for lane in stats["lanes"]
        ) == len(events)
        assert stats["traces"] == len(trace_ids)
        assert _served_payloads(runtime) == _cold_sweep_payloads(sim)
        runtime.shutdown()

    def test_verdict_read_cache_hits_until_ingest_invalidates(self):
        workload = hiring.workload()
        sim, runtime = self._sharded_memory_runtime(workload)
        runtime.open()
        runtime.ingest(_event_stream(workload, cases=3))
        first = _served_payloads(runtime)
        before = runtime.stats()["verdict_cache"]
        # An unchanged runtime serves repeat reads from the cache.
        assert _served_payloads(runtime) == first
        after = runtime.stats()["verdict_cache"]
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        # New rows bump a lane's commit counter: the next read misses,
        # recomputes, and still matches the cold sweep.
        runtime.ingest(_event_stream(workload, cases=5))
        assert _served_payloads(runtime) == _cold_sweep_payloads(sim)
        assert (
            runtime.stats()["verdict_cache"]["misses"]
            == after["misses"] + 1
        )
        runtime.shutdown()

    def test_sharded_restart_resumes_with_zero_reevaluations(
        self, tmp_path
    ):
        db = str(tmp_path / "sharded-service.db")
        workload = hiring.workload()
        events = _event_stream(workload, cases=6)

        sim1, first = self._attach_sharded(workload, db)
        first.open()
        assert first.sharded
        first.ingest(events)
        first.shutdown()  # folds lanes, snapshots, closes shard files

        sim2, second = self._attach_sharded(workload, db)
        report = second.open()
        # The snapshot's cursor covered every lane-committed row.
        assert report.restored
        assert report.evaluated == 0
        # Replaying the stream is absorbed by rebuilt per-lane dedup.
        again = second.ingest(events)
        assert again.recorded == 0
        assert again.duplicates > 0
        second.sync()
        assert _served_payloads(second) == _cold_sweep_payloads(sim2)
        second.shutdown()

    def test_lane_crash_reopen_recovers_to_cold_sweep_parity(
        self, tmp_path
    ):
        """A lane dying mid-batch loses nothing already committed; a
        rebuilt runtime over the same shard files replays to parity."""
        db = str(tmp_path / "crashy-service.db")
        workload = hiring.workload()
        events = _event_stream(workload, cases=8, seed=17)

        sim1, first = self._attach_sharded(workload, db)
        first.open()
        plan = FaultPlan(seed=5).crash_at(
            "sharded.append.shard0", occurrence=2
        )
        with active_plan(plan):
            with pytest.raises(SimulatedCrash):
                for start in range(0, len(events), 5):
                    first.ingest(events[start:start + 5])
        # Simulated process death: abandon the runtime, no shutdown.

        sim2, second = self._attach_sharded(workload, db)
        report = second.open()
        assert second.sharded
        # Whatever survived the crash is clean, evaluable state.
        assert report.traces >= 0
        second.ingest(events)  # full replay; dedup keeps it idempotent
        second.sync()
        assert _served_payloads(second) == _cold_sweep_payloads(sim2)
        second.shutdown()


class TestTransportRecorder:
    def test_constructor_requires_exactly_one_backing(self):
        workload = hiring.workload()
        sim = workload.simulate(cases=0)
        mapping = workload.build_mapping(sim.model)
        with pytest.raises(CaptureError):
            RecorderClient()  # neither
        with pytest.raises(CaptureError):
            RecorderClient(sim.store)  # store without mapping
        runtime = ComplianceRuntime.from_simulation(
            sim, workload=workload
        )
        with pytest.raises(CaptureError):
            RecorderClient(
                sim.store, mapping,
                transport=InProcessTransport(runtime),
            )  # both

    def test_remote_recorder_matches_embedded_stats(self):
        workload = hiring.workload()
        events = _event_stream(workload, cases=4, seed=31)

        # Embedded oracle: classic store-backed recorder.
        model = workload.build_model()
        mapping = workload.build_mapping(model)
        oracle_store = ProvenanceStore(model=model)
        embedded = RecorderClient(oracle_store, mapping)
        embedded_envelopes = embedded.process_all(events + events[:5])

        # Remote: same stream through a served runtime.
        sim, runtime = _open_runtime(workload)
        runtime.open()
        remote = RecorderClient(
            transport=InProcessTransport(runtime), mapping=mapping
        )
        remote_envelopes = remote.process_all(events + events[:5])

        for field in (
            "seen", "recorded", "dropped_irrelevant",
            "dropped_unmapped", "duplicates",
        ):
            assert (
                getattr(remote.stats, field)
                == getattr(embedded.stats, field)
            ), field
        assert [
            (envelope.recorded, envelope.dropped_reason)
            for envelope in remote_envelopes
        ] == [
            (envelope.recorded, envelope.dropped_reason)
            for envelope in embedded_envelopes
        ]
        oracle_store.close()
        runtime.shutdown()

    def test_unknown_kind_is_dropped_by_the_server(self):
        from repro.capture.events import ApplicationEvent, EventSource

        workload = hiring.workload()
        sim, runtime = _open_runtime(workload)
        runtime.open()
        stray = ApplicationEvent(
            event_id="stray-1",
            source=EventSource.MANUAL,
            kind="totally.unknown",
            app_id="App99",
        )
        # Without a client-side mapping, everything ships; the server's
        # relevance filter rejects the unknown kind and the client folds
        # the disposition into its own counters.
        lenient = RecorderClient(transport=InProcessTransport(runtime))
        (envelope,) = lenient.process_all([stray])
        assert not envelope.recorded
        assert lenient.stats.dropped_irrelevant == 1
        # With the scope's mapping the client filters before the wire:
        # same outcome, nothing shipped.
        mapping = workload.build_mapping(sim.model)
        local_filter = RecorderClient(
            transport=InProcessTransport(runtime), mapping=mapping
        )
        (envelope,) = local_filter.process_all([stray])
        assert not envelope.recorded
        assert local_filter.stats.dropped_irrelevant == 1
        runtime.shutdown()

    def test_strict_client_raises_on_remote_unmapped_disposition(self):
        from repro.capture.events import ApplicationEvent, EventSource
        from repro.service.transport import IngestReply

        class StubTransport:
            def __init__(self, dispositions):
                self.reply = IngestReply(
                    recorded=0, duplicates=0, dropped_irrelevant=0,
                    dropped_unmapped=len(dispositions), correlated=0,
                    dispositions=dispositions, last_seq=0,
                )

            def ingest(self, events):
                return self.reply

        stray = ApplicationEvent(
            "stray-2", EventSource.MANUAL, "x.y", app_id="App01"
        )
        unmapped = [(False, "no mapping rule for kind 'x.y'")]
        lenient = RecorderClient(transport=StubTransport(unmapped))
        (envelope,) = lenient.process_all([stray])
        assert not envelope.recorded
        assert lenient.stats.dropped_unmapped == 1
        strict = RecorderClient(
            transport=StubTransport(unmapped), strict=True
        )
        with pytest.raises(MappingError):
            strict.process_all([stray])

    def test_disposition_count_mismatch_is_a_capture_error(self):
        from repro.capture.events import ApplicationEvent, EventSource
        from repro.service.transport import IngestReply

        class ShortTransport:
            def ingest(self, events):
                return IngestReply(
                    recorded=0, duplicates=0, dropped_irrelevant=0,
                    dropped_unmapped=0, correlated=0,
                    dispositions=[], last_seq=0,
                )

        client = RecorderClient(transport=ShortTransport())
        with pytest.raises(CaptureError):
            client.process_all([
                ApplicationEvent(
                    "m-1", EventSource.MANUAL, "a.b", app_id="App01"
                )
            ])

    def test_remote_recorder_scrubs_before_the_wire(self):
        from repro.capture.filters import SensitiveDataScrubber

        workload = hiring.workload()
        sim, runtime = _open_runtime(workload)
        runtime.open()
        events = _event_stream(workload, cases=1)
        # Tag one payload field as sensitive on the recording side.
        poisoned = [
            event.with_payload(salary_band="SB9") for event in events
        ]
        client = RecorderClient(
            transport=InProcessTransport(runtime),
            scrubber=SensitiveDataScrubber(
                sensitive_fields=("salary_band",)
            ),
        )
        client.process_all(poisoned)
        assert client.stats.scrubbed_fields == len(poisoned)
        # Nothing that reached the store mentions the scrubbed value.
        for row in runtime.store.rows():
            assert "SB9" not in row.xml
        runtime.shutdown()
