"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSimulate:
    def test_simulate_prints_capture_summary_and_rows(self):
        code, text = run_cli("simulate", "hiring", "--cases", "5")
        assert code == 0
        assert "5 cases" in text
        assert "Provenance rows of trace App01" in text
        assert "jobrequisition" in text

    def test_visibility_flag_drops_events(self):
        __, full = run_cli("simulate", "expenses", "--cases", "10")
        __, partial = run_cli(
            "simulate", "expenses", "--cases", "10",
            "--visibility", "0.5",
        )
        assert "0 dropped" in full
        assert "0 dropped" not in partial


class TestCheck:
    def test_clean_run_exits_zero(self):
        code, text = run_cli("check", "hiring", "--cases", "10")
        assert code == 0
        assert "COMPLIANCE DASHBOARD" in text
        assert "gm-approval" in text

    def test_violations_exit_nonzero(self):
        code, text = run_cli(
            "check", "hiring", "--cases", "30",
            "--violation-rate", "0.5",
        )
        assert code == 1
        assert "EXCEPTIONS" in text

    def test_exceptions_only(self):
        code, text = run_cli(
            "check", "procurement", "--cases", "30",
            "--violation-rate", "0.5", "--exceptions-only",
        )
        assert code == 1
        assert "COMPLIANCE DASHBOARD" not in text
        assert "violated" in text

    def test_exceptions_only_clean(self):
        code, text = run_cli(
            "check", "procurement", "--cases", "5", "--exceptions-only"
        )
        assert code == 0
        assert "no violations" in text


class TestVocabulary:
    def test_vocabulary_lists_menus(self):
        code, text = run_cli("vocabulary", "hiring")
        assert code == 0
        assert "Job Requisition" in text
        assert "the general manager of the job requisition" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("vocabulary", "banking")


class TestReport:
    def test_report_command(self):
        code, text = run_cli(
            "report", "incidents", "--cases", "15",
            "--violation-rate", "0.3",
        )
        assert code == 0
        assert "INTERNAL CONTROLS AUDIT REPORT" in text
        assert "p1-escalation" in text
        assert "EXCEPTIONS" in text
