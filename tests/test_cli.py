"""Tests for the command-line interface."""

import io
import re

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSimulate:
    def test_simulate_prints_capture_summary_and_rows(self):
        code, text = run_cli("simulate", "hiring", "--cases", "5")
        assert code == 0
        assert "5 cases" in text
        assert "Provenance rows of trace App01" in text
        assert "jobrequisition" in text

    def test_visibility_flag_drops_events(self):
        __, full = run_cli("simulate", "expenses", "--cases", "10")
        __, partial = run_cli(
            "simulate", "expenses", "--cases", "10",
            "--visibility", "0.5",
        )
        assert "0 dropped" in full
        assert "0 dropped" not in partial


class TestCheck:
    def test_clean_run_exits_zero(self):
        code, text = run_cli("check", "hiring", "--cases", "10")
        assert code == 0
        assert "COMPLIANCE DASHBOARD" in text
        assert "gm-approval" in text

    def test_violations_exit_nonzero(self):
        code, text = run_cli(
            "check", "hiring", "--cases", "30",
            "--violation-rate", "0.5",
        )
        assert code == 1
        assert "EXCEPTIONS" in text

    def test_exceptions_only(self):
        code, text = run_cli(
            "check", "procurement", "--cases", "30",
            "--violation-rate", "0.5", "--exceptions-only",
        )
        assert code == 1
        assert "COMPLIANCE DASHBOARD" not in text
        assert "violated" in text

    def test_exceptions_only_clean(self):
        code, text = run_cli(
            "check", "procurement", "--cases", "5", "--exceptions-only"
        )
        assert code == 0
        assert "no violations" in text


class TestVocabulary:
    def test_vocabulary_lists_menus(self):
        code, text = run_cli("vocabulary", "hiring")
        assert code == 0
        assert "Job Requisition" in text
        assert "the general manager of the job requisition" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("vocabulary", "banking")


class TestReport:
    def test_report_command(self):
        code, text = run_cli(
            "report", "incidents", "--cases", "15",
            "--violation-rate", "0.3",
        )
        assert code == 0
        assert "INTERNAL CONTROLS AUDIT REPORT" in text
        assert "p1-escalation" in text
        assert "EXCEPTIONS" in text


class TestIncrementalCheck:
    def test_snapshot_roundtrip_on_sqlite(self, tmp_path):
        db = str(tmp_path / "inc.db")
        code, __ = run_cli(
            "simulate", "hiring", "--cases", "8",
            "--violation-rate", "0.25", "--backend", "sqlite", "--db", db,
        )
        assert code == 0
        code1, text1 = run_cli(
            "check", "hiring", "--backend", "sqlite", "--db", db,
            "--incremental",
        )
        assert "incremental: no snapshot (cold sweep)" in text1
        code2, text2 = run_cli(
            "check", "hiring", "--backend", "sqlite", "--db", db,
            "--incremental",
        )
        # Second run restores the saved snapshot and evaluates nothing.
        assert "incremental: snapshot restored; 0 of" in text2
        assert code1 == code2
        # Same dashboard either way.
        assert text1.split("\n", 1)[1] == text2.split("\n", 1)[1]

    def test_incremental_without_db_still_works(self):
        code, text = run_cli(
            "check", "hiring", "--cases", "4", "--incremental",
        )
        assert "incremental: no snapshot (cold sweep)" in text
        assert "COMPLIANCE DASHBOARD" in text


class TestWatch:
    def test_watch_once_reports_startup_sweep(self, tmp_path):
        db = str(tmp_path / "watch.db")
        run_cli(
            "simulate", "hiring", "--cases", "5",
            "--backend", "sqlite", "--db", db,
        )
        code, text = run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db, "--once",
        )
        assert code == 0
        assert "watching 'new-position-open'" in text
        assert "pairs evaluated at startup" in text

    def test_watch_catches_up_after_out_of_band_append(self, tmp_path):
        import dataclasses

        from repro.store.backends import SQLiteBackend
        from repro.store.store import ProvenanceStore

        db = str(tmp_path / "watch.db")
        run_cli(
            "simulate", "hiring", "--cases", "5",
            "--backend", "sqlite", "--db", db,
        )
        # First watch saves the verdict snapshot on exit.
        run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db, "--once",
        )
        # Another process appends to one trace while nobody is watching.
        other = ProvenanceStore(backend=SQLiteBackend(db))
        template = next(r for r in other.records() if r.app_id == "App01")
        other.append(
            dataclasses.replace(template, record_id="oob-clone-1")
        )
        other.close()
        code, text = run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db, "--once",
        )
        assert code == 0
        match = re.search(
            r"snapshot restored, (\d+) pairs evaluated at startup", text
        )
        assert match is not None
        # Only the touched trace's pairs re-evaluated, not all 5 traces'.
        assert 0 < int(match.group(1)) <= 5
