"""Tests for the command-line interface."""

import io
import re

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSimulate:
    def test_simulate_prints_capture_summary_and_rows(self):
        code, text = run_cli("simulate", "hiring", "--cases", "5")
        assert code == 0
        assert "5 cases" in text
        assert "Provenance rows of trace App01" in text
        assert "jobrequisition" in text

    def test_visibility_flag_drops_events(self):
        __, full = run_cli("simulate", "expenses", "--cases", "10")
        __, partial = run_cli(
            "simulate", "expenses", "--cases", "10",
            "--visibility", "0.5",
        )
        assert "0 dropped" in full
        assert "0 dropped" not in partial


class TestCheck:
    def test_clean_run_exits_zero(self):
        code, text = run_cli("check", "hiring", "--cases", "10")
        assert code == 0
        assert "COMPLIANCE DASHBOARD" in text
        assert "gm-approval" in text

    def test_violations_exit_nonzero(self):
        code, text = run_cli(
            "check", "hiring", "--cases", "30",
            "--violation-rate", "0.5",
        )
        assert code == 1
        assert "EXCEPTIONS" in text

    def test_exceptions_only(self):
        code, text = run_cli(
            "check", "procurement", "--cases", "30",
            "--violation-rate", "0.5", "--exceptions-only",
        )
        assert code == 1
        assert "COMPLIANCE DASHBOARD" not in text
        assert "violated" in text

    def test_exceptions_only_clean(self):
        code, text = run_cli(
            "check", "procurement", "--cases", "5", "--exceptions-only"
        )
        assert code == 0
        assert "no violations" in text


class TestVocabulary:
    def test_vocabulary_lists_menus(self):
        code, text = run_cli("vocabulary", "hiring")
        assert code == 0
        assert "Job Requisition" in text
        assert "the general manager of the job requisition" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("vocabulary", "banking")


class TestReport:
    def test_report_command(self):
        code, text = run_cli(
            "report", "incidents", "--cases", "15",
            "--violation-rate", "0.3",
        )
        assert code == 0
        assert "INTERNAL CONTROLS AUDIT REPORT" in text
        assert "p1-escalation" in text
        assert "EXCEPTIONS" in text


class TestIncrementalCheck:
    def test_snapshot_roundtrip_on_sqlite(self, tmp_path):
        db = str(tmp_path / "inc.db")
        code, __ = run_cli(
            "simulate", "hiring", "--cases", "8",
            "--violation-rate", "0.25", "--backend", "sqlite", "--db", db,
        )
        assert code == 0
        code1, text1 = run_cli(
            "check", "hiring", "--backend", "sqlite", "--db", db,
            "--incremental",
        )
        assert "incremental: no snapshot (cold sweep)" in text1
        code2, text2 = run_cli(
            "check", "hiring", "--backend", "sqlite", "--db", db,
            "--incremental",
        )
        # Second run restores the saved snapshot and evaluates nothing.
        assert "incremental: snapshot restored; 0 of" in text2
        assert code1 == code2
        # Same dashboard either way.
        assert text1.split("\n", 1)[1] == text2.split("\n", 1)[1]

    def test_incremental_without_db_still_works(self):
        code, text = run_cli(
            "check", "hiring", "--cases", "4", "--incremental",
        )
        assert "incremental: no snapshot (cold sweep)" in text
        assert "COMPLIANCE DASHBOARD" in text


class TestWatch:
    def test_watch_once_reports_startup_sweep(self, tmp_path):
        db = str(tmp_path / "watch.db")
        run_cli(
            "simulate", "hiring", "--cases", "5",
            "--backend", "sqlite", "--db", db,
        )
        code, text = run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db, "--once",
        )
        assert code == 0
        assert "watching 'new-position-open'" in text
        assert "pairs evaluated at startup" in text

    def test_watch_catches_up_after_out_of_band_append(self, tmp_path):
        import dataclasses

        from repro.store.backends import SQLiteBackend
        from repro.store.store import ProvenanceStore

        db = str(tmp_path / "watch.db")
        run_cli(
            "simulate", "hiring", "--cases", "5",
            "--backend", "sqlite", "--db", db,
        )
        # First watch saves the verdict snapshot on exit.
        run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db, "--once",
        )
        # Another process appends to one trace while nobody is watching.
        other = ProvenanceStore(backend=SQLiteBackend(db))
        template = next(r for r in other.records() if r.app_id == "App01")
        other.append(
            dataclasses.replace(template, record_id="oob-clone-1")
        )
        other.close()
        code, text = run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db, "--once",
        )
        assert code == 0
        match = re.search(
            r"snapshot restored, (\d+) pairs evaluated at startup", text
        )
        assert match is not None
        # Only the touched trace's pairs re-evaluated, not all 5 traces'.
        assert 0 < int(match.group(1)) <= 5

    def test_poll_loop_is_bounded_and_picks_up_live_appends(
        self, tmp_path, monkeypatch
    ):
        """`--max-polls N` polls exactly N times with the configured
        interval; an append landing between polls is caught by the loop
        itself (not the startup sweep)."""
        import dataclasses

        from repro.store.backends import SQLiteBackend
        from repro.store.store import ProvenanceStore

        db = str(tmp_path / "watch.db")
        run_cli(
            "simulate", "hiring", "--cases", "4",
            "--backend", "sqlite", "--db", db,
        )
        sleeps = []

        def fake_sleep(seconds):
            # The fake clock stands in for wall time; on the first tick
            # another "process" appends out-of-band.
            sleeps.append(seconds)
            if len(sleeps) == 1:
                other = ProvenanceStore(backend=SQLiteBackend(db))
                template = next(
                    r for r in other.records() if r.app_id == "App01"
                )
                other.append(
                    dataclasses.replace(template, record_id="live-oob-1")
                )
                other.close()

        monkeypatch.setattr("repro.cli.time.sleep", fake_sleep)
        code, text = run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db,
            "--max-polls", "3", "--interval", "0.25",
        )
        assert code == 0
        # 3 polls → 2 sleeps between them, at the configured interval.
        assert sleeps == [0.25, 0.25]
        match = re.search(r"\[seq \d+\] (\d+) new row\(s\)", text)
        assert match is not None and int(match.group(1)) == 1

    def test_poll_loop_saves_snapshot_on_exit(self, tmp_path, monkeypatch):
        db = str(tmp_path / "watch.db")
        run_cli(
            "simulate", "hiring", "--cases", "4",
            "--backend", "sqlite", "--db", db,
        )
        monkeypatch.setattr("repro.cli.time.sleep", lambda seconds: None)
        code, __ = run_cli(
            "watch", "hiring", "--backend", "sqlite", "--db", db,
            "--max-polls", "2",
        )
        assert code == 0
        # The snapshot written when the bounded loop exited makes the next
        # incremental check a no-op catch-up, not a cold sweep.
        code, text = run_cli(
            "check", "hiring", "--backend", "sqlite", "--db", db,
            "--incremental",
        )
        assert code == 0
        assert "incremental: snapshot restored; 0 of" in text


class TestChaos:
    def test_chaos_runs_seeded_schedules(self):
        code, text = run_cli("chaos", "--schedules", "3", "--seed", "7")
        assert code == 0
        assert "3 schedules ok" not in text  # both backends → 6 total
        assert "6 schedules ok" in text
        assert "seeds 7..9" in text

    def test_chaos_verbose_names_crash_sites(self):
        code, text = run_cli(
            "chaos", "--schedules", "4", "--backend", "memory", "--verbose",
        )
        assert code == 0
        assert "seed=0 backend=memory" in text
        assert "crash@" in text

    def test_chaos_failure_is_replayable(self, monkeypatch):
        from repro.faults import checker

        monkeypatch.setattr(checker, "_norm", lambda results: [object()])
        code, text = run_cli("chaos", "--schedules", "1", "--seed", "3")
        assert code == 1
        assert "chaos: FAILED" in text
        assert "--seed 3" in text


class TestScenarios:
    def test_lists_every_registered_workload(self):
        code, text = run_cli("scenarios")
        assert code == 0
        assert "Registered workloads" in text
        for scenario, process in (
            ("expenses", "expense-reimbursement"),
            ("hiring", "new-position-open"),
            ("incidents", "incident-management"),
            ("procurement", "purchase-to-pay"),
        ):
            assert scenario in text
            assert process in text

    def test_verbose_names_each_control_point(self):
        code, text = run_cli("scenarios", "--verbose")
        assert code == 0
        assert "gm-approval" in text
        # Control lines carry severity + description.
        assert re.search(r"gm-approval \[\w+\]: ", text)
