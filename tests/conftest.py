"""Shared fixtures: a small hiring scenario for BRMS/controls tests.

The fixtures build the paper's New Position Open example by hand (the full
simulator in :mod:`repro.processes` has its own tests); rule-system tests
need a known graph, not a simulated one.

This file is also the single root of test randomness: every randomized
test derives its RNG from ``REPRO_TEST_SEED`` via :func:`derive_rng`, so
one exported environment variable replays the whole suite's random
choices.  The active seed is printed in the pytest header.
"""

import os
import random

import pytest

#: the one seed every randomized test derives from.  Override with
#: ``REPRO_TEST_SEED=<n> pytest ...`` to replay a failing run.
REPRO_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "2011"))


def derive_rng(label: str) -> random.Random:
    """A fresh RNG for one call site, derived from the suite seed.

    Distinct labels give independent, reproducible streams; the same
    (seed, label) pair always yields the same sequence, regardless of
    test execution order.
    """
    return random.Random(f"{REPRO_TEST_SEED}:{label}")


def derive_seed(label: str) -> int:
    """A reproducible integer seed for APIs that take one (simulators,
    the crash checker), derived like :func:`derive_rng`."""
    return derive_rng(label).randrange(2**31)


def pytest_report_header(config):
    return (
        f"REPRO_TEST_SEED={REPRO_TEST_SEED} "
        "(export to replay this run's randomized tests)"
    )

from repro.brms.bom import BusinessObjectModel
from repro.brms.verbalization import Verbalizer
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.graph.graph import ProvenanceGraph
from repro.model.attributes import AttributeSpec
from repro.model.builder import ModelBuilder
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
    TaskRecord,
)


@pytest.fixture
def hiring_model():
    """The provenance data model of the New Position Open process."""
    return (
        ModelBuilder("hiring")
        .data(
            "jobrequisition",
            "Job Requisition",
            reqid=AttributeSpec("reqid", verbalized="requisition ID"),
            type=AttributeSpec("type", verbalized="position type"),
            position=AttributeSpec("position", verbalized="offered position"),
            dept=str,
            managergen=AttributeSpec(
                "managergen", verbalized="general manager"
            ),
        )
        .data(
            "approvalstatus",
            "Approval Status",
            reqid=AttributeSpec("reqid", verbalized="requisition ID"),
            status=str,
            approver=str,
        )
        .data(
            "candidatelist",
            "Candidate List",
            reqid=AttributeSpec("reqid", verbalized="requisition ID"),
            count=int,
        )
        .resource(
            "person",
            "Person",
            name=str,
            email=str,
            manager=str,
            role=str,
        )
        .task("submission", "Submission", start=int, end=int)
        .task("approvaltask", "Approval Task", start=int, end=int)
        .relation(
            "submitterOf",
            RecordClass.RESOURCE,
            RecordClass.DATA,
            label="the submitter of",
        )
        .relation(
            "approvalOf",
            RecordClass.DATA,
            RecordClass.DATA,
            label="the approval of",
        )
        .relation(
            "candidatesFor",
            RecordClass.DATA,
            RecordClass.DATA,
            label="the candidate list of",
        )
        .relation(
            "actor",
            RecordClass.RESOURCE,
            RecordClass.TASK,
            label="the actor of",
        )
        .relation(
            "generates",
            RecordClass.TASK,
            RecordClass.DATA,
            label="the generator of",
        )
        .build()
    )


def build_hiring_trace(
    app_id="App01",
    position_type="new",
    with_approval=True,
    with_candidates=True,
    approval_status="approved",
):
    """One execution trace of the New Position Open process as a graph."""
    graph = ProvenanceGraph(name=app_id)
    graph.add_node_record(
        ResourceRecord.create(
            f"{app_id}-R1",
            app_id,
            "person",
            timestamp=0,
            attributes={
                "name": "Joe Doe",
                "email": "jdoe@acme.com",
                "manager": "Jane Smith",
                "role": "Sales Manager",
            },
        )
    )
    graph.add_node_record(
        TaskRecord.create(
            f"{app_id}-T1",
            app_id,
            "submission",
            timestamp=10,
            attributes={"start": 5, "end": 10},
        )
    )
    graph.add_node_record(
        DataRecord.create(
            f"{app_id}-D1",
            app_id,
            "jobrequisition",
            timestamp=10,
            attributes={
                "reqid": f"Req-{app_id}",
                "type": position_type,
                "position": "Sales",
                "dept": "Dept501",
                "managergen": "Jane Smith",
            },
        )
    )
    graph.add_relation_record(
        RelationRecord.create(
            f"{app_id}-E1",
            app_id,
            "submitterOf",
            source_id=f"{app_id}-R1",
            target_id=f"{app_id}-D1",
        )
    )
    graph.add_relation_record(
        RelationRecord.create(
            f"{app_id}-E2",
            app_id,
            "actor",
            source_id=f"{app_id}-R1",
            target_id=f"{app_id}-T1",
        )
    )
    graph.add_relation_record(
        RelationRecord.create(
            f"{app_id}-E3",
            app_id,
            "generates",
            source_id=f"{app_id}-T1",
            target_id=f"{app_id}-D1",
        )
    )
    if with_approval:
        graph.add_node_record(
            DataRecord.create(
                f"{app_id}-D2",
                app_id,
                "approvalstatus",
                timestamp=20,
                attributes={
                    "reqid": f"Req-{app_id}",
                    "status": approval_status,
                    "approver": "Jane Smith",
                },
            )
        )
        graph.add_relation_record(
            RelationRecord.create(
                f"{app_id}-E4",
                app_id,
                "approvalOf",
                source_id=f"{app_id}-D2",
                target_id=f"{app_id}-D1",
            )
        )
    if with_candidates:
        graph.add_node_record(
            DataRecord.create(
                f"{app_id}-D3",
                app_id,
                "candidatelist",
                timestamp=30,
                attributes={"reqid": f"Req-{app_id}", "count": 4},
            )
        )
        graph.add_relation_record(
            RelationRecord.create(
                f"{app_id}-E5",
                app_id,
                "candidatesFor",
                source_id=f"{app_id}-D3",
                target_id=f"{app_id}-D1",
            )
        )
    return graph


@pytest.fixture
def hiring_trace():
    """A compliant trace: new position with approval and candidate list."""
    return build_hiring_trace()


@pytest.fixture
def hiring_xom(hiring_model):
    return ExecutableObjectModel(hiring_model, package="mycompany")


@pytest.fixture
def hiring_bom(hiring_xom) -> BusinessObjectModel:
    return Verbalizer(hiring_xom).verbalize()


@pytest.fixture
def hiring_vocabulary(hiring_bom) -> Vocabulary:
    return Vocabulary(hiring_bom)
