"""Unit tests for BAL compilation (vocabulary resolution, static checks)."""

import pytest

from repro.brms.bal.compiler import BalCompiler
from repro.errors import BalCompileError

VALID = """
definitions
  set 'req' to a Job Requisition ;
if
  the position type of 'req' is "new"
then
  the internal control is satisfied
"""


@pytest.fixture
def compiler(hiring_vocabulary):
    return BalCompiler(hiring_vocabulary)


class TestCompile:
    def test_valid_rule_compiles(self, compiler):
        compiled = compiler.compile("new-position", VALID)
        assert compiled.name == "new-position"
        assert compiled.concepts == ("Job Requisition",)
        assert compiled.phrases == ("position type",)
        assert compiled.variables == ("req",)
        assert compiled.parameters == ()

    def test_anchor_variable_is_first_instance_binding(self, compiler):
        compiled = compiler.compile("c", VALID)
        assert compiled.anchor_variable == "req"

    def test_no_anchor_when_no_instance_binding(self, compiler):
        compiled = compiler.compile(
            "c", "if 1 is 1 then the control is satisfied"
        )
        assert compiled.anchor_variable is None

    def test_source_retained(self, compiler):
        compiled = compiler.compile("c", VALID)
        assert compiled.source == VALID

    def test_parameters_exposed(self, compiler):
        compiled = compiler.compile(
            "c",
            "definitions set 'req' to a Job Requisition where "
            "the requisition ID of this is <ID> ; "
            "if 'req' is not null then the control is satisfied",
        )
        assert compiled.parameters == ("ID",)


class TestStaticErrors:
    def test_unknown_concept(self, compiler):
        with pytest.raises(BalCompileError) as excinfo:
            compiler.compile(
                "c",
                "definitions set 'x' to an Invoice ; "
                "if 'x' is not null then the control is satisfied",
            )
        assert "Invoice" in str(excinfo.value)

    def test_unknown_phrase(self, compiler):
        with pytest.raises(BalCompileError) as excinfo:
            compiler.compile(
                "c",
                "definitions set 'req' to a Job Requisition ; "
                "if the salary band of 'req' is \"A\" "
                "then the control is satisfied",
            )
        assert "salary band" in str(excinfo.value)

    def test_variable_used_before_definition(self, compiler):
        with pytest.raises(BalCompileError):
            compiler.compile(
                "c",
                "definitions set 'a' to the position type of 'b' ; "
                "set 'b' to a Job Requisition ; "
                "if 'a' is \"new\" then the control is satisfied",
            )

    def test_undefined_variable_in_condition(self, compiler):
        with pytest.raises(BalCompileError):
            compiler.compile(
                "c", "if 'ghost' is null then the control is satisfied"
            )

    def test_undefined_variable_in_action(self, compiler):
        with pytest.raises(BalCompileError):
            compiler.compile(
                "c",
                "if 1 is 1 then set 'x' to 'ghost' + 1",
            )

    def test_assign_introduces_variable_for_later_actions(self, compiler):
        compiled = compiler.compile(
            "c",
            "if 1 is 1 then set 'x' to 1 ; set 'y' to 'x' + 1",
        )
        assert compiled is not None

    def test_this_outside_where_rejected(self, compiler):
        with pytest.raises(BalCompileError):
            compiler.compile(
                "c",
                "if the position type of this is \"new\" "
                "then the control is satisfied",
            )

    def test_this_inside_exists_where_allowed(self, compiler):
        compiled = compiler.compile(
            "c",
            'if there is an approval status where the status of this is '
            '"approved" then the control is satisfied',
        )
        assert compiled.concepts == ("Approval Status",)


class TestDidYouMean:
    def test_misspelled_concept_suggests(self, compiler):
        with pytest.raises(BalCompileError) as excinfo:
            compiler.compile(
                "c",
                "definitions set 'x' to a Job Requisitio ; "
                "if 'x' is not null then the internal control is satisfied",
            )
        assert "did you mean 'Job Requisition'" in str(excinfo.value)

    def test_misspelled_phrase_suggests(self, compiler):
        with pytest.raises(BalCompileError) as excinfo:
            compiler.compile(
                "c",
                "definitions set 'req' to a Job Requisition ; "
                "if the position typ of 'req' is \"new\" "
                "then the internal control is satisfied",
            )
        assert "did you mean 'position type'" in str(excinfo.value)

    def test_totally_unknown_concept_lists_vocabulary(self, compiler):
        with pytest.raises(BalCompileError) as excinfo:
            compiler.compile(
                "c",
                "definitions set 'x' to a Zorblax ; "
                "if 'x' is null then the internal control is satisfied",
            )
        assert "vocabulary knows" in str(excinfo.value)
