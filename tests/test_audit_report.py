"""Tests for the audit report generator."""

import pytest

from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import VisibilityPolicy
from repro.reporting.audit import AuditReportBuilder


@pytest.fixture(scope="module")
def audited():
    workload = hiring.workload()
    plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.3)
    sim = workload.simulate(cases=20, seed=44, violations=plan)
    evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
    results = evaluator.run(sim.controls)
    builder = AuditReportBuilder(sim.store, sim.controls)
    return sim, results, builder


class TestReportContent:
    def test_sections_present(self, audited):
        __, results, builder = audited
        report = builder.build(results)
        assert "INTERNAL CONTROLS AUDIT REPORT" in report
        assert "CONTROL EFFECTIVENESS" in report
        assert "EXCEPTIONS" in report
        assert "EVIDENCE GAPS" in report

    def test_every_control_has_an_effectiveness_row(self, audited):
        sim, results, builder = audited
        report = builder.build(results)
        for control in sim.controls:
            assert f"{control.name} [{control.severity.value}]" in report
            if control.description:
                assert control.description in report

    def test_check_count_reported(self, audited):
        sim, results, builder = audited
        report = builder.build(results)
        assert f"{len(results)} checks performed" in report
        assert f"{len(sim.store.app_ids())} traces" in report

    def test_exceptions_carry_alerts_and_evidence(self, audited):
        __, results, builder = audited
        report = builder.build(results)
        from repro.controls.status import ComplianceStatus

        violated = [
            r for r in results if r.status is ComplianceStatus.VIOLATED
        ]
        assert violated, "seed must produce violations"
        for result in violated:
            assert f"@ trace {result.trace_id}" in report
        assert "evidence" in report
        assert "jobrequisition" in report

    def test_custom_title(self, audited):
        __, results, builder = audited
        report = builder.build(results, title="Q3 SOX REVIEW")
        assert report.startswith("Q3 SOX REVIEW")


class TestEvidenceLines:
    def test_bound_nodes_listed_with_variable_names(self, audited):
        sim, results, builder = audited
        satisfied = next(
            r for r in results
            if r.control_name == "gm-approval" and r.bound_nodes.get(
                "the current job request"
            )
        )
        lines = builder.evidence_lines(satisfied)
        assert any(
            line.startswith("the current job request:") for line in lines
        )

    def test_condition_touched_nodes_marked(self, audited):
        from repro.controls.status import ComplianceStatus

        sim, results, builder = audited
        conclusive = [
            r
            for r in results
            if r.control_name == "gm-approval"
            and r.status is ComplianceStatus.SATISFIED
        ]
        assert conclusive
        lines = builder.evidence_lines(conclusive[0])
        assert any(line.startswith("(condition):") for line in lines)

    def test_no_evidence_placeholder(self, audited):
        from repro.controls.status import ComplianceResult, ComplianceStatus

        __, __, builder = audited
        empty = ComplianceResult(
            control_name="x", trace_id="t",
            status=ComplianceStatus.NOT_APPLICABLE,
        )
        assert builder.evidence_lines(empty) == [
            "(no evidence captured — see status)"
        ]


class TestEvidenceGaps:
    def test_undetermined_checks_reported_as_gaps(self):
        workload = hiring.workload()
        sim = workload.simulate(
            cases=10, seed=3,
            visibility=VisibilityPolicy(
                rates={}, default_rate=0.0
            ),
        )
        # Nothing captured: evaluate with observability info -> undetermined.
        evaluator = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary,
            observable_types=set(),
        )
        # No traces captured at all: force a synthetic check list by using
        # the expected trace ids from the runs.
        results = []
        for run in sim.runs:
            for control in sim.controls:
                results.append(
                    evaluator.check_trace(control, run.app_id)
                )
        builder = AuditReportBuilder(sim.store, sim.controls)
        report = builder.build(results)
        assert "EVIDENCE GAPS (30)" in report
        assert "unobservable under the current capture configuration" in (
            report
        )
