"""Unit tests for the BAL parser (AST shapes and render round-trips)."""

import pytest

from repro.brms.bal import ast
from repro.brms.bal.parser import parse_rule
from repro.errors import BalSyntaxError

PAPER_RULE = """
definitions
  set 'the current job request' to a Job Requisition
      where the requisition ID of this Job Requisition is <string ID> ;
  set 'the hiring manager of the request' to
      the submitter of 'the current job request' ;
  set 'the general manager of the request' to
      the general manager of 'the current job request' ;
if
  all of the following conditions are true :
    - the position type of 'the current job request' is "new" ,
    - the approval of 'the current job request' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied
"""


@pytest.fixture
def paper_rule(hiring_vocabulary):
    return parse_rule(PAPER_RULE, hiring_vocabulary)


class TestPaperRule:
    def test_three_definitions(self, paper_rule):
        assert len(paper_rule.definitions) == 3
        assert paper_rule.definitions[0].var == "the current job request"

    def test_first_definition_is_instance_binding(self, paper_rule):
        binder = paper_rule.definitions[0].binder
        assert isinstance(binder, ast.InstanceBinding)
        assert binder.concept == "Job Requisition"
        assert isinstance(binder.where, ast.Comparison)

    def test_where_clause_uses_this(self, paper_rule):
        where = paper_rule.definitions[0].binder.where
        assert isinstance(where.left, ast.Navigation)
        assert where.left.phrase == "requisition ID"
        assert isinstance(where.left.target, ast.ThisRef)
        assert where.left.target.concept == "Job Requisition"
        assert isinstance(where.right, ast.ParamRef)
        assert where.right.name == "string ID"

    def test_navigation_definitions(self, paper_rule):
        binder = paper_rule.definitions[1].binder
        assert isinstance(binder, ast.Navigation)
        assert binder.phrase == "submitter"
        assert isinstance(binder.target, ast.VarRef)

    def test_condition_is_all_block(self, paper_rule):
        condition = paper_rule.condition
        assert isinstance(condition, ast.And)
        assert condition.block
        assert len(condition.conditions) == 2
        assert condition.conditions[1].op == "not_null"

    def test_actions(self, paper_rule):
        assert paper_rule.then_actions == (ast.SetStatus(satisfied=True),)
        assert paper_rule.else_actions == (ast.SetStatus(satisfied=False),)

    def test_parameters_collected(self, paper_rule):
        assert paper_rule.parameters() == ["string ID"]

    def test_concepts_collected(self, paper_rule):
        assert paper_rule.concepts() == ["Job Requisition"]

    def test_phrases_collected(self, paper_rule):
        assert set(paper_rule.phrases()) == {
            "requisition ID",
            "submitter",
            "general manager",
            "position type",
            "approval",
        }

    def test_render_reparses_to_same_ast(self, paper_rule, hiring_vocabulary):
        rendered = paper_rule.render()
        reparsed = parse_rule(rendered, hiring_vocabulary)
        assert reparsed == paper_rule


class TestConditionForms:
    def test_minimal_rule(self):
        rule = parse_rule('if 1 is 1 then the control is satisfied')
        assert isinstance(rule.condition, ast.Comparison)
        assert rule.definitions == ()

    def test_and_or_precedence(self):
        rule = parse_rule(
            'if 1 is 1 and 2 is 2 or 3 is 3 then the control is satisfied'
        )
        assert isinstance(rule.condition, ast.Or)
        assert isinstance(rule.condition.conditions[0], ast.And)

    def test_not(self):
        rule = parse_rule('if not 1 is 2 then the control is satisfied')
        assert isinstance(rule.condition, ast.Not)

    def test_not_with_parens(self):
        rule = parse_rule(
            'if not ( 1 is 2 or 2 is 1 ) then the control is satisfied'
        )
        assert isinstance(rule.condition, ast.Not)
        assert isinstance(rule.condition.condition, ast.Or)

    def test_any_block(self):
        rule = parse_rule(
            "if any of the following conditions are true : "
            '- 1 is 1 , - 2 is 3 then the control is satisfied'
        )
        assert isinstance(rule.condition, ast.Or)
        assert rule.condition.block

    def test_empty_block_rejected(self):
        with pytest.raises(BalSyntaxError):
            parse_rule(
                "if all of the following conditions are true : "
                "then the control is satisfied"
            )

    def test_exists(self, hiring_vocabulary):
        rule = parse_rule(
            "if there is an approval status where the status of this is "
            '"approved" then the control is satisfied',
            hiring_vocabulary,
        )
        assert isinstance(rule.condition, ast.Exists)
        assert rule.condition.concept == "Approval Status"
        assert not rule.condition.negated

    def test_there_is_no(self, hiring_vocabulary):
        rule = parse_rule(
            "if there is no candidate list then the control is not satisfied "
            "else the control is satisfied",
            hiring_vocabulary,
        )
        assert rule.condition.negated

    def test_comparison_operators(self):
        cases = {
            "is at least 5": "ge",
            "is at most 5": "le",
            "is more than 5": "gt",
            "is less than 5": "lt",
            "is not 5": "ne",
            "equals 5": "eq",
            "is after 5": "gt",
            "is before 5": "lt",
            "is equal to 5": "eq",
        }
        for tail, op in cases.items():
            rule = parse_rule(f"if 3 {tail} then the control is satisfied")
            assert rule.condition.op == op, tail

    def test_is_one_of(self):
        rule = parse_rule(
            'if "a" is one of ("a", "b", "c") then the control is satisfied'
        )
        assert rule.condition.op == "one_of"
        assert len(rule.condition.right) == 3

    def test_truthy_bare_expression(self):
        rule = parse_rule("if 'flag' then the control is satisfied")
        assert rule.condition.op == "truthy"


class TestExpressions:
    def cond(self, text, vocabulary=None):
        rule = parse_rule(
            f"if {text} is 0 then the control is satisfied", vocabulary
        )
        return rule.condition.left

    def test_arithmetic_precedence(self):
        expr = self.cond("1 + 2 * 3")
        assert isinstance(expr, ast.Arith)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized(self):
        expr = self.cond("( 1 + 2 ) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_count_of(self, hiring_vocabulary):
        expr = self.cond("the number of 'candidates'", hiring_vocabulary)
        assert isinstance(expr, ast.CountOf)

    def test_navigation_chain(self, hiring_vocabulary):
        expr = self.cond(
            "the general manager of the submitter of 'x'", hiring_vocabulary
        )
        assert isinstance(expr, ast.Navigation)
        assert expr.phrase == "general manager"
        assert isinstance(expr.target, ast.Navigation)
        assert expr.target.phrase == "submitter"

    def test_phrase_without_vocabulary_splits_at_of(self):
        expr = self.cond("the position type of 'x'")
        assert expr.phrase == "position type"

    def test_literals(self):
        assert self.cond("true").value is True
        assert self.cond("false").value is False
        assert self.cond("null").value is None
        assert self.cond('"text"').value == "text"
        assert self.cond("2.5").value == 2.5


class TestActions:
    def test_alert(self):
        rule = parse_rule(
            'if 1 is 1 then alert "missing approval"'
        )
        assert rule.then_actions == (ast.Alert(message="missing approval"),)

    def test_multiple_actions(self):
        rule = parse_rule(
            "if 1 is 1 then the control is not satisfied ; "
            'alert "check this" ; set \'count\' to 2 + 2'
        )
        assert len(rule.then_actions) == 3
        assert isinstance(rule.then_actions[2], ast.Assign)

    def test_paper_typo_in_not_satisfied(self):
        # The paper writes "Internal control in not satisfied".
        rule = parse_rule(
            "if 1 is 2 then the control is satisfied "
            "else internal control in not satisfied"
        )
        assert rule.else_actions == (ast.SetStatus(satisfied=False),)

    def test_alert_requires_string(self):
        with pytest.raises(BalSyntaxError):
            parse_rule("if 1 is 1 then alert 42")


class TestParserErrors:
    def test_missing_if(self):
        with pytest.raises(BalSyntaxError):
            parse_rule("definitions set 'x' to 1 ;")

    def test_missing_then(self):
        with pytest.raises(BalSyntaxError):
            parse_rule("if 1 is 1 the control is satisfied")

    def test_unquoted_definition_variable(self):
        with pytest.raises(BalSyntaxError):
            parse_rule("definitions set x to 1 ; if 1 is 1 then "
                       "the control is satisfied")

    def test_trailing_garbage(self):
        with pytest.raises(BalSyntaxError):
            parse_rule("if 1 is 1 then the control is satisfied ; ) junk (")

    def test_error_location_reported(self):
        with pytest.raises(BalSyntaxError) as excinfo:
            parse_rule("if 1 is 1\nthen control wrong")
        assert excinfo.value.line == 2


class TestNestedBlocks:
    """Nested condition blocks need parentheses; the renderer adds them."""

    def test_unparenthesized_inner_block_swallows_bullets(self):
        # Documented footgun: without parens the inner block is greedy.
        rule = parse_rule(
            "if all of the following conditions are true : "
            "- any of the following conditions are true : "
            "- 2 is 2 , - 3 is 4 , - 1 is 1 "
            "then the internal control is satisfied"
        )
        assert len(rule.condition.conditions) == 1  # everything went inner
        inner = rule.condition.conditions[0]
        assert len(inner.conditions) == 3

    def test_parenthesized_inner_block_scopes_correctly(self):
        rule = parse_rule(
            "if all of the following conditions are true : "
            "- ( any of the following conditions are true : "
            "- 2 is 2 , - 3 is 4 ) , - 1 is 1 "
            "then the internal control is satisfied"
        )
        assert len(rule.condition.conditions) == 2
        inner = rule.condition.conditions[0]
        assert isinstance(inner, ast.Or)
        assert len(inner.conditions) == 2

    def test_nested_block_render_roundtrips_semantically(self):
        rule = parse_rule(
            "if all of the following conditions are true : "
            "- ( any of the following conditions are true : "
            "- 2 is 2 , - 3 is 4 ) , - 1 is 1 "
            "then the internal control is satisfied"
        )
        reparsed = parse_rule(rule.render())
        assert reparsed == rule
