"""Unit tests for relevance filtering and sensitive-data scrubbing."""

from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.filters import (
    AttributeAllowList,
    RelevanceFilter,
    SensitiveDataScrubber,
)


def event(kind="task.completed", **payload):
    return ApplicationEvent(
        event_id="E1",
        source=EventSource.WORKFLOW,
        kind=kind,
        timestamp=10,
        app_id="App01",
        payload=payload,
    )


class TestRelevanceFilter:
    def test_empty_kinds_admits_all(self):
        admitted, __ = RelevanceFilter().admit(event())
        assert admitted

    def test_relevant_kind_admitted(self):
        flt = RelevanceFilter(["task.completed"])
        admitted, __ = flt.admit(event())
        assert admitted

    def test_irrelevant_kind_dropped_with_reason(self):
        flt = RelevanceFilter(["mail.sent"])
        admitted, reason = flt.admit(event())
        assert not admitted
        assert "task.completed" in reason

    def test_predicate_narrows(self):
        flt = RelevanceFilter(
            ["task.completed"],
            predicate=lambda e: e.get("dept") == "Dept501",
        )
        admitted, __ = flt.admit(event(dept="Dept501"))
        assert admitted
        admitted, reason = flt.admit(event(dept="Dept999"))
        assert not admitted
        assert "predicate" in reason


class TestAttributeAllowList:
    def test_build_translates_double_underscore(self):
        allow = AttributeAllowList.build(task__completed=("actor",))
        assert allow.fields_for("task.completed") == frozenset({"actor"})

    def test_unknown_kind_unrestricted(self):
        allow = AttributeAllowList.build(task__completed=("actor",))
        assert allow.fields_for("mail.sent") is None


class TestSensitiveDataScrubber:
    def test_sensitive_fields_always_removed(self):
        scrubber = SensitiveDataScrubber(sensitive_fields=["salary"])
        scrubbed, removed = scrubber.scrub(
            event(actor="joe", salary="100k")
        )
        assert removed == 1
        assert "salary" not in scrubbed.payload
        assert scrubbed.get("actor") == "joe"

    def test_allow_list_keeps_only_declared(self):
        scrubber = SensitiveDataScrubber(
            allow_list=AttributeAllowList.build(
                task__completed=("actor",)
            )
        )
        scrubbed, removed = scrubber.scrub(
            event(actor="joe", internal_note="x", debug="y")
        )
        assert removed == 2
        assert set(scrubbed.payload) == {"actor"}

    def test_no_removal_returns_same_event(self):
        scrubber = SensitiveDataScrubber()
        original = event(actor="joe")
        scrubbed, removed = scrubber.scrub(original)
        assert removed == 0
        assert scrubbed is original

    def test_scrub_preserves_identity_fields(self):
        scrubber = SensitiveDataScrubber(sensitive_fields=["ssn"])
        scrubbed, __ = scrubber.scrub(event(ssn="123"))
        assert scrubbed.event_id == "E1"
        assert scrubbed.app_id == "App01"
        assert scrubbed.timestamp == 10
