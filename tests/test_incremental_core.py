"""The incremental evaluation core: change feed, materializer, identity.

Three layers under test:

- the storage **change feed** (``last_seq`` / ``changes_since`` / auxiliary
  state) across every backend, including out-of-band appends folded in via
  :meth:`ProvenanceStore.sync`,
- the :class:`~repro.controls.materializer.VerdictMaterializer` — dirty
  tracking, targeted refresh, transitions, snapshots,
- the headline guarantee: **interleaved incremental evaluation is
  byte-identical to a cold full sweep**, checked over hundreds of
  randomized append/evaluate interleavings (including across a SQLite
  close → out-of-band append → reopen → catch-up cycle).
"""

import dataclasses
import os

import pytest

from repro.controls.authoring import ControlAuthoringTool
from repro.controls.control import ControlSeverity
from repro.controls.dashboard import ComplianceDashboard
from repro.controls.deployment import ControlDeployment
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.status import ComplianceStatus
from repro.store.backends import SQLiteBackend
from repro.store.cursor import cursor_total
from repro.store.store import ProvenanceStore

from tests.conftest import derive_rng

from tests.conftest import build_hiring_trace
from tests.test_controls_evaluation import GM_CONTROL, populate_store
from tests.test_store_backends import BACKEND_PARAMS, make_backend
from tests.test_store_store import sample_records

SUBMITTER_CONTROL = (
    "definitions set 'req' to a Job Requisition ; "
    "if the submitter of 'req' is not null "
    "then the internal control is satisfied"
)


@pytest.fixture
def tool(hiring_vocabulary):
    tool = ControlAuthoringTool(hiring_vocabulary)
    tool.author("gm-approval", GM_CONTROL, severity=ControlSeverity.HIGH)
    tool.deploy("gm-approval")
    tool.author("has-submitter", SUBMITTER_CONTROL)
    tool.deploy("has-submitter")
    return tool


def trace_stream(graph):
    """A trace's records in populate order (nodes, then edges)."""
    nodes = sorted(graph.nodes(), key=lambda r: r.record_id)
    edges = sorted(graph.edges(), key=lambda r: r.record_id)
    return nodes + edges


def norm(results):
    """Every observable field of a result, for identity comparison."""
    return [
        (
            r.control_name,
            r.trace_id,
            r.status,
            r.checked_at,
            tuple(r.alerts),
            tuple(sorted(r.bound_nodes.items())),
            tuple(r.touched_nodes),
        )
        for r in results
    ]


# ---------------------------------------------------------------------------
# Change feed conformance (every backend)
# ---------------------------------------------------------------------------


class TestChangeFeed:
    @pytest.fixture(params=BACKEND_PARAMS)
    def store(self, request, tmp_path):
        store = ProvenanceStore(
            indexed=True, backend=make_backend(request.param, tmp_path)
        )
        yield store
        store.close()

    def test_last_seq_counts_appends(self, store):
        # Cursor-generic: plain backends return ints, sharded backends a
        # per-shard vector — ``cursor_total`` counts rows behind either.
        assert cursor_total(store.last_seq()) == 0
        store.extend(sample_records("App01"))
        assert cursor_total(store.last_seq()) == 3
        store.extend(sample_records("App02"))
        assert cursor_total(store.last_seq()) == 6

    def test_changes_since_yields_contiguous_suffix(self, store):
        store.extend(sample_records("App01"))
        store.extend(sample_records("App02"))
        everything = list(store.changes_since(0))
        # Each yielded cursor is the position *after* its row, so totals
        # climb one row at a time regardless of cursor shape.
        assert [cursor_total(seq) for seq, __ in everything] == [
            1, 2, 3, 4, 5, 6
        ]
        assert [r.record_id for __, r in everything] == [
            r.record_id for r in store.records()
        ]
        # Resuming from any mid-stream cursor replays exactly the suffix.
        resume_at, __ = everything[3]
        suffix = list(store.changes_since(resume_at))
        assert [(seq, r.record_id) for seq, r in suffix] == [
            (seq, r.record_id) for seq, r in everything[4:]
        ]
        assert everything[-1][0] == store.last_seq()
        assert list(store.changes_since(store.last_seq())) == []

    def test_aux_state_roundtrip(self, store):
        assert store.load_state("missing") is None
        store.save_state("snapshot", '{"cursor": 3}')
        assert store.load_state("snapshot") == '{"cursor": 3}'
        store.save_state("snapshot", '{"cursor": 9}')
        assert store.load_state("snapshot") == '{"cursor": 9}'

    def test_feed_survives_sqlite_reopen(self, tmp_path):
        path = str(tmp_path / "feed.db")
        store = ProvenanceStore(backend=SQLiteBackend(path))
        store.extend(sample_records("App01"))
        store.save_state("k", "v")
        store.close()
        reopened = ProvenanceStore(backend=SQLiteBackend(path))
        assert reopened.last_seq() == 3
        assert [seq for seq, __ in reopened.changes_since(1)] == [2, 3]
        assert reopened.load_state("k") == "v"
        reopened.close()


class TestStoreSync:
    def test_sync_folds_out_of_band_appends(self, tmp_path):
        path = str(tmp_path / "sync.db")
        store = ProvenanceStore(indexed=True, backend=SQLiteBackend(path))
        store.extend(sample_records("App01"))
        seen = []
        store.subscribe(lambda r: seen.append(r.record_id))

        other = ProvenanceStore(backend=SQLiteBackend(path))
        other.extend(sample_records("App02"))
        other.close()

        assert store.sync() == 3
        assert seen == ["R1-App02", "D1-App02", "E1-App02"]
        assert store.app_ids() == ["App01", "App02"]
        assert "D1-App02" in store  # index caught up, not just the feed
        assert store.last_seq() == 6
        assert store.sync() == 0
        store.close()

    def test_sync_noop_on_memory_backend(self):
        store = ProvenanceStore()
        store.extend(sample_records("App01"))
        assert store.sync() == 0


# ---------------------------------------------------------------------------
# Materializer behaviour
# ---------------------------------------------------------------------------


class TestMaterializer:
    @pytest.fixture
    def store(self, hiring_model):
        return populate_store(
            hiring_model,
            [
                build_hiring_trace("App01"),
                build_hiring_trace("App02", with_approval=False),
                build_hiring_trace("App03", position_type="existing"),
            ],
        )

    @pytest.fixture
    def evaluator(self, store, hiring_xom, hiring_vocabulary):
        return ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)

    def test_check_memoizes_until_trace_changes(self, evaluator, tool):
        control = tool.control("gm-approval")
        materializer = evaluator.materializer
        first = evaluator.check_trace(control, "App02")
        assert first.status is ComplianceStatus.VIOLATED
        assert materializer.refreshes == 1
        assert evaluator.check_trace(control, "App02") is first
        assert materializer.refreshes == 1  # clean pair: table read

        graph = build_hiring_trace("App02")  # approval arrives late
        evaluator.store.append(graph.node("App02-D2"))
        assert "App02" in materializer.dirty_traces()
        rechecked = evaluator.check_trace(control, "App02")
        assert materializer.refreshes == 2  # dirty pair re-evaluated
        # Unlinked approval record: still violated, fresh verdict object.
        assert rechecked.status is ComplianceStatus.VIOLATED
        assert rechecked is not first

    def test_append_dirties_only_touched_trace(self, evaluator, tool):
        controls = tool.deployed_controls()
        evaluator.run(controls)
        materializer = evaluator.materializer
        assert materializer.dirty_count == 0
        template = evaluator.store.get("App03-D3")
        evaluator.store.append(
            dataclasses.replace(
                template, record_id=f"{template.record_id}-clone"
            )
        )
        assert sorted(materializer.dirty_traces()) == ["App03"]
        assert materializer.dirty_count == len(controls)
        before = materializer.refreshes
        evaluator.run(controls)
        assert materializer.refreshes == before + len(controls)

    def test_transitions_report_status_flips(self, evaluator, tool):
        control = tool.control("gm-approval")
        transitions = []
        evaluator.materializer.subscribe(transitions.append)
        evaluator.check_trace(control, "App02")
        assert [t.changed for t in transitions] == [True]
        assert transitions[0].previous is None
        assert "(new) -> violated" in transitions[0].describe()

        graph = build_hiring_trace("App02")
        evaluator.store.append(graph.node("App02-D2"))
        evaluator.store.append(
            next(e for e in graph.edges() if e.record_id == "App02-E4")
        )
        healed = evaluator.check_trace(control, "App02")
        assert healed.status is ComplianceStatus.SATISFIED
        assert transitions[-1].previous is ComplianceStatus.VIOLATED
        assert transitions[-1].changed
        assert (
            transitions[-1].describe()
            == "gm-approval @ App02: violated -> satisfied"
        )

    def test_unregister_keeps_verdicts_skips_refresh(self, evaluator, tool):
        controls = tool.deployed_controls()
        materializer = evaluator.materializer
        results = evaluator.run(controls)
        materializer.unregister("gm-approval")
        assert materializer.latest("gm-approval", "App01") is not None
        template = evaluator.store.get("App01-D1")
        evaluator.store.append(
            dataclasses.replace(template, record_id="App01-D1-clone")
        )
        refreshed = materializer.refresh()
        # Only the still-registered control re-evaluated.
        assert [r.control_name for r in refreshed] == ["has-submitter"]
        assert len(results) == 6

    def test_sweep_matches_plain_evaluator_order(
        self, store, hiring_xom, hiring_vocabulary, tool
    ):
        controls = tool.deployed_controls()
        incremental = ComplianceEvaluator(store, hiring_xom,
                                          hiring_vocabulary)
        cold = ComplianceEvaluator(
            store, hiring_xom, hiring_vocabulary, share_contexts=False
        )
        assert norm(incremental.run(controls)) == norm(cold.run(controls))
        # Second sweep: zero evaluations, same table.
        before = incremental.materializer.refreshes
        assert norm(incremental.run(controls)) == norm(cold.run(controls))
        assert incremental.materializer.refreshes == before

    def test_snapshot_restores_within_process(
        self, store, hiring_xom, hiring_vocabulary, tool
    ):
        controls = tool.deployed_controls()
        first = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        expected = norm(first.run(controls))
        first.materializer.save()

        second = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        for control in controls:
            second.materializer.register(control)
        assert second.materializer.restore() is True
        assert second.materializer.dirty_count == 0
        got = second.run(controls)
        assert norm(got) == expected
        assert second.materializer.refreshes == 0

    def test_restore_missing_snapshot_is_false(
        self, evaluator, tool
    ):
        materializer = evaluator.materializer
        materializer.register(tool.control("gm-approval"))
        assert materializer.restore() is False

    def test_fingerprint_depends_on_control_set(self, evaluator, tool):
        materializer = evaluator.materializer
        materializer.register(tool.control("gm-approval"))
        one = materializer.fingerprint()
        materializer.register(tool.control("has-submitter"))
        assert materializer.fingerprint() != one


class TestForkFallback:
    def test_jobs_without_fork_warns_and_runs_serial(
        self, hiring_model, hiring_xom, hiring_vocabulary, tool, monkeypatch
    ):
        store = populate_store(
            hiring_model,
            [build_hiring_trace("App01"),
             build_hiring_trace("App02", with_approval=False)],
        )
        controls = tool.deployed_controls()
        reference = ComplianceEvaluator(
            store, hiring_xom, hiring_vocabulary, share_contexts=False
        ).run(controls)
        monkeypatch.delattr(os, "fork")
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        with pytest.warns(RuntimeWarning, match="os.fork is unavailable"):
            results = evaluator.run(controls, jobs=2)
        assert norm(results) == norm(reference)


# ---------------------------------------------------------------------------
# Deployed path rides the same table
# ---------------------------------------------------------------------------


class TestDeployedPath:
    def test_deployment_and_sweep_share_verdicts(
        self, hiring_model, hiring_xom, hiring_vocabulary, tool
    ):
        store = populate_store(
            hiring_model,
            [build_hiring_trace("App01"),
             build_hiring_trace("App02", with_approval=False)],
        )
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary,
                                       bind_results=False)
        deployment.deploy(tool.control("gm-approval"))
        after_deploy = deployment.rechecks
        assert after_deploy == 2  # one per existing trace
        # A batch sweep through the deployment's evaluator reads the same
        # table: nothing re-evaluates.
        results = deployment.evaluator.run([tool.control("gm-approval")])
        assert deployment.rechecks == after_deploy
        statuses = {r.trace_id: r.status for r in results}
        assert statuses == {
            "App01": ComplianceStatus.SATISFIED,
            "App02": ComplianceStatus.VIOLATED,
        }

    def test_dashboard_consumes_transitions(
        self, hiring_model, hiring_xom, hiring_vocabulary, tool
    ):
        store = populate_store(
            hiring_model,
            [build_hiring_trace("App02", with_approval=False)],
        )
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary,
                                       bind_results=False)
        dashboard = ComplianceDashboard()
        dashboard.register_control(tool.control("gm-approval"))
        deployment.materializer.subscribe(dashboard.on_transition)
        deployment.deploy(tool.control("gm-approval"))
        assert dashboard.kpi("gm-approval").violated == 1

        graph = build_hiring_trace("App02")  # approval + list arrive late
        store.append(graph.node("App02-D2"))
        store.append(
            next(e for e in graph.edges() if e.record_id == "App02-E4")
        )
        assert dashboard.kpi("gm-approval").violated == 0
        assert dashboard.kpi("gm-approval").satisfied == 1
        flips = dashboard.transitions()
        assert [t.describe() for t in flips] == [
            "gm-approval @ App02: (new) -> violated",
            "gm-approval @ App02: violated -> satisfied",
        ]
        assert "STATUS TRANSITIONS (2)" in dashboard.render()


# ---------------------------------------------------------------------------
# Differential identity over randomized interleavings
# ---------------------------------------------------------------------------


def _variant(rng, app_id):
    kind = rng.randrange(5)
    if kind == 0:
        return build_hiring_trace(app_id)
    if kind == 1:
        return build_hiring_trace(app_id, with_approval=False)
    if kind == 2:
        return build_hiring_trace(app_id, position_type="existing")
    if kind == 3:
        return build_hiring_trace(app_id, with_candidates=False)
    return build_hiring_trace(app_id, approval_status="denied")


def _interleave(rng, streams):
    """Merge per-trace record streams in a random (order-preserving) way."""
    pending = [list(s) for s in streams]
    while True:
        candidates = [i for i, s in enumerate(pending) if s]
        if not candidates:
            return
        yield pending[rng.choice(candidates)].pop(0)


class TestDifferentialIdentity:
    def test_200_interleavings_match_cold_sweeps(
        self, hiring_model, hiring_xom, hiring_vocabulary, tool
    ):
        controls = tool.deployed_controls()
        for iteration in range(200):
            rng = derive_rng(f"incremental-interleavings:{iteration}")
            store = ProvenanceStore(model=hiring_model, indexed=True)
            live = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
            cold = ComplianceEvaluator(
                store, hiring_xom, hiring_vocabulary, share_contexts=False
            )  # stateless: every call is a cold evaluation
            n_traces = rng.randrange(2, 5)
            streams = [
                trace_stream(_variant(rng, f"App{i:02d}"))
                for i in range(1, n_traces + 1)
            ]
            for record in _interleave(rng, streams):
                store.append(record)
                roll = rng.random()
                if roll < 0.06:
                    assert norm(live.run(controls)) == \
                        norm(cold.run(controls)), f"iteration {iteration}"
                elif roll < 0.12:
                    trace_id = rng.choice(store.app_ids())
                    control = rng.choice(controls)
                    assert norm([live.check_trace(control, trace_id)]) == \
                        norm([cold.check_trace(control, trace_id)]), \
                        f"iteration {iteration}"
            assert norm(live.run(controls)) == norm(cold.run(controls)), \
                f"iteration {iteration} (final)"

    def test_sqlite_reopen_interleavings_match_cold_sweeps(
        self, tmp_path, hiring_model, hiring_xom, hiring_vocabulary, tool
    ):
        controls = tool.deployed_controls()
        for iteration in range(24):
            rng = derive_rng(f"sqlite-reopen-interleavings:{iteration}")
            path = str(tmp_path / f"diff{iteration}.db")

            # Phase 1: populate, sweep, snapshot, close.
            store = ProvenanceStore(
                model=hiring_model, indexed=True,
                backend=SQLiteBackend(path),
            )
            first = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
            streams = [
                trace_stream(_variant(rng, f"App{i:02d}"))
                for i in range(1, rng.randrange(3, 5))
            ]
            for record in _interleave(rng, streams):
                store.append(record)
                if rng.random() < 0.05:
                    first.run(controls)
            first.run(controls)
            first.materializer.save()
            store.close()

            # Out-of-band: a second handle appends while we're away.
            other = ProvenanceStore(backend=SQLiteBackend(path))
            extra = trace_stream(_variant(rng, "App99"))
            for record in extra[: rng.randrange(1, len(extra) + 1)]:
                other.append(record)
            other.close()

            # Phase 2: reopen, restore, catch up — identical to cold.
            reopened = ProvenanceStore(
                model=hiring_model, indexed=True,
                backend=SQLiteBackend(path),
            )
            second = ComplianceEvaluator(
                reopened, hiring_xom, hiring_vocabulary
            )
            for control in controls:
                second.materializer.register(control)
            assert second.materializer.restore() is True
            # Catch-up re-evaluates only the out-of-band trace.
            assert set(
                t for __, t in second.materializer._dirty
            ) == {"App99"}
            got = second.run(controls)
            cold = ComplianceEvaluator(
                reopened, hiring_xom, hiring_vocabulary,
                share_contexts=False,
            )
            assert norm(got) == norm(cold.run(controls)), \
                f"iteration {iteration}"
            assert second.materializer.refreshes == len(controls)
            reopened.close()
