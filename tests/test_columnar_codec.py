"""Differential fuzz suite for the columnar row representation.

The ``cols`` payload and the SQL predicate push-down are fast paths over
the Table-I XML, never a second source of truth — so every assertion here
is differential: whatever the columnar path produces must equal what the
pure ElementTree decode-then-filter oracle produces, record for record,
across every backend kind (memory, sqlite, sharded, fault-proxied) and
across databases written before the columnar schema existed.
"""

import random
import sqlite3

import pytest

from repro.errors import BackendError, CodecError
from repro.model.builder import ModelBuilder
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    TaskRecord,
)
from repro.store.columnar import ColumnarCodec, compile_query
from repro.store.backends.sqlite import SQLiteBackend
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore
from repro.store.xmlcodec import StoredRow, XmlCodec, decode_row

from tests.test_store_backends import (
    BACKEND_PARAMS,
    MULTI_SHARD_KINDS,
    make_backend,
)

#: the v1 (pre-columnar) SQLite schema, verbatim — used to fabricate
#: legacy database files for the migration tests.
V1_SCHEMA = """
CREATE TABLE provenance (
    id    TEXT PRIMARY KEY,
    class TEXT NOT NULL,
    appid TEXT NOT NULL,
    xml   TEXT NOT NULL
);
CREATE INDEX idx_provenance_class ON provenance(class);
CREATE INDEX idx_provenance_appid ON provenance(appid);
CREATE TABLE aux_state (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
"""


def fuzz_model():
    return (
        ModelBuilder("colfuzz")
        .data(
            "jobrequisition",
            "Job Requisition",
            reqid=str,
            type=str,
            headcount=int,
            budget=float,
            urgent=bool,
        )
        .task("approval", "Approval", approver=str, level=int)
        .relation("approvalOf", RecordClass.TASK, RecordClass.DATA)
        .build()
    )


# Deliberately hostile strings: XML-escaped characters, unicode, empty,
# and wire-unstable shapes (padding, tabs) that must force the row back
# onto the XML path without changing any query answer.
_STRINGS = (
    "new",
    "replacement",
    "",
    "naïve café ☕",
    "a&b<c>\"d'",
    " padded ",
    "tab\tseparated",
    "multi\nline",
    "x" * 64,
)

_INTS = (0, 1, 7, -3, 41, 2**63 - 1, -(2**63), 2**63)
_FLOATS = (0.0, 1.5, -2.25, 1e300, 0.1)
_TIMESTAMPS = (0, 1, 50, 1700000000, 2**62)


def fuzz_records(app_id, rng):
    records = []
    for i in range(rng.randrange(4, 10)):
        ts = rng.choice(_TIMESTAMPS)
        shape = rng.random()
        if shape < 0.5:
            attrs = {
                "reqid": f"Req-{app_id}-{i}",
                "type": rng.choice(("new", "replacement")),
                "headcount": rng.choice(_INTS),
                "budget": rng.choice(_FLOATS),
                "urgent": rng.random() < 0.5,
            }
            if rng.random() < 0.4:
                # Undeclared attribute: decodes as a raw wire string.
                attrs["note"] = rng.choice(_STRINGS)
            records.append(
                DataRecord.create(
                    f"D{i}-{app_id}", app_id, "jobrequisition",
                    timestamp=ts, attributes=attrs,
                )
            )
        elif shape < 0.8:
            records.append(
                TaskRecord.create(
                    f"T{i}-{app_id}", app_id, "approval", timestamp=ts,
                    attributes={
                        "approver": rng.choice(_STRINGS),
                        "level": rng.randrange(-5, 5),
                    },
                )
            )
        else:
            records.append(
                RelationRecord.create(
                    f"R{i}-{app_id}", app_id, "approvalOf",
                    source_id=f"T0-{app_id}", target_id=f"D0-{app_id}",
                    timestamp=ts,
                )
            )
    return records


def query_bank(app_id):
    """Queries covering every push-down clause shape plus residual cases."""
    jr = RecordQuery(entity_type="jobrequisition")
    return [
        RecordQuery(),
        RecordQuery(record_class=RecordClass.DATA),
        RecordQuery(record_class=RecordClass.RELATION),
        RecordQuery(app_id=app_id),
        RecordQuery(app_id=app_id, entity_type="jobrequisition"),
        jr.where("type", "==", "new"),
        jr.where("type", "!=", "new"),
        jr.where("headcount", ">", 0),
        jr.where("headcount", "<=", 7),
        jr.where("headcount", "==", 2**63 - 1),
        jr.where("budget", ">=", 0.0),
        jr.where("budget", "<", 1.0),
        jr.where("urgent", "==", True),
        jr.where("urgent", "!=", False),
        jr.where("note", "exists"),
        jr.where("note", "absent"),
        jr.where("note", "==", " padded "),
        jr.where("headcount", "==", "7"),  # cross-type: matches nothing
        jr.where("headcount", ">", 1.5),  # int column, float bound
        RecordQuery(entity_type="approval").where("level", "<", 2),
        RecordQuery(app_id=app_id, since=1, until=1700000000),
        RecordQuery(since=2**62),
    ]


def populate(store, app_ids, seed=20260808):
    rng = random.Random(seed)
    for app_id in app_ids:
        for record in fuzz_records(app_id, rng):
            store.append(record)
    store.flush()


class TestDifferentialQueries:
    """select() == pure-ET decode-then-filter, on every backend kind."""

    @pytest.mark.parametrize("kind", BACKEND_PARAMS)
    def test_pushdown_matches_full_scan(self, kind, tmp_path):
        """Push-down must be invisible next to the backend's own scan.

        The universe comes from an unconstrained select — which never
        pushes down — so any divergence the compiled WHERE clauses
        introduce (type coercion, collation, NULL handling) shows up as
        a record-level mismatch.
        """
        model = fuzz_model()
        store = ProvenanceStore(
            model=model,
            indexed_attributes={"reqid"},
            backend=make_backend(kind, tmp_path),
        )
        app_ids = [f"App{i:02d}" for i in range(6)]
        populate(store, app_ids)
        universe = store.select(RecordQuery())
        for query in query_bank(app_ids[0]):
            expected = [r for r in universe if query.matches(r)]
            actual = store.select(query)
            if kind in MULTI_SHARD_KINDS:
                by_id = lambda r: r.record_id  # noqa: E731
                assert sorted(actual, key=by_id) == sorted(
                    expected, key=by_id
                )
            else:
                assert actual == expected
        store.close()

    def test_cold_reopen_matches_xml_oracle(self, tmp_path):
        """On a cold store every answer must equal pure ET decode-then-filter.

        A reopened database has no append-time record cache, so each row
        is materialized from its columnar payload (or its XML when the
        payload was refused) — and both must reproduce the ElementTree
        oracle exactly.
        """
        model = fuzz_model()
        path = str(tmp_path / "u.db")
        store = ProvenanceStore(
            model=model, indexed=False, backend=SQLiteBackend(path)
        )
        populate(store, ["U1", "U2"])
        store.close()
        backend = SQLiteBackend(path)
        reopened = ProvenanceStore(model=model, indexed=False, backend=backend)
        oracle = [decode_row(row, model) for row in reopened.rows()]
        for query in query_bank("U1"):
            assert reopened.select(query) == [
                r for r in oracle if query.matches(r)
            ]
        assert backend.pushdown_queries > 0
        reopened.close()


class TestCodecRoundTrip:
    def test_cols_roundtrip_equals_et_decode(self):
        model = fuzz_model()
        codec = ColumnarCodec(model)
        xml_codec = XmlCodec(model)
        rng = random.Random(7)
        encoded = 0
        for app_id in ("A1", "A2", "A3"):
            for record in fuzz_records(app_id, rng):
                row = xml_codec.encode_row(record)
                cols = codec.encode_cols(row, record, verify_xml=True)
                if cols is None:
                    continue
                encoded += 1
                assert codec.decode_cols(row, cols) == decode_row(row, model)
        assert encoded > 0 and codec.encoded == encoded

    def test_encode_refuses_divergent_rows(self):
        model = fuzz_model()
        codec = ColumnarCodec(model)
        xml_codec = XmlCodec(model)
        # Wire-unstable attribute value: XML decode strips the padding,
        # the columnar copy would not.
        padded = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"note": " padded "}
        )
        assert codec.encode_cols(xml_codec.encode_row(padded), padded) is None
        # Out-of-int64 integers round to REAL under json_extract.
        huge = DataRecord.create(
            "D2", "App01", "jobrequisition", attributes={"headcount": 2**63}
        )
        assert codec.encode_cols(xml_codec.encode_row(huge), huge) is None

    def test_verify_xml_refuses_non_canonical_rows(self):
        model = fuzz_model()
        codec = ColumnarCodec(model)
        record = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"reqid": "R1"}
        )
        row = XmlCodec(model).encode_row(record)
        tampered = StoredRow(
            record_id=row.record_id,
            record_class=row.record_class,
            app_id=row.app_id,
            xml=row.xml + " ",
        )
        assert codec.encode_cols(tampered, record, verify_xml=True) is None
        assert codec.encode_cols(row, record, verify_xml=True) is not None

    def test_stale_crc_rejects_payload(self):
        model = fuzz_model()
        codec = ColumnarCodec(model)
        record = DataRecord.create(
            "D1", "App01", "jobrequisition", attributes={"reqid": "R1"}
        )
        row = XmlCodec(model).encode_row(record)
        cols = codec.encode_cols(row, record)
        edited = StoredRow(
            record_id=row.record_id,
            record_class=row.record_class,
            app_id=row.app_id,
            xml=row.xml.replace("R1", "R2"),
        )
        assert codec.decode_cols(row, cols) == record
        assert codec.decode_cols(edited, cols) is None
        assert codec.cols_rejects == 1


class TestCompiledQueryShapes:
    def test_pushed_and_residual_counting(self):
        query = RecordQuery(
            record_class=RecordClass.DATA,
            app_id="App01",
            entity_type="jobrequisition",
        ).where("headcount", ">", 3).where("weird-name", "==", "x")
        compiled = compile_query(query)
        assert compiled.pushed == 1  # headcount
        assert compiled.residual == 1  # weird-name is not a safe JSON path
        assert compiled.physical == ("class = ?", "appid = ?")
        sql, params = compiled.where_clause(include_null_branch=True)
        assert "cols IS NULL OR" in sql
        assert params[-1] == 3
        sql_tight, __ = compiled.where_clause(include_null_branch=False)
        assert "cols IS NULL" not in sql_tight

    def test_empty_query_has_no_constraints(self):
        compiled = compile_query(RecordQuery())
        assert not compiled.has_constraints
        assert compile_query(
            RecordQuery(app_id="App01")
        ).has_constraints


class TestMigration:
    """Pre-columnar database files open, upgrade, and answer identically."""

    def _legacy_db(self, tmp_path, model, app_ids):
        """A v1-schema database holding fuzz rows, built with raw SQL."""
        source = ProvenanceStore(model=model, backend=SQLiteBackend())
        populate(source, app_ids, seed=99)
        rows = [
            (r.record_id, r.record_class.value, r.app_id, r.xml)
            for r in source.rows()
        ]
        source.close()
        path = str(tmp_path / "legacy.db")
        conn = sqlite3.connect(path)
        conn.executescript(V1_SCHEMA)
        conn.executemany(
            "INSERT INTO provenance (id, class, appid, xml) "
            "VALUES (?, ?, ?, ?)",
            rows,
        )
        conn.commit()
        conn.close()
        return path

    def test_v1_file_backfills_and_matches_oracle(self, tmp_path):
        model = fuzz_model()
        path = self._legacy_db(tmp_path, model, ["M1", "M2", "M3"])
        backend = SQLiteBackend(path)
        store = ProvenanceStore(model=model, backend=backend)
        assert backend.migrated_cols > 0
        with_cols, total = backend.columnar_coverage()
        assert total == len(store)
        assert 0 < with_cols <= total
        oracle = [decode_row(row, model) for row in store.rows()]
        for query in query_bank("M1"):
            assert store.select(query) == [
                r for r in oracle if query.matches(r)
            ]
        assert backend.pushdown_queries > 0
        store.close()

        # The backfill is bounded by a cursor marker: reopening the
        # now-migrated file rescans nothing.
        backend_again = SQLiteBackend(path)
        again = ProvenanceStore(model=model, backend=backend_again)
        assert backend_again.migrated_cols == 0
        again.close()

    def test_verbatim_reload_writes_payloads(self, tmp_path):
        model = fuzz_model()
        dump = str(tmp_path / "dump.jsonl")
        source = ProvenanceStore(model=model, backend=SQLiteBackend())
        populate(source, ["V1", "V2"])
        source.dump(dump)
        source.close()
        backend = SQLiteBackend(str(tmp_path / "reloaded.db"))
        loaded = ProvenanceStore.load(dump, model=model, backend=backend)
        with_cols, total = backend.columnar_coverage()
        assert total == len(loaded) and with_cols > 0
        oracle = [decode_row(row, model) for row in loaded.rows()]
        for query in query_bank("V1"):
            assert loaded.select(query) == [
                r for r in oracle if query.matches(r)
            ]
        loaded.close()


class TestTamperConfinement:
    def test_tampered_xml_still_raises_and_stays_confined(self, tmp_path):
        model = fuzz_model()
        path = str(tmp_path / "t.db")
        store = ProvenanceStore(model=model, backend=SQLiteBackend(path))
        for app_id in ("Good", "Evil"):
            store.append(
                DataRecord.create(
                    f"D-{app_id}", app_id, "jobrequisition",
                    attributes={"reqid": f"R-{app_id}", "type": "new"},
                )
            )
        store.close()
        # At-rest corruption: truncate one trace's XML, leaving the (now
        # stale) columnar payload in place.
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE provenance SET xml = substr(xml, 1, 30) "
            "WHERE appid = 'Evil'"
        )
        conn.commit()
        conn.close()
        reopened = ProvenanceStore(
            model=model, indexed=False, backend=SQLiteBackend(path)
        )
        # The stale payload must not mask the tampering: the CRC check
        # sends the row to the XML decoder, which reports it as always.
        with pytest.raises(CodecError):
            reopened.select(RecordQuery(app_id="Evil"))
        # ...and the damage stays confined to the tampered trace.
        good = reopened.select(RecordQuery(app_id="Good"))
        assert [r.record_id for r in good] == ["D-Good"]
        reopened.close()


class TestCacheConfiguration:
    def test_env_overrides_default_cache_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE_CACHE", "17")
        backend = SQLiteBackend()
        assert backend.cache_size == 17
        backend.close()

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE_CACHE", "17")
        backend = SQLiteBackend(cache_size=5)
        assert backend.cache_size == 5
        backend.close()

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE_CACHE", "lots")
        with pytest.raises(BackendError):
            SQLiteBackend()

    def test_cache_and_pushdown_counters(self, tmp_path):
        model = fuzz_model()
        path = str(tmp_path / "c.db")
        store = ProvenanceStore(model=model, backend=SQLiteBackend(path))
        store.append(
            DataRecord.create(
                "D1", "App01", "jobrequisition",
                attributes={"reqid": "R1", "type": "new"},
            )
        )
        store.close()
        backend = SQLiteBackend(path)
        reopened = ProvenanceStore(model=model, backend=backend)
        hits_before = backend.cache_hits
        reopened.get("D1")  # cold: decoded and cached
        reopened.get("D1")  # hot
        assert backend.cache_misses >= 1
        assert backend.cache_hits > hits_before
        assert backend.pushdown_queries == 0
        reopened.select(RecordQuery(entity_type="jobrequisition"))
        assert backend.pushdown_queries == 1
        reopened.close()


class TestProjectedSweeps:
    def test_projected_sweep_matches_memory_verdicts(self, tmp_path):
        from repro.controls.evaluator import ComplianceEvaluator
        from repro.processes import hiring
        from repro.processes.violations import ViolationPlan

        workload = hiring.workload()
        plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.3)
        memory_sim = workload.simulate(cases=8, seed=11, violations=plan)
        sqlite_sim = workload.simulate(
            cases=8, seed=11, violations=plan,
            backend=SQLiteBackend(str(tmp_path / "w.db")),
        )
        expected = ComplianceEvaluator(
            memory_sim.store, memory_sim.xom, memory_sim.vocabulary
        ).run(memory_sim.controls)
        evaluator = ComplianceEvaluator(
            sqlite_sim.store, sqlite_sim.xom, sqlite_sim.vocabulary
        )
        actual = evaluator.run(sqlite_sim.controls)
        assert [
            (r.control_name, r.trace_id, r.status) for r in expected
        ] == [(r.control_name, r.trace_id, r.status) for r in actual]
        # The sqlite sweep actually ran projected (hiring's controls have
        # bounded attribute read sets), and re-running with projection
        # off is byte-identical.
        assert evaluator.projected_sweeps >= 1
        full = ComplianceEvaluator(
            sqlite_sim.store, sqlite_sim.xom, sqlite_sim.vocabulary
        )
        full.projection_mode = "never"
        baseline = full.run(sqlite_sim.controls)
        assert [
            (r.control_name, r.trace_id, r.status) for r in baseline
        ] == [(r.control_name, r.trace_id, r.status) for r in actual]
        assert full.projected_sweeps == 0
        sqlite_sim.store.close()
