"""Unit tests for the workload harness (repro.processes.workload)."""

import pytest

from repro.controls.status import ComplianceStatus
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import VisibilityPolicy
from repro.processes.workload import ControlSpec, Workload


@pytest.fixture
def workload():
    return hiring.workload()


class TestSimulate:
    def test_zero_cases_builds_vocabulary_stack_only(self, workload):
        sim = workload.simulate(cases=0)
        assert len(sim.runs) == 0
        assert len(sim.store) == 0
        assert sim.vocabulary.has_concept("Job Requisition")
        assert len(sim.controls) == 3
        assert sim.tool.deployed_controls() == sim.controls

    def test_controls_are_deployed_in_repository(self, workload):
        sim = workload.simulate(cases=0)
        names = {a.name for a in sim.tool.repository.all_deployed()}
        assert names == {"gm-approval", "sod-approval", "submitter-known"}

    def test_event_accounting(self, workload):
        sim = workload.simulate(cases=10, seed=1)
        assert sim.dropped_events == 0
        assert sim.visible_events > 0

    def test_visibility_reduces_visible_events(self, workload):
        full = workload.simulate(cases=10, seed=1)
        partial = workload.simulate(
            cases=10, seed=1,
            visibility=VisibilityPolicy.uniform(0.5, seed=2),
        )
        assert partial.visible_events < full.visible_events
        assert (
            partial.visible_events + partial.dropped_events
            == full.visible_events
        )

    def test_observable_types_only_with_visibility(self, workload):
        assert workload.simulate(cases=0).observable_types is None
        sim = workload.simulate(
            cases=0, visibility=VisibilityPolicy.uniform(1.0)
        )
        assert sim.observable_types is not None
        assert "jobrequisition" in sim.observable_types

    def test_store_respects_index_and_cache_knobs(self, workload):
        sim = workload.simulate(
            cases=2, indexed=False, cache_vocabulary=False
        )
        assert sim.store._index is None
        assert not sim.vocabulary.cache_enabled

    def test_ground_truth_table_shape(self, workload):
        plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.5)
        sim = workload.simulate(cases=6, seed=2, violations=plan)
        truth = sim.ground_truth_for(workload.ground_truth)
        assert set(truth) == {run.app_id for run in sim.runs}
        for statuses in truth.values():
            assert set(statuses) == {c.name for c in sim.controls}
            assert all(
                isinstance(v, ComplianceStatus) for v in statuses.values()
            )


class TestCustomWorkloadAssembly:
    def test_control_spec_defaults(self):
        spec = ControlSpec(name="x", text="if 1 is 1 then "
                           "the internal control is satisfied")
        assert spec.severity.value == "medium"
        assert spec.description == ""

    def test_workload_with_subset_of_controls(self, workload):
        reduced = Workload(
            name="hiring-min",
            build_model=workload.build_model,
            build_spec=workload.build_spec,
            case_factory=workload.case_factory,
            build_mapping=workload.build_mapping,
            correlation_rules=workload.correlation_rules,
            control_specs=workload.control_specs[:1],
            ground_truth=workload.ground_truth,
        )
        sim = reduced.simulate(cases=3)
        assert [c.name for c in sim.controls] == ["gm-approval"]

    def test_invalid_control_text_fails_at_simulate(self, workload):
        from repro.errors import BalCompileError

        broken = Workload(
            name="broken",
            build_model=workload.build_model,
            build_spec=workload.build_spec,
            case_factory=workload.case_factory,
            build_mapping=workload.build_mapping,
            correlation_rules=workload.correlation_rules,
            control_specs=(
                ControlSpec(
                    name="bad",
                    text="definitions set 'x' to an Invoice ; "
                    "if 'x' is null then the internal control is satisfied",
                ),
            ),
            ground_truth=workload.ground_truth,
        )
        with pytest.raises(BalCompileError):
            broken.simulate(cases=1)
