"""Crash-consistency: the fault-injection harness and the model checker.

Two layers:

- **Targeted schedules** pin each fault primitive deterministically — torn
  flushes commit a clean prefix, crash points kill the right operation,
  dropped fsyncs lose post-freeze commits, snapshots never outrun the rows
  they describe, and a :class:`SimulatedCrash` cannot be swallowed by
  library ``except Exception`` recovery paths.
- **The model checker** (``repro.faults.checker``) runs randomized
  append/evaluate/snapshot/crash/reopen schedules against a never-crashed
  oracle.  ``REPRO_CRASH_SCHEDULES`` scales the count (default 50 per
  backend; CI runs a smaller smoke); every failure message carries the
  replay seed.
"""

import json
import os

import pytest

from repro.controls.evaluator import ComplianceEvaluator
from repro.errors import StoreError
from repro.faults import (
    FaultPlan,
    FaultyBackend,
    SimulatedCrash,
    active_plan,
    run_schedule,
    run_schedules,
)
from repro.faults.plan import FaultInjected
from repro.processes import hiring
from repro.store.backends import MemoryBackend, SQLiteBackend
from repro.store.store import ProvenanceStore

from tests.conftest import derive_seed

CRASH_SCHEDULES = int(os.environ.get("REPRO_CRASH_SCHEDULES", "50"))


@pytest.fixture(scope="module")
def sim():
    """One simulated hiring run shared by the targeted tests."""
    return hiring.workload().simulate(cases=2, seed=29)


def _records(sim):
    return [r for rs in sim.store.records_by_trace().values() for r in rs]


def _faulty_store(sim, plan, tmp_path=None):
    inner = (
        SQLiteBackend(str(tmp_path / "crash.db"))
        if tmp_path is not None
        else MemoryBackend()
    )
    faulty = FaultyBackend(inner, plan)
    return faulty, ProvenanceStore(model=sim.model, backend=faulty)


class TestFaultPrimitives:
    def test_transient_write_failure_is_loud_and_recoverable(self, sim):
        plan = FaultPlan(seed=1).fail_write(nth=2)
        __, store = _faulty_store(sim, plan)
        records = _records(sim)
        store.append(records[0])
        with pytest.raises(FaultInjected):
            store.append(records[1])
        # The failed row is simply absent; the store keeps working.
        store.append(records[2])
        assert records[1].record_id not in store
        assert records[2].record_id in store
        assert "fail-write#2" in plan.describe()

    def test_torn_flush_commits_clean_prefix(self, sim, tmp_path):
        plan = FaultPlan(seed=1).tear_flush(nth=1, keep=2)
        faulty, store = _faulty_store(sim, plan, tmp_path)
        records = _records(sim)
        for record in records[:5]:
            store.append(record)
        with pytest.raises(SimulatedCrash):
            store.flush()
        recovered = ProvenanceStore(model=sim.model, backend=faulty.recover())
        assert [r.record_id for r in recovered.rows()] == [
            r.record_id for r in records[:2]
        ]

    def test_crash_before_commit_loses_the_row(self, sim):
        plan = FaultPlan(seed=1).crash_at("before_commit", occurrence=3)
        faulty, store = _faulty_store(sim, plan)
        records = _records(sim)
        with active_plan(plan):
            store.append(records[0])
            store.append(records[1])
            store.flush()
            with pytest.raises(SimulatedCrash):
                store.append(records[2])
        recovered = ProvenanceStore(model=sim.model, backend=faulty.recover())
        assert len(recovered) == 2

    def test_staged_rows_die_with_the_process(self, sim):
        plan = FaultPlan(seed=1)
        faulty, store = _faulty_store(sim, plan)
        records = _records(sim)
        store.append(records[0])
        store.flush()
        store.append(records[1])  # staged, never flushed
        assert faulty.staged_count() == 1
        faulty.crash()
        recovered = ProvenanceStore(model=sim.model, backend=faulty.recover())
        assert [r.record_id for r in recovered.rows()] == [
            records[0].record_id
        ]

    def test_post_crash_unwinding_cannot_write(self, sim):
        """Code unwinding after a SimulatedCrash (``finally`` blocks,
        bulk exits) is post-mortem; nothing it does may become durable."""
        plan = FaultPlan(seed=1).crash_at(
            "after_commit_before_index", occurrence=2
        )
        faulty, store = _faulty_store(sim, plan)
        records = _records(sim)
        with active_plan(plan):
            with pytest.raises(SimulatedCrash):
                with store.bulk():  # exit path flushes — but we are dead
                    for record in records[:4]:
                        store.append(record)
        recovered = ProvenanceStore(model=sim.model, backend=faulty.recover())
        assert len(recovered) == 0

    def test_dropped_fsync_loses_post_freeze_commits(self, sim, tmp_path):
        plan = FaultPlan(seed=1).drop_fsync_after(nth_flush=1)
        faulty, store = _faulty_store(sim, plan, tmp_path)
        records = _records(sim)
        for record in records[:3]:
            store.append(record)
        store.flush()  # flush #1: freezes the durable image at 3 rows
        for record in records[3:6]:
            store.append(record)
        store.flush()  # committed to the live file, lost at crash time
        assert faulty.durable_floor() == 3
        faulty.crash()
        recovered = ProvenanceStore(model=sim.model, backend=faulty.recover())
        assert [r.record_id for r in recovered.rows()] == [
            r.record_id for r in records[:3]
        ]

    def test_corrupted_row_is_detected_on_recovery(self, sim, tmp_path):
        plan = FaultPlan(seed=1).corrupt_write(nth=2)
        faulty, store = _faulty_store(sim, plan, tmp_path)
        for record in _records(sim)[:3]:
            store.append(record)
        store.flush()
        faulty.crash()
        with pytest.raises(StoreError):
            ProvenanceStore(model=sim.model, backend=faulty.recover())


class TestSnapshotDurability:
    def test_snapshot_save_flushes_rows_first(self, sim, tmp_path):
        """Write-ahead ordering: a snapshot's cursor must never describe
        rows that are less durable than the snapshot itself."""
        plan = FaultPlan(seed=1)
        faulty, store = _faulty_store(sim, plan, tmp_path)
        evaluator = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
        for record in _records(sim):
            store.append(record)  # staged only — no explicit flush
        evaluator.run(sim.controls)
        evaluator.materializer.save()
        # Power cut immediately after the snapshot commits.
        faulty.crash()
        recovered = ProvenanceStore(model=sim.model, backend=faulty.recover())
        restored_eval = ComplianceEvaluator(
            recovered, sim.xom, sim.vocabulary
        )
        for control in sim.controls:
            restored_eval.materializer.register(control)
        assert restored_eval.materializer.restore() is True
        assert restored_eval.materializer.cursor <= recovered.last_seq()

    def test_crash_mid_snapshot_leaves_previous_snapshot(self, sim, tmp_path):
        plan = FaultPlan(seed=1).crash_at("mid_snapshot", occurrence=2)
        faulty, store = _faulty_store(sim, plan, tmp_path)
        evaluator = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
        records = _records(sim)
        with active_plan(plan):
            for record in records:
                store.append(record)
            evaluator.run(sim.controls)
            evaluator.materializer.save()  # snapshot #1 commits
            with pytest.raises(SimulatedCrash):
                evaluator.materializer.save()  # snapshot #2 dies mid-way
        recovered = ProvenanceStore(model=sim.model, backend=faulty.recover())
        restored_eval = ComplianceEvaluator(
            recovered, sim.xom, sim.vocabulary
        )
        for control in sim.controls:
            restored_eval.materializer.register(control)
        assert restored_eval.materializer.restore() is True

    def test_restore_rejects_cursor_past_last_seq(self, sim):
        """A snapshot that outlived its rows (doctored here; a crash in
        the wild) must be rejected, forcing cold re-materialization."""
        store = ProvenanceStore(model=sim.model)
        evaluator = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
        for record in _records(sim):
            store.append(record)
        evaluator.run(sim.controls)
        materializer = evaluator.materializer
        materializer.save()
        key = materializer._state_key()
        snapshot = json.loads(store.load_state(key))
        snapshot["cursor"] = store.last_seq() + 10
        store.save_state(key, json.dumps(snapshot))

        fresh = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
        for control in sim.controls:
            fresh.materializer.register(control)
        assert fresh.materializer.restore() is False
        assert fresh.materializer.cursor <= store.last_seq()


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based pool not available"
)
class TestCrashVsRecoveryPaths:
    def test_simulated_crash_passes_through_pool_fallback(self, sim):
        """The evaluator's pool-failure fallback catches ``Exception`` and
        degrades to a serial sweep; a SimulatedCrash (BaseException, like
        a real SIGKILL) must NOT be recoverable that way."""
        plan = FaultPlan(seed=1).crash_at("evaluator.pool.worker_start")
        __, store = _faulty_store(sim, plan)
        evaluator = ComplianceEvaluator(store, sim.xom, sim.vocabulary)
        evaluator.parallel_mode = "always"
        for record in _records(sim):
            store.append(record)
        with active_plan(plan):
            with pytest.raises(SimulatedCrash):
                evaluator.run(sim.controls, jobs=2)
        assert evaluator.parallel_fallbacks == 0


class TestModelChecker:
    @pytest.mark.parametrize(
        "backend,shards",
        (
            ("memory", 1),
            ("sqlite", 1),
            # Sharded runs add per-shard crash points: one shard's death
            # must leave the surviving shards' acknowledged rows intact
            # while global recovery still converges to the oracle.
            ("memory", 4),
            ("sqlite", 4),
        ),
    )
    def test_randomized_crash_schedules(self, backend, shards, tmp_path):
        base_seed = derive_seed(f"crash-schedules:{backend}:{shards}")
        reports = run_schedules(
            CRASH_SCHEDULES,
            base_seed=base_seed,
            backends=(backend,),
            workdir=str(tmp_path),
            shards=shards,
        )
        assert len(reports) == CRASH_SCHEDULES
        assert all(r.shards == shards for r in reports)
        # The scheduler must actually exercise crashes, not only clean
        # closes (statistically certain at any reasonable count).
        if CRASH_SCHEDULES >= 10:
            assert any(r.crashed for r in reports)
            assert any(r.recovered < r.acknowledged for r in reports)

    def test_failure_message_names_replay_seed(self, monkeypatch):
        """Any invariant violation must be replayable from the message."""
        from repro.faults import checker

        def broken_norm(results):
            return [object()]  # never equal across evaluators

        monkeypatch.setattr(checker, "_norm", broken_norm)
        with pytest.raises(checker.CheckFailure) as excinfo:
            run_schedule(0, "memory")
        message = str(excinfo.value)
        assert "seed=0" in message
        assert "FaultPlan(seed=0)" in message
        assert "repro chaos" in message
