"""The correlation planner: classification, equivalence, and accounting.

The planner's contract mirrors the codec's: hash joins and bucket products
change what correlation *costs*, never what it *emits*.  Every test here
pins one side of that contract — plan classification per rule shape, the
differential equivalence of planned vs. naive execution on randomized
traces, the :class:`CorrelationStats` ledger, and the self-pair guard the
disjointness proof is allowed to skip.
"""

import random

from repro.capture.correlation import (
    PLAN_BUCKET_PRODUCT,
    PLAN_HASH_JOIN,
    PLAN_PAIRWISE,
    PLAN_SEQUENCE,
    CorrelationAnalytics,
    CorrelationRule,
    SequenceRule,
    attribute_join,
    co_trace,
    plan_rule,
    queries_provably_disjoint,
)
from repro.model.records import (
    DataRecord,
    RecordClass,
    ResourceRecord,
    TaskRecord,
)
from repro.model.schema import (
    NodeTypeSpec,
    ProvenanceDataModel,
    RelationTypeSpec,
)
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore


def _model() -> ProvenanceDataModel:
    model = ProvenanceDataModel("planner-tests")
    model.add_node_type(NodeTypeSpec("doc", RecordClass.DATA))
    model.add_node_type(NodeTypeSpec("form", RecordClass.DATA))
    model.add_node_type(NodeTypeSpec("step", RecordClass.TASK))
    model.add_node_type(NodeTypeSpec("person", RecordClass.RESOURCE))
    model.add_relation_type(
        RelationTypeSpec("authorOf", RecordClass.RESOURCE, RecordClass.DATA)
    )
    model.add_relation_type(
        RelationTypeSpec("inputTo", RecordClass.DATA, RecordClass.TASK)
    )
    model.add_relation_type(
        RelationTypeSpec("pairedWith", RecordClass.DATA, RecordClass.DATA)
    )
    model.add_relation_type(
        RelationTypeSpec("nextStep", RecordClass.TASK, RecordClass.TASK)
    )
    return model


def _join_rule(source_type="person", target_type="doc"):
    return attribute_join(
        "author-by-email",
        "authorOf",
        RecordQuery(entity_type=source_type),
        RecordQuery(entity_type=target_type),
        "email",
        "author_email",
    )


class TestPlanClassification:
    def test_attribute_join_plans_as_hash_join(self):
        plan = plan_rule(_join_rule())
        assert plan.kind == PLAN_HASH_JOIN
        assert plan.disjoint  # person vs doc: provably disjoint

    def test_co_trace_plans_as_bucket_product(self):
        rule = co_trace(
            "docs-to-steps",
            "inputTo",
            RecordQuery(entity_type="doc"),
            RecordQuery(entity_type="step"),
        )
        plan = plan_rule(rule)
        assert plan.kind == PLAN_BUCKET_PRODUCT
        assert plan.disjoint

    def test_opaque_predicate_plans_as_pairwise(self):
        rule = CorrelationRule(
            name="close-in-time",
            relation_type="inputTo",
            source_query=RecordQuery(entity_type="doc"),
            target_query=RecordQuery(entity_type="step"),
            predicate=lambda s, t: abs(s.timestamp - t.timestamp) < 10,
        )
        plan = plan_rule(rule)
        assert plan.kind == PLAN_PAIRWISE
        assert plan.disjoint

    def test_sequence_rule_plans_as_sequence(self):
        rule = SequenceRule(
            "step-order", "nextStep", RecordQuery(entity_type="step")
        )
        assert plan_rule(rule).kind == PLAN_SEQUENCE

    def test_same_type_join_is_not_disjoint(self):
        plan = plan_rule(_join_rule("doc", "doc"))
        assert plan.kind == PLAN_HASH_JOIN
        assert not plan.disjoint


class TestDisjointnessProof:
    def test_differing_entity_types_prove_disjoint(self):
        assert queries_provably_disjoint(
            RecordQuery(entity_type="doc"), RecordQuery(entity_type="step")
        )

    def test_differing_record_classes_prove_disjoint(self):
        assert queries_provably_disjoint(
            RecordQuery(record_class=RecordClass.DATA),
            RecordQuery(record_class=RecordClass.TASK),
        )

    def test_unpinned_sides_are_not_proven(self):
        assert not queries_provably_disjoint(
            RecordQuery(entity_type="doc"), RecordQuery()
        )
        assert not queries_provably_disjoint(RecordQuery(), RecordQuery())

    def test_same_constants_are_not_proven(self):
        assert not queries_provably_disjoint(
            RecordQuery(entity_type="doc"), RecordQuery(entity_type="doc")
        )


def _random_store(rng: random.Random, model, traces=6, unhashable=False):
    """A store of randomized person/doc/step records across *traces*."""
    store = ProvenanceStore(model=model)
    counter = 0
    for trace in range(traces):
        app_id = f"T{trace}"
        emails = [f"u{rng.randint(0, 4)}@x" for __ in range(3)]
        for email in emails:
            counter += 1
            store.append(
                ResourceRecord.create(
                    f"P{counter}", app_id, "person",
                    timestamp=rng.randint(0, 100),
                    attributes={"email": email},
                )
            )
        for __ in range(rng.randint(0, 5)):
            counter += 1
            attributes = {"author_email": rng.choice(emails + ["nobody@x"])}
            if unhashable and rng.random() < 0.2:
                # Lists are valid attribute payloads but cannot key a
                # dict: the hash join must degrade to the pairwise scan
                # for this (rule, trace), not crash and not diverge.
                attributes["author_email"] = [rng.choice(emails)]
            if rng.random() < 0.3:
                del attributes["author_email"]  # missing join key
            counter += 1
            store.append(
                DataRecord.create(
                    f"D{counter}", app_id,
                    rng.choice(["doc", "form"]),
                    timestamp=rng.randint(0, 100),
                    attributes=attributes,
                )
            )
        for __ in range(rng.randint(0, 3)):
            counter += 1
            store.append(
                TaskRecord.create(
                    f"S{counter}", app_id, "step",
                    timestamp=rng.randint(0, 100),
                )
            )
    return store


def _rules():
    return [
        _join_rule(),
        co_trace(
            "docs-to-steps",
            "inputTo",
            RecordQuery(entity_type="doc"),
            RecordQuery(entity_type="step"),
        ),
        CorrelationRule(
            name="close-in-time",
            relation_type="inputTo",
            source_query=RecordQuery(entity_type="form"),
            target_query=RecordQuery(entity_type="step"),
            predicate=lambda s, t: abs(s.timestamp - t.timestamp) < 25,
        ),
        SequenceRule(
            "step-order", "nextStep", RecordQuery(entity_type="step")
        ),
    ]


def _run(store, model, use_planner):
    analytics = CorrelationAnalytics(
        store, model, use_planner=use_planner
    )
    for rule in _rules():
        analytics.add_rule(rule)
    created = analytics.run()
    return created, analytics.stats


class TestPlannerEquivalence:
    def test_planned_equals_naive_on_randomized_traces(self):
        # Ten randomized stores: the planned run and the naive cartesian
        # run must leave byte-identical physical rows (ids, order, XML).
        for seed in range(10):
            model = _model()
            planned_store = _random_store(random.Random(seed), model)
            naive_store = _random_store(random.Random(seed), model)
            assert planned_store.rows() == naive_store.rows()
            planned, __ = _run(planned_store, model, use_planner=True)
            naive, __ = _run(naive_store, model, use_planner=False)
            assert [r.record_id for r in planned] == [
                r.record_id for r in naive
            ]
            assert planned_store.rows() == naive_store.rows(), (
                f"seed {seed}: planned and naive stores diverged"
            )

    def test_unhashable_join_values_fall_back_not_diverge(self):
        for seed in range(5):
            model = _model()
            planned_store = _random_store(
                random.Random(seed), model, unhashable=True
            )
            naive_store = _random_store(
                random.Random(seed), model, unhashable=True
            )
            planned, stats = _run(planned_store, model, use_planner=True)
            naive, __ = _run(naive_store, model, use_planner=False)
            assert planned_store.rows() == naive_store.rows()
            if any(
                isinstance(r.get("author_email"), list)
                for r in planned_store.records()
                if r.entity_type == "doc"  # the join's target side
            ):
                assert stats.hash_fallbacks > 0

    def test_rerun_is_idempotent(self):
        model = _model()
        store = _random_store(random.Random(3), model)
        first, __ = _run(store, model, use_planner=True)
        again, stats = _run(store, model, use_planner=True)
        assert again == []
        assert stats.pairs_emitted == 0


class TestStatsAccounting:
    def test_rule_classification_counts(self):
        model = _model()
        store = _random_store(random.Random(1), model)
        __, stats = _run(store, model, use_planner=True)
        assert stats.rules_hash_join == 1
        assert stats.rules_bucket == 1
        assert stats.rules_pairwise == 1
        assert stats.rules_sequence == 1

    def test_hash_join_considers_fewer_pairs_than_naive(self):
        model = _model()
        store = _random_store(random.Random(2), model)
        __, stats = _run(store, model, use_planner=True)
        # The join probes only key-matched pairs; the product and pairwise
        # rules scan everything, so considered < naive strictly requires
        # the join to have pruned something.
        assert stats.pairs_considered < stats.pairs_naive
        assert 0.0 < stats.pairs_reduction < 1.0
        assert stats.pairs_emitted > 0

    def test_emitted_matches_created_relations(self):
        model = _model()
        store = _random_store(random.Random(4), model)
        created, stats = _run(store, model, use_planner=True)
        assert stats.pairs_emitted == len(created)

    def test_naive_run_counts_considered_equal_to_naive(self):
        model = _model()
        store = _random_store(random.Random(5), model)
        __, stats = _run(store, model, use_planner=False)
        # SequenceRule pairs count 1:1 on both ledgers, and the cartesian
        # scan considers exactly what it enumerates.
        assert stats.pairs_considered == stats.pairs_naive
        assert stats.self_checks_skipped == 0

    def test_as_dict_round_trips_every_field(self):
        model = _model()
        store = _random_store(random.Random(6), model)
        __, stats = _run(store, model, use_planner=True)
        payload = stats.as_dict()
        assert payload["pairs_reduction"] == stats.pairs_reduction
        for field in (
            "rules_hash_join", "rules_bucket", "rules_pairwise",
            "rules_sequence", "hash_fallbacks", "pairs_naive",
            "pairs_considered", "pairs_emitted", "self_checks_skipped",
        ):
            assert payload[field] == getattr(stats, field)


class TestSelfPairGuard:
    """The bugfix this PR rides along: ``accepts`` may skip the
    ``record_id`` self-comparison only when the planner *proved* the two
    sides disjoint.  A non-disjoint rule must still reject self-pairs."""

    def test_self_pair_rejected_without_disjointness_proof(self):
        model = _model()
        store = ProvenanceStore(model=model)
        # One doc whose author_email equals its own join key on both
        # sides: a doc-to-doc join would pair it with itself.
        store.append(
            DataRecord.create(
                "D1", "T0", "doc",
                attributes={"author_email": "u@x", "email": "u@x"},
            )
        )
        store.append(
            DataRecord.create(
                "D2", "T0", "doc",
                attributes={"author_email": "u@x", "email": "u@x"},
            )
        )
        rule = attribute_join(
            "doc-pairs", "pairedWith",
            RecordQuery(entity_type="doc"),
            RecordQuery(entity_type="doc"),
            "email", "author_email",
        )
        assert not plan_rule(rule).disjoint
        analytics = CorrelationAnalytics(store, model)
        analytics.add_rule(rule)
        created = analytics.run()
        linked = {(r.source_id, r.target_id) for r in created}
        # Cross pairs only — never (D1, D1) or (D2, D2).
        assert linked == {("D1", "D2"), ("D2", "D1")}
        assert analytics.stats.self_checks_skipped == 0

    def test_accepts_rejects_self_pair_directly(self):
        record = DataRecord.create(
            "D1", "T0", "doc", attributes={"email": "u@x"}
        )
        rule = _join_rule("doc", "doc")
        assert not rule.accepts(record, record)
        # The skip is an explicit opt-in for proven-disjoint plans; with
        # it, the guard really is gone (which is why the proof must hold).
        assert rule.accepts(
            record, record, skip_self_check=True
        ) is (record.get("email") == record.get("author_email"))

    def test_disjoint_join_skips_self_checks_and_stays_correct(self):
        model = _model()
        rng = random.Random(8)
        planned_store = _random_store(rng, model)
        analytics = CorrelationAnalytics(planned_store, model)
        analytics.add_rule(_join_rule())  # person → doc: disjoint
        created = analytics.run()
        stats = analytics.stats
        assert stats.self_checks_skipped == stats.pairs_considered > 0
        assert all(r.source_id != r.target_id for r in created)
