"""Unit tests for process specs, the simulator, visibility, violations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture.events import ApplicationEvent, EventSource
from repro.errors import ProcessError
from repro.processes.engine import ProcessSimulator, all_events
from repro.processes.spec import (
    ActivityStep,
    ChoiceStep,
    EndStep,
    ProcessSpec,
)
from repro.processes.violations import ViolationPlan, has_violation
from repro.processes.visibility import ManagementProfile, VisibilityPolicy


def emit_one(kind):
    def emitter(case, start, end, make_id):
        return [
            ApplicationEvent(
                event_id=make_id(),
                source=EventSource.WORKFLOW,
                kind=kind,
                timestamp=end,
                app_id=case["app_id"],
            )
        ]

    return emitter


def linear_spec():
    spec = ProcessSpec("linear", start="a")
    spec.add(ActivityStep("a", "r1", emit_one("w.a"), (10, 10), "b"))
    spec.add(ActivityStep("b", "r2", emit_one("w.b"), (10, 10), "end"))
    spec.add(EndStep())
    return spec


def branching_spec():
    spec = ProcessSpec("branching", start="a")
    spec.add(ActivityStep("a", "r", emit_one("w.a"), (10, 10), "gate"))
    spec.add(
        ChoiceStep(
            "gate",
            decider=lambda case: case["branch"],
            branches={"left": "b", "right": None},
        )
    )
    spec.add(ActivityStep("b", "r", emit_one("w.b"), (10, 10), "end"))
    spec.add(EndStep())
    return spec


class TestProcessSpec:
    def test_duplicate_step_rejected(self):
        spec = ProcessSpec("p", start="a")
        spec.add(EndStep("a"))
        with pytest.raises(ProcessError):
            spec.add(EndStep("a"))

    def test_unknown_step_lookup(self):
        spec = ProcessSpec("p", start="a")
        with pytest.raises(ProcessError):
            spec.step("missing")

    def test_validate_missing_start(self):
        spec = ProcessSpec("p", start="ghost")
        with pytest.raises(ProcessError):
            spec.validate()

    def test_validate_dangling_reference(self):
        spec = ProcessSpec("p", start="a")
        spec.add(ActivityStep("a", "r", emit_one("w.a"), (1, 1), "ghost"))
        with pytest.raises(ProcessError):
            spec.validate()

    def test_gateway_unknown_branch(self):
        step = ChoiceStep(
            "g", decider=lambda case: "nope", branches={"yes": None}
        )
        with pytest.raises(ProcessError):
            step.route({})

    def test_describe_lists_steps(self):
        lines = branching_spec().describe()
        assert any("[activity] a" in line for line in lines)
        assert any("[choice]" in line and "gate" in line for line in lines)

    def test_activity_names(self):
        assert branching_spec().activity_names() == ["a", "b"]


class TestSimulator:
    def factory(self, branch="left"):
        def build(index, rng):
            return {"branch": branch, "index": index}

        return build

    def test_linear_run(self):
        simulator = ProcessSimulator(linear_spec(), self.factory(), seed=1)
        run = simulator.run_case()
        assert run.app_id == "App01"
        assert run.path == ["a", "b"]
        assert [e.kind for e in run.events] == ["w.a", "w.b"]
        assert run.finished_at > run.started_at

    def test_branching(self):
        left = ProcessSimulator(
            branching_spec(), self.factory("left"), seed=1
        ).run_case()
        right = ProcessSimulator(
            branching_spec(), self.factory("right"), seed=1
        ).run_case()
        assert left.path == ["a", "b"]
        assert right.path == ["a"]

    def test_deterministic_per_seed(self):
        runs_a = ProcessSimulator(
            linear_spec(), self.factory(), seed=42
        ).run(5)
        runs_b = ProcessSimulator(
            linear_spec(), self.factory(), seed=42
        ).run(5)
        assert [r.events for r in runs_a] == [r.events for r in runs_b]

    def test_app_ids_sequential(self):
        runs = ProcessSimulator(linear_spec(), self.factory(), seed=1).run(3)
        assert [r.app_id for r in runs] == ["App01", "App02", "App03"]

    def test_all_events_ordered(self):
        runs = ProcessSimulator(linear_spec(), self.factory(), seed=1).run(2)
        events = all_events(runs)
        assert len(events) == 4
        timestamps = [e.timestamp for e in events]
        assert timestamps == sorted(timestamps)

    def test_runaway_loop_guard(self):
        spec = ProcessSpec("loop", start="a")
        spec.add(ActivityStep("a", "r", emit_one("w.a"), (1, 1), "a"))
        simulator = ProcessSimulator(spec, self.factory(), seed=1)
        with pytest.raises(ProcessError):
            simulator.run_case()


class TestViolationPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ViolationPlan(rates={"x": 1.5})

    def test_none_plan(self):
        case = ViolationPlan.none().apply_to_case({}, random.Random(1))
        assert case["violations"] == set()

    def test_uniform_plan_rate_one(self):
        plan = ViolationPlan.uniform(["a", "b"], 1.0)
        assert plan.draw(random.Random(1)) == {"a", "b"}

    def test_uniform_plan_rate_zero(self):
        plan = ViolationPlan.uniform(["a", "b"], 0.0)
        assert plan.draw(random.Random(1)) == set()

    def test_has_violation(self):
        assert has_violation({"violations": {"a"}}, "a")
        assert not has_violation({"violations": set()}, "a")
        assert not has_violation({}, "a")

    @given(st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=25)
    def test_draw_deterministic_per_seed(self, seed):
        plan = ViolationPlan.uniform(["a", "b", "c"], 0.5)
        assert plan.draw(random.Random(seed)) == plan.draw(
            random.Random(seed)
        )


class TestVisibilityPolicy:
    def events(self, count=200):
        sources = list(EventSource)
        return [
            ApplicationEvent(
                event_id=f"E{i}",
                source=sources[i % len(sources)],
                kind=f"{sources[i % len(sources)].value}.thing",
                timestamp=i,
            )
            for i in range(count)
        ]

    def test_full_visibility_keeps_all(self):
        visible, dropped = VisibilityPolicy.uniform(1.0).project(
            self.events()
        )
        assert len(visible) == 200
        assert dropped == []

    def test_zero_visibility_drops_all(self):
        visible, dropped = VisibilityPolicy.uniform(0.0).project(
            self.events()
        )
        assert visible == []
        assert len(dropped) == 200

    def test_partial_visibility_splits(self):
        visible, dropped = VisibilityPolicy.uniform(0.5, seed=3).project(
            self.events()
        )
        assert len(visible) + len(dropped) == 200
        assert 40 < len(visible) < 160  # loose band around half

    def test_projection_deterministic(self):
        policy = VisibilityPolicy.uniform(0.5, seed=9)
        first = policy.project(self.events())
        second = policy.project(self.events())
        assert [e.event_id for e in first[0]] == [
            e.event_id for e in second[0]
        ]

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            VisibilityPolicy.uniform(1.5)

    def test_profiles_ordered_by_visibility(self):
        events = self.events(600)
        kept = {}
        for profile in ManagementProfile:
            policy = VisibilityPolicy.from_profile(profile, seed=5)
            kept[profile] = len(policy.project(events)[0])
        assert (
            kept[ManagementProfile.FULLY_MANAGED]
            > kept[ManagementProfile.PARTIALLY_MANAGED]
            > kept[ManagementProfile.UNMANAGED]
        )

    def test_observable_types_respects_zero_rate_sources(self):
        from repro.processes import hiring

        model = hiring.build_model()
        mapping = hiring.build_mapping(model)
        policy = VisibilityPolicy(
            rates={EventSource.EMAIL: 0.0}, default_rate=1.0
        )
        observable = policy.observable_types(mapping)
        assert "notification" not in observable
        assert "jobrequisition" in observable

    def test_observable_types_all_under_full_visibility(self):
        from repro.processes import hiring

        model = hiring.build_model()
        mapping = hiring.build_mapping(model)
        observable = VisibilityPolicy.uniform(1.0).observable_types(mapping)
        assert "notification" in observable
        assert "person" in observable
