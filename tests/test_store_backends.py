"""Backend-conformance suite: store invariants over every storage backend.

The storage seam promises that swapping the backend never changes store
semantics — only durability and cost.  This suite parametrizes the core
invariants (duplicate-id rejection, append-order iteration, byte-identical
rows across dump/load, observer ordering, E5 incremental-recheck counts,
verdict equality) over:

- the in-memory backend,
- SQLite in-memory (``:memory:``),
- SQLite on disk (plus a close-and-reopen durability pass),
- sharded composites (one shard, four SQLite file shards, and shards
  wrapped in fault-free ``FaultyBackend`` proxies).

Sharded backends keep per-trace append order but enumerate traces in
shard-grouped order rather than global first-seen order, so the handful
of globally order-sensitive assertions relax to the per-trace contract
for the multi-shard kinds.
"""

import pytest

from repro.controls.deployment import ControlDeployment
from repro.controls.evaluator import ComplianceEvaluator
from repro.errors import BackendError, DuplicateRecordId, RecordNotFound
from repro.faults import FaultPlan, FaultyBackend
from repro.model.builder import ModelBuilder
from repro.model.records import DataRecord, RecordClass, RelationRecord
from repro.processes import hiring
from repro.processes.violations import ViolationPlan
from repro.store.backends import (
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    create_backend,
)
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore

from tests.test_store_store import sample_records

BACKEND_PARAMS = (
    "memory",
    "sqlite-memory",
    "sqlite-file",
    # A fault-free FaultyBackend must be behaviorally invisible — the
    # crash harness's staging proxy passes the same contract as the real
    # backends it wraps.
    "faulty-memory",
    "faulty-sqlite",
    # Sharded composites must pass the same contract: the degenerate
    # single shard, a four-way SQLite split, and fault-free FaultyBackend
    # proxies around every shard (the chaos harness's composition).
    "sharded-1",
    "sharded-4",
    "sharded-faulty",
)

#: kinds whose iteration order is shard-grouped, not global first-seen.
MULTI_SHARD_KINDS = frozenset({"sharded-4", "sharded-faulty"})


def make_backend(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite-memory":
        return SQLiteBackend(":memory:")
    if kind == "faulty-memory":
        return FaultyBackend(MemoryBackend(), FaultPlan())
    if kind == "faulty-sqlite":
        return FaultyBackend(
            SQLiteBackend(str(tmp_path / "faulty.db")), FaultPlan()
        )
    if kind == "sharded-1":
        return ShardedBackend([MemoryBackend()])
    if kind == "sharded-4":
        return ShardedBackend.for_sqlite(str(tmp_path / "sharded.db"), 4)
    if kind == "sharded-faulty":
        plan = FaultPlan()
        return ShardedBackend(
            [FaultyBackend(MemoryBackend(), plan) for __ in range(2)]
        )
    return SQLiteBackend(str(tmp_path / "store.db"))


@pytest.fixture(params=BACKEND_PARAMS)
def backend_kind(request):
    return request.param


@pytest.fixture
def store(backend_kind, tmp_path):
    store = ProvenanceStore(
        indexed=True,
        indexed_attributes={"reqid"},
        backend=make_backend(backend_kind, tmp_path),
    )
    store.extend(sample_records("App01"))
    store.extend(sample_records("App02"))
    yield store
    store.close()


class TestConformance:
    def test_len_get_contains(self, store):
        assert len(store) == 6
        assert "D1-App01" in store
        assert store.get("D1-App01").get("type") == "new"
        with pytest.raises(RecordNotFound):
            store.get("nope")

    def test_duplicate_id_rejected(self, store):
        with pytest.raises(DuplicateRecordId):
            store.append(sample_records("App01")[0])
        assert len(store) == 6

    def test_rows_and_records_in_append_order(self, store, backend_kind):
        ids = [row.record_id for row in store.rows()]
        if backend_kind not in MULTI_SHARD_KINDS:
            assert ids[:3] == ["R1-App01", "D1-App01", "E1-App01"]
        # Per-trace append order holds on every kind, sharded included.
        assert [i for i in ids if i.endswith("App01")] == [
            "R1-App01", "D1-App01", "E1-App01"
        ]
        assert [r.record_id for r in store.records()] == ids

    def test_app_ids_first_seen_order(self, store, backend_kind):
        if backend_kind in MULTI_SHARD_KINDS:
            # Shard-grouped canonical order: still deterministic, still
            # consistent with the row stream, just not first-seen.
            assert sorted(store.app_ids()) == ["App01", "App02"]
            first_seen = []
            for row in store.rows():
                if row.app_id not in first_seen:
                    first_seen.append(row.app_id)
            assert store.app_ids() == first_seen
        else:
            assert store.app_ids() == ["App01", "App02"]

    def test_select_paths(self, store):
        data = store.select(RecordQuery(record_class=RecordClass.DATA))
        assert {r.record_id for r in data} == {"D1-App01", "D1-App02"}
        query = RecordQuery(entity_type="jobrequisition").where(
            "reqid", "==", "Req-App02"
        )
        assert [r.record_id for r in store.select(query)] == ["D1-App02"]
        outgoing = store.relations_from("R1-App01")
        assert [r.record_id for r in outgoing] == ["E1-App01"]

    def test_observer_ordering(self, store):
        """Observers fire per append, in subscription order, post-commit."""
        calls = []
        store.subscribe(lambda r: calls.append(("first", r.record_id)))
        store.subscribe(lambda r: calls.append(("second", r.record_id)))
        store.append(DataRecord.create("D9", "App09", "jobrequisition"))
        store.append(DataRecord.create("D10", "App09", "jobrequisition"))
        assert calls == [
            ("first", "D9"),
            ("second", "D9"),
            ("first", "D10"),
            ("second", "D10"),
        ]
        # The observed record is already stored (commit happens first).
        seen_inside = []
        store.subscribe(lambda r: seen_inside.append(r.record_id in store))
        store.append(DataRecord.create("D11", "App09", "jobrequisition"))
        assert seen_inside == [True]

    def test_dump_load_rows_byte_identical(self, store, tmp_path,
                                           backend_kind):
        path = str(tmp_path / "dump.jsonl")
        assert store.dump(path) == 6
        source_rows = [r.as_tuple() for r in store.rows()]
        # Reload into every backend kind; rows stay byte-identical.  A
        # sharded source or target enumerates traces shard-grouped, so
        # compare as sorted multisets there and exactly otherwise.
        for target_kind in BACKEND_PARAMS:
            target_dir = tmp_path / f"reload-{target_kind}"
            target_dir.mkdir()
            loaded = ProvenanceStore.load(
                path, backend=make_backend(target_kind, target_dir)
            )
            loaded_rows = [r.as_tuple() for r in loaded.rows()]
            if (
                backend_kind in MULTI_SHARD_KINDS
                or target_kind in MULTI_SHARD_KINDS
            ):
                assert sorted(loaded_rows) == sorted(source_rows)
            else:
                assert loaded_rows == source_rows
            loaded.close()

    def test_records_by_trace_groups_in_append_order(self, store,
                                                     backend_kind):
        grouped = store.records_by_trace()
        if backend_kind in MULTI_SHARD_KINDS:
            assert sorted(grouped) == ["App01", "App02"]
        else:
            assert list(grouped) == ["App01", "App02"]
        assert [r.record_id for r in grouped["App01"]] == [
            "R1-App01", "D1-App01", "E1-App01"
        ]


class TestUnindexedConformance:
    """The scan paths must match the indexed paths on every backend."""

    def test_scan_equals_index(self, backend_kind, tmp_path):
        indexed = ProvenanceStore(
            indexed=True, backend=make_backend(backend_kind, tmp_path)
        )
        scan_dir = tmp_path / "scan"
        scan_dir.mkdir()
        scanning = ProvenanceStore(
            indexed=False, backend=make_backend(backend_kind, scan_dir)
        )
        for target in (indexed, scanning):
            target.extend(sample_records("App01"))
            target.extend(sample_records("App02"))
        query = RecordQuery(app_id="App02")
        assert [r.record_id for r in indexed.select(query)] == [
            r.record_id for r in scanning.select(query)
        ]
        assert indexed.app_ids() == scanning.app_ids()
        indexed.close()
        scanning.close()


class TestSQLiteSpecifics:
    def test_reopen_hydrates_indexes(self, tmp_path):
        db = str(tmp_path / "prov.db")
        store = ProvenanceStore(backend=SQLiteBackend(db))
        store.extend(sample_records("App01"))
        store.extend(sample_records("App02"))
        rows_before = [r.as_tuple() for r in store.rows()]
        store.close()

        reopened = ProvenanceStore(backend=SQLiteBackend(db))
        assert len(reopened) == 6
        assert [r.as_tuple() for r in reopened.rows()] == rows_before
        # Index paths work over hydrated data.
        assert reopened.app_ids() == ["App01", "App02"]
        assert [
            r.record_id for r in reopened.relations_from("R1-App01")
        ] == ["E1-App01"]
        with pytest.raises(DuplicateRecordId):
            reopened.append(sample_records("App01")[0])
        reopened.close()

    def test_pending_rows_visible_before_flush(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "b.db"), batch_size=1000)
        store = ProvenanceStore(backend=backend)
        with store.bulk():
            store.extend(sample_records("App01"))
            # Not yet committed, but reads must see the rows.
            assert "D1-App01" in store
            assert store.get("D1-App01").get("type") == "new"
            assert len(store) == 3
        store.close()

    def test_model_typed_attributes_after_reopen(self, tmp_path):
        model = (
            ModelBuilder("m")
            .data("jobrequisition", "Job Requisition",
                  reqid=str, type=str)
            .build()
        )
        db = str(tmp_path / "typed.db")
        store = ProvenanceStore(model=model, backend=SQLiteBackend(db))
        store.append(
            DataRecord.create(
                "D1", "App01", "jobrequisition",
                attributes={"reqid": "R1", "type": "new"},
            )
        )
        store.close()
        reopened = ProvenanceStore(model=model, backend=SQLiteBackend(db))
        assert reopened.get("D1").get("reqid") == "R1"
        reopened.close()

    def test_closed_backend_rejects_use(self, tmp_path):
        store = ProvenanceStore(backend=SQLiteBackend(str(tmp_path / "c.db")))
        store.extend(sample_records("App01"))
        store.close()
        store.close()  # idempotent
        with pytest.raises(BackendError):
            store.append(sample_records("App02")[0])

    def test_create_backend_registry(self, tmp_path):
        assert isinstance(create_backend("memory"), MemoryBackend)
        sqlite = create_backend("sqlite", path=str(tmp_path / "r.db"))
        assert isinstance(sqlite, SQLiteBackend)
        sqlite.close()
        with pytest.raises(BackendError):
            create_backend("cassandra")
        with pytest.raises(BackendError):
            create_backend("memory", path="nope.db")


class TestDeployedChecking:
    """E5 invariants: incremental recheck counts are backend-independent."""

    def test_incremental_recheck_counts_match_memory(
        self, backend_kind, tmp_path, hiring_model, hiring_xom,
        hiring_vocabulary
    ):
        from repro.controls.authoring import ControlAuthoringTool
        from tests.conftest import build_hiring_trace
        from tests.test_controls_evaluation import GM_CONTROL

        tool = ControlAuthoringTool(hiring_vocabulary)
        tool.author("gm-approval", GM_CONTROL)
        tool.deploy("gm-approval")
        control = tool.control("gm-approval")

        store = ProvenanceStore(
            model=hiring_model, backend=make_backend(backend_kind, tmp_path)
        )
        deployment = ControlDeployment(
            store, hiring_xom, hiring_vocabulary,
            bind_results=False, immediate=False,
        )
        deployment.deploy(control)
        assert deployment.rechecks == 0

        trace = build_hiring_trace("App60")
        for record in sorted(trace.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for relation in sorted(trace.edges(), key=lambda r: r.record_id):
            store.append(relation)
        # A burst of relevant records dirties the pair exactly once.
        assert deployment.dirty_count == 1
        results = deployment.flush()
        assert len(results) == 1
        assert deployment.rechecks == 1
        assert deployment.dirty_count == 0
        assert deployment.flush() == []
        store.close()


class TestWorkloadBackendEquivalence:
    """simulate(backend=...) reproduces the memory run exactly."""

    def test_verdicts_and_rows_identical(self, tmp_path):
        workload = hiring.workload()
        plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.3)
        memory_sim = workload.simulate(cases=8, seed=11, violations=plan)
        sqlite_sim = workload.simulate(
            cases=8, seed=11, violations=plan,
            backend=SQLiteBackend(str(tmp_path / "w.db")),
        )
        assert [r.as_tuple() for r in sqlite_sim.store.rows()] == [
            r.as_tuple() for r in memory_sim.store.rows()
        ]
        expected = ComplianceEvaluator(
            memory_sim.store, memory_sim.xom, memory_sim.vocabulary
        ).run(memory_sim.controls)
        actual = ComplianceEvaluator(
            sqlite_sim.store, sqlite_sim.xom, sqlite_sim.vocabulary
        ).run(sqlite_sim.controls)
        assert [
            (r.control_name, r.trace_id, r.status) for r in expected
        ] == [(r.control_name, r.trace_id, r.status) for r in actual]
        sqlite_sim.store.close()

    def test_attach_reproduces_simulated_verdicts(self, tmp_path):
        db = str(tmp_path / "audit.db")
        workload = hiring.workload()
        plan = ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.4)
        sim = workload.simulate(
            cases=6, seed=3, violations=plan, backend=SQLiteBackend(db)
        )
        expected = [
            (r.control_name, r.trace_id, r.status)
            for r in ComplianceEvaluator(
                sim.store, sim.xom, sim.vocabulary
            ).run(sim.controls)
        ]
        sim.store.close()

        # Re-audit the rows later, in another "process".
        reopened = ProvenanceStore(
            model=workload.build_model(), backend=SQLiteBackend(db)
        )
        attached = workload.attach(reopened)
        assert attached.runs == []
        assert attached.store is reopened
        actual = [
            (r.control_name, r.trace_id, r.status)
            for r in ComplianceEvaluator(
                attached.store, attached.xom, attached.vocabulary
            ).run(attached.controls)
        ]
        assert actual == expected
        reopened.close()


class TestCliBackendFlags:
    """--backend sqlite --db: simulate once, audit many times."""

    def test_check_over_db_matches_memory_check(self, tmp_path):
        import io

        from repro.cli import main

        db = str(tmp_path / "cli.db")
        out = io.StringIO()
        code = main(
            ["simulate", "hiring", "--cases", "6", "--violation-rate",
             "0.5", "--backend", "sqlite", "--db", db],
            out=out,
        )
        assert code == 0

        sqlite_out = io.StringIO()
        sqlite_code = main(
            ["check", "hiring", "--backend", "sqlite", "--db", db],
            out=sqlite_out,
        )
        memory_out = io.StringIO()
        memory_code = main(
            ["check", "hiring", "--cases", "6", "--violation-rate", "0.5"],
            out=memory_out,
        )
        assert sqlite_code == memory_code
        assert sqlite_out.getvalue() == memory_out.getvalue()

    def test_db_requires_sqlite_backend(self):
        import io

        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["simulate", "hiring", "--db", "x.db"], out=io.StringIO())
