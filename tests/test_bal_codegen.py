"""The closure-codegen back end: coverage, caching, and fallback.

The semantic equivalence proof lives in the differential fuzz suite
(:mod:`tests.test_bal_fuzz`); this module pins the plumbing around it —
programs compile once and are cached, unsupported AST nodes degrade to
the interpreter per rule (never an error), and the engine rejects
unknown execution modes up front.
"""

import dataclasses

import pytest

from repro.brms.bal import ast
from repro.brms.bal.codegen import CodegenGap, compile_rule
from repro.brms.engine import EXECUTION_MODES, RuleEngine, RuleVerdict
from repro.errors import RuleEngineError
from repro.graph.build import build_trace_graph
from repro.processes import hiring
from repro.processes.violations import ViolationPlan


@pytest.fixture(scope="module")
def sim():
    return hiring.workload().simulate(
        cases=3,
        seed=5,
        violations=ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.5),
    )


@pytest.fixture(scope="module")
def graphs(sim):
    return [
        build_trace_graph(sim.store, trace_id)
        for trace_id in sim.store.app_ids()
    ]


class _UnsupportedNode(ast.Node):
    """An AST node class the closure compiler has never heard of."""


def _with_then_actions(compiled, actions):
    return dataclasses.replace(
        compiled, rule=dataclasses.replace(compiled.rule, then_actions=actions)
    )


class TestCoverage:
    def test_every_hiring_control_compiles(self, sim):
        for control in sim.controls:
            program = compile_rule(control.compiled)
            assert program.name == control.compiled.name
            assert callable(program.condition)

    def test_compiled_engine_matches_interpreter_on_controls(
        self, sim, graphs
    ):
        interpreter = RuleEngine(
            sim.xom, sim.vocabulary, execution_mode="interpret"
        )
        compiled_engine = RuleEngine(
            sim.xom, sim.vocabulary, execution_mode="compiled"
        )
        for control in sim.controls:
            for graph in graphs:
                expected = interpreter.evaluate(control.compiled, graph)
                actual = compiled_engine.evaluate(control.compiled, graph)
                assert actual == expected

    def test_unknown_node_raises_codegen_gap(self, sim):
        broken = _with_then_actions(
            sim.controls[0].compiled, (_UnsupportedNode(),)
        )
        with pytest.raises(CodegenGap):
            compile_rule(broken)


class TestProgramCache:
    def test_program_compiled_once_and_cached(self, sim):
        engine = RuleEngine(sim.xom, sim.vocabulary)
        compiled = sim.controls[0].compiled
        first = engine.program_for(compiled)
        assert first is not None
        assert engine.program_for(compiled) is first
        engine.clear_program_cache()
        assert engine.program_for(compiled) is not first

    def test_unknown_execution_mode_rejected(self, sim):
        with pytest.raises(RuleEngineError, match="unknown execution mode"):
            RuleEngine(sim.xom, sim.vocabulary, execution_mode="jit")
        assert set(EXECUTION_MODES) == {"compiled", "interpret"}


class TestFallback:
    def test_codegen_gap_falls_back_to_interpreter(self, sim, graphs):
        # The unsupported node sits in the then-branch of a control whose
        # condition holds on compliant traces: codegen must refuse the
        # whole rule (gap recorded), and the interpreter would only choke
        # if that branch actually ran — so pick a trace where it doesn't.
        compiled = sim.controls[0].compiled
        broken = _with_then_actions(compiled, (_UnsupportedNode(),))
        engine = RuleEngine(sim.xom, sim.vocabulary, execution_mode="compiled")
        reference = RuleEngine(
            sim.xom, sim.vocabulary, execution_mode="interpret"
        )

        assert engine.program_for(broken) is None
        assert broken.name in engine.codegen_gaps
        assert "_UnsupportedNode" in engine.codegen_gaps[broken.name]

        fell_back = False
        for graph in graphs:
            probe = reference.evaluate(compiled, graph)
            if probe.condition_value:
                continue  # then-branch would run the unsupported action
            fell_back = True
            outcome = engine.evaluate(broken, graph)
            assert outcome == reference.evaluate(broken, graph)
            assert outcome.verdict in (
                RuleVerdict.NOT_SATISFIED, RuleVerdict.NOT_APPLICABLE
            )
        assert fell_back, "need at least one trace exercising the fallback"

    def test_gap_decision_made_once(self, sim):
        engine = RuleEngine(sim.xom, sim.vocabulary)
        broken = _with_then_actions(
            sim.controls[0].compiled, (_UnsupportedNode(),)
        )
        assert engine.program_for(broken) is None
        gaps_after_first = dict(engine.codegen_gaps)
        assert engine.program_for(broken) is None
        assert engine.codegen_gaps == gaps_after_first
