"""Unit tests for the provenance graph structure and building."""

import pytest

from repro.errors import GraphError
from repro.graph.build import BuildReport, build_graph, build_trace_graph
from repro.graph.graph import ProvenanceGraph
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
    TaskRecord,
)
from repro.store.store import ProvenanceStore


def person(record_id="R1", app_id="App01"):
    return ResourceRecord.create(
        record_id, app_id, "person", attributes={"name": "Joe Doe"}
    )


def requisition(record_id="D1", app_id="App01"):
    return DataRecord.create(
        record_id, app_id, "jobrequisition", attributes={"reqid": "Req001"}
    )


def submitter_edge(record_id="E1", source="R1", target="D1", app_id="App01"):
    return RelationRecord.create(
        record_id, app_id, "submitterOf", source_id=source, target_id=target
    )


@pytest.fixture
def graph():
    graph = ProvenanceGraph("t")
    graph.add_node_record(person())
    graph.add_node_record(requisition())
    graph.add_relation_record(submitter_edge())
    return graph


class TestGraphStructure:
    def test_counts(self, graph):
        assert graph.node_count == 2
        assert graph.edge_count == 1

    def test_relation_rejected_as_node(self, graph):
        with pytest.raises(GraphError):
            graph.add_node_record(submitter_edge("E9"))

    def test_idempotent_node_add(self, graph):
        graph.add_node_record(person())
        assert graph.node_count == 2

    def test_conflicting_node_rejected(self, graph):
        conflicting = ResourceRecord.create(
            "R1", "App01", "person", attributes={"name": "Someone Else"}
        )
        with pytest.raises(GraphError):
            graph.add_node_record(conflicting)

    def test_dangling_edge_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.add_relation_record(
                submitter_edge("E2", source="R1", target="MISSING")
            )
        with pytest.raises(GraphError):
            graph.add_relation_record(
                submitter_edge("E3", source="MISSING", target="D1")
            )

    def test_node_lookup(self, graph):
        assert graph.node("R1").get("name") == "Joe Doe"
        with pytest.raises(GraphError):
            graph.node("ZZ")
        assert "R1" in graph
        assert "ZZ" not in graph

    def test_nodes_filtered(self, graph):
        assert [r.record_id for r in graph.nodes(RecordClass.RESOURCE)] == ["R1"]
        assert [
            r.record_id for r in graph.nodes(entity_type="jobrequisition")
        ] == ["D1"]
        assert graph.nodes(RecordClass.TASK) == []

    def test_edges_filtered(self, graph):
        assert len(graph.edges("submitterOf")) == 1
        assert graph.edges("other") == []

    def test_edges_from_to(self, graph):
        assert [r.record_id for r in graph.edges_from("R1")] == ["E1"]
        assert [r.record_id for r in graph.edges_to("D1")] == ["E1"]
        assert graph.edges_from("D1") == []
        assert graph.edges_from("UNKNOWN") == []

    def test_has_edge(self, graph):
        assert graph.has_edge("R1", "D1")
        assert graph.has_edge("R1", "D1", "submitterOf")
        assert not graph.has_edge("R1", "D1", "approvalOf")
        assert not graph.has_edge("D1", "R1")

    def test_parallel_edges_of_different_types(self, graph):
        graph.add_relation_record(
            RelationRecord.create(
                "E2", "App01", "generates", source_id="R1", target_id="D1"
            )
        )
        assert graph.edge_count == 2
        assert graph.has_edge("R1", "D1", "generates")
        assert graph.has_edge("R1", "D1", "submitterOf")

    def test_subgraph(self, graph):
        graph.add_node_record(TaskRecord.create("T1", "App01", "submission"))
        sub = graph.subgraph(["R1", "D1"])
        assert sub.node_count == 2
        assert sub.edge_count == 1
        assert "T1" not in sub

    def test_census(self, graph):
        census = graph.census()
        assert census["node:Resource"] == 1
        assert census["node:Data"] == 1
        assert census["edge:submitterOf"] == 1


class TestBuildGraph:
    @pytest.fixture
    def store(self):
        store = ProvenanceStore()
        store.append(person())
        store.append(requisition())
        store.append(submitter_edge())
        store.append(person("R2", app_id="App02"))
        store.append(requisition("D2", app_id="App02"))
        # Dangling: target was never captured (partial visibility).
        store.append(
            submitter_edge("E2", source="R2", target="GONE", app_id="App02")
        )
        return store

    def test_build_whole_store(self, store):
        report = BuildReport()
        graph = build_graph(store, report=report)
        assert graph.node_count == 4
        assert graph.edge_count == 1
        assert report.dangling_count == 1
        assert report.dangling_relations == ["E2"]

    def test_build_single_trace(self, store):
        graph = build_trace_graph(store, "App01")
        assert graph.node_count == 2
        assert graph.edge_count == 1
        assert graph.name == "App01"

    def test_build_trace_with_dangling(self, store):
        report = BuildReport()
        graph = build_trace_graph(store, "App02", report=report)
        assert graph.node_count == 2
        assert graph.edge_count == 0
        assert report.dangling_count == 1
