"""Tests for ids, clock, and the error hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.clock import SimulatedClock, format_timestamp
from repro.ids import IdFactory, trace_app_id


class TestIdFactory:
    def test_per_prefix_counters(self):
        ids = IdFactory()
        assert ids.next("PE") == "PE1"
        assert ids.next("PE") == "PE2"
        assert ids.next("REL") == "REL1"
        assert ids.next("PE") == "PE3"

    def test_width_padding(self):
        ids = IdFactory()
        assert ids.next("App", width=2) == "App01"
        assert ids.next("App", width=2) == "App02"

    def test_reset(self):
        ids = IdFactory()
        ids.next("X")
        ids.reset()
        assert ids.next("X") == "X1"

    def test_trace_app_id_convention(self):
        assert trace_app_id(1) == "App01"
        assert trace_app_id(42) == "App42"
        assert trace_app_id(123) == "App123"

    @given(st.integers(min_value=1, max_value=200))
    def test_ids_unique_within_prefix(self, count):
        ids = IdFactory()
        produced = [ids.next("N") for __ in range(count)]
        assert len(set(produced)) == count


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock(10)
        assert clock.now() == 10
        assert clock.advance(5) == 15
        assert clock.now() == 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(-1)
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_at_least_only_moves_forward(self):
        clock = SimulatedClock(100)
        assert clock.at_least(50) == 100
        assert clock.at_least(150) == 150

    def test_format_timestamp(self):
        assert format_timestamp(0) == "0.00:00:00"
        assert format_timestamp(86400 + 3661) == "1.01:01:01"

    @given(st.integers(min_value=0, max_value=10**9))
    def test_format_parses_back(self, seconds):
        text = format_timestamp(seconds)
        days, clock_part = text.split(".", 1)
        hours, minutes, secs = clock_part.split(":")
        reconstructed = (
            int(days) * 86400
            + int(hours) * 3600
            + int(minutes) * 60
            + int(secs)
        )
        assert reconstructed == seconds


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or (
                    obj is errors.ReproError
                ), name

    def test_subsystem_branches(self):
        assert issubclass(errors.SchemaViolation, errors.ModelError)
        assert issubclass(errors.DuplicateRecordId, errors.StoreError)
        assert issubclass(errors.BalSyntaxError, errors.BalError)
        assert issubclass(errors.BalCompileError, errors.BalError)
        assert issubclass(errors.BalError, errors.BrmsError)
        assert issubclass(errors.BindingError, errors.ControlError)

    def test_bal_syntax_error_location(self):
        error = errors.BalSyntaxError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_bal_syntax_error_without_location(self):
        error = errors.BalSyntaxError("bad token")
        assert "line" not in str(error)
