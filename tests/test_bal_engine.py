"""Integration tests: compiling and evaluating rules against trace graphs.

The central test reproduces the paper's worked internal control (New
Position Open: a new-position requisition needs general-manager approval)
against compliant, violating, and inapplicable traces.
"""

import pytest

from repro.brms.bal.compiler import BalCompiler
from repro.brms.engine import RuleEngine, RuleVerdict
from repro.errors import RuleEngineError
from tests.conftest import build_hiring_trace

PAPER_CONTROL = """
definitions
  set 'the current job request' to a Job Requisition
      where the requisition ID of this Job Requisition is <string ID> ;
  set 'the approval' to the approval of 'the current job request' ;
if
  all of the following conditions are true :
    - the position type of 'the current job request' is "new" ,
    - 'the approval' is not null ,
    - the candidate list of 'the current job request' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "new position lacks GM approval or candidate search evidence"
"""


@pytest.fixture
def engine(hiring_xom, hiring_vocabulary):
    return RuleEngine(hiring_xom, hiring_vocabulary)


@pytest.fixture
def control(hiring_vocabulary):
    return BalCompiler(hiring_vocabulary).compile(
        "gm-approval", PAPER_CONTROL
    )


class TestPaperControl:
    def test_compliant_trace_satisfied(self, engine, control):
        trace = build_hiring_trace("App01")
        outcome = engine.evaluate(
            control, trace, parameters={"string ID": "Req-App01"}
        )
        assert outcome.verdict is RuleVerdict.SATISFIED
        assert outcome.condition_value is True
        assert outcome.alerts == []

    def test_missing_approval_not_satisfied(self, engine, control):
        trace = build_hiring_trace("App02", with_approval=False)
        outcome = engine.evaluate(
            control, trace, parameters={"string ID": "Req-App02"}
        )
        assert outcome.verdict is RuleVerdict.NOT_SATISFIED
        assert outcome.alerts == [
            "new position lacks GM approval or candidate search evidence"
        ]

    def test_missing_candidates_not_satisfied(self, engine, control):
        trace = build_hiring_trace("App03", with_candidates=False)
        outcome = engine.evaluate(
            control, trace, parameters={"string ID": "Req-App03"}
        )
        assert outcome.verdict is RuleVerdict.NOT_SATISFIED

    def test_existing_position_needs_no_approval(self, engine, control):
        # condition's first bullet is false -> else branch -> not satisfied.
        # The realistic control for existing positions is a separate rule;
        # here we exercise the raw condition semantics.
        trace = build_hiring_trace(
            "App04", position_type="existing", with_approval=False
        )
        outcome = engine.evaluate(
            control, trace, parameters={"string ID": "Req-App04"}
        )
        assert outcome.verdict is RuleVerdict.NOT_SATISFIED

    def test_unmatched_anchor_not_applicable(self, engine, control):
        trace = build_hiring_trace("App05")
        outcome = engine.evaluate(
            control, trace, parameters={"string ID": "Req-OTHER"}
        )
        assert outcome.verdict is RuleVerdict.NOT_APPLICABLE
        assert outcome.condition_value is None

    def test_bound_node_ids_reported(self, engine, control):
        trace = build_hiring_trace("App06")
        outcome = engine.evaluate(
            control, trace, parameters={"string ID": "Req-App06"}
        )
        assert outcome.bindings["the current job request"] == "App06-D1"
        assert outcome.bindings["the approval"] == "App06-D2"
        assert set(outcome.bound_node_ids) == {"App06-D1", "App06-D2"}

    def test_unbound_parameter_raises(self, engine, control):
        trace = build_hiring_trace("App07")
        with pytest.raises(RuleEngineError):
            engine.evaluate(control, trace)


class TestVerdictRefinements:
    def test_undetermined_when_concept_unobservable(self, engine, control):
        trace = build_hiring_trace("App08")
        outcome = engine.evaluate(
            control,
            trace,
            parameters={"string ID": "Req-App08"},
            observable_types={"person", "submission"},  # no jobrequisition
        )
        assert outcome.verdict is RuleVerdict.UNDETERMINED

    def test_observable_concepts_evaluate_normally(self, engine, control):
        trace = build_hiring_trace("App09")
        outcome = engine.evaluate(
            control,
            trace,
            parameters={"string ID": "Req-App09"},
            observable_types={
                "jobrequisition",
                "approvalstatus",
                "candidatelist",
                "person",
            },
        )
        assert outcome.verdict is RuleVerdict.SATISFIED


class TestLanguageSemantics:
    def compile_and_run(self, vocabulary, engine, text, trace, **parameters):
        compiled = BalCompiler(vocabulary).compile("t", text)
        return engine.evaluate(compiled, trace, parameters=parameters)

    def test_exists_condition(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App10")
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            'if there is an approval status where the status of this is '
            '"approved" then the internal control is satisfied',
            trace,
        )
        assert outcome.verdict is RuleVerdict.SATISFIED

    def test_there_is_no(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App11", with_approval=False)
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            "if there is no approval status then "
            "the internal control is not satisfied "
            "else the internal control is satisfied",
            trace,
        )
        assert outcome.verdict is RuleVerdict.NOT_SATISFIED

    def test_navigation_chain_through_relation(
        self, hiring_vocabulary, engine
    ):
        trace = build_hiring_trace("App12")
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            "definitions set 'req' to a Job Requisition ; "
            "if the name of the submitter of 'req' is \"Joe Doe\" "
            "then the internal control is satisfied",
            trace,
        )
        assert outcome.verdict is RuleVerdict.SATISFIED

    def test_null_propagates_through_navigation(
        self, hiring_vocabulary, engine
    ):
        trace = build_hiring_trace("App13", with_approval=False)
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            "definitions set 'req' to a Job Requisition ; "
            "set 'status' to the status of the approval of 'req' ; "
            "if 'status' is null then the internal control is not satisfied "
            "else the internal control is satisfied",
            trace,
        )
        assert outcome.verdict is RuleVerdict.NOT_SATISFIED

    def test_arithmetic_and_count(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App14")
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            "definitions set 'list' to a Candidate List ; "
            "if the count of 'list' is at least 2 + 1 "
            "then the internal control is satisfied",
            trace,
        )
        assert outcome.verdict is RuleVerdict.SATISFIED  # count == 4

    def test_one_of(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App15")
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            "definitions set 'req' to a Job Requisition ; "
            'if the position type of \'req\' is one of ("new", "backfill") '
            "then the internal control is satisfied",
            trace,
        )
        assert outcome.verdict is RuleVerdict.SATISFIED

    def test_comparison_with_missing_attribute_is_false(
        self, hiring_vocabulary, engine
    ):
        trace = build_hiring_trace("App16")
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            "definitions set 'req' to a Job Requisition ; "
            "if the dept of 'req' is more than 5 "
            "then the internal control is satisfied",
            trace,
        )
        # dept is the string "Dept501": cross-type comparison is false.
        assert outcome.verdict is RuleVerdict.NOT_SATISFIED

    def test_assign_action_records_env_value(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App17")
        outcome = self.compile_and_run(
            hiring_vocabulary,
            engine,
            "if 1 is 1 then set 'score' to 2 * 21",
            trace,
        )
        assert outcome.env_values["score"] == 42
        # No explicit SetStatus: condition true defaults to satisfied.
        assert outcome.verdict is RuleVerdict.SATISFIED

    def test_navigation_over_scalar_raises(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App18")
        compiled = BalCompiler(hiring_vocabulary).compile(
            "t",
            "definitions set 'req' to a Job Requisition ; "
            "set 'x' to the position type of 'req' ; "
            "if the submitter of 'x' is null "
            "then the internal control is satisfied",
        )
        with pytest.raises(RuleEngineError):
            engine.evaluate(compiled, trace)

    def test_evaluate_many(self, hiring_vocabulary, engine):
        compiled = BalCompiler(hiring_vocabulary).compile(
            "t",
            "definitions set 'req' to a Job Requisition ; "
            "if the approval of 'req' is not null "
            "then the internal control is satisfied",
        )
        traces = [
            build_hiring_trace("AppA"),
            build_hiring_trace("AppB", with_approval=False),
        ]
        outcomes = engine.evaluate_many(compiled, traces)
        assert [o.verdict for o in outcomes] == [
            RuleVerdict.SATISFIED,
            RuleVerdict.NOT_SATISFIED,
        ]
        assert [o.trace_id for o in outcomes] == ["AppA", "AppB"]


class TestRepository:
    def test_author_deploy_retire_lifecycle(self, hiring_vocabulary):
        from repro.brms.repository import RuleRepository, RuleState

        repo = RuleRepository(BalCompiler(hiring_vocabulary))
        v1 = repo.author(
            "gm", "if 1 is 1 then the internal control is satisfied"
        )
        assert v1.version == 1 and v1.state is RuleState.DRAFT
        deployed = repo.deploy("gm")
        assert deployed.state is RuleState.DEPLOYED
        assert repo.deployed("gm").version == 1

        v2 = repo.author(
            "gm", "if 2 is 2 then the internal control is satisfied"
        )
        assert v2.version == 2
        repo.deploy("gm", 2)
        assert repo.deployed("gm").version == 2
        assert repo.get("gm", 1).state is RuleState.RETIRED

        repo.retire("gm")
        assert repo.deployed("gm") is None
        assert len(repo.history("gm")) == 2

    def test_author_invalid_rule_fails_fast(self, hiring_vocabulary):
        from repro.brms.repository import RuleRepository
        from repro.errors import BalCompileError

        repo = RuleRepository(BalCompiler(hiring_vocabulary))
        with pytest.raises(BalCompileError):
            repo.author(
                "bad",
                "definitions set 'x' to an Invoice ; "
                "if 'x' is null then the internal control is satisfied",
            )

    def test_lifecycle_errors(self, hiring_vocabulary):
        from repro.brms.repository import RuleRepository
        from repro.errors import DeploymentError

        repo = RuleRepository(BalCompiler(hiring_vocabulary))
        with pytest.raises(DeploymentError):
            repo.deploy("ghost")
        with pytest.raises(DeploymentError):
            repo.get("ghost")
        repo.author("r", "if 1 is 1 then the internal control is satisfied")
        with pytest.raises(DeploymentError):
            repo.retire("r")  # never deployed
        with pytest.raises(DeploymentError):
            repo.get("r", 5)
