"""Tests for quantified existence: ``there are at least N <Concept> …``."""

import pytest

from repro.brms.bal import ast
from repro.brms.bal.compiler import BalCompiler
from repro.brms.bal.parser import parse_rule
from repro.brms.engine import RuleEngine, RuleVerdict
from repro.errors import BalCompileError, BalSyntaxError
from repro.model.records import DataRecord
from tests.conftest import build_hiring_trace


class TestParsing:
    def test_at_least(self, hiring_vocabulary):
        rule = parse_rule(
            "if there are at least 2 approval status "
            "then the internal control is satisfied",
            hiring_vocabulary,
        )
        condition = rule.condition
        assert isinstance(condition, ast.Quantified)
        assert condition.op == "ge"
        assert condition.count == 2
        assert condition.concept == "Approval Status"

    def test_at_most_and_exactly(self, hiring_vocabulary):
        for text, op in (("at most 3", "le"), ("exactly 1", "eq")):
            rule = parse_rule(
                f"if there are {text} candidate list "
                "then the internal control is satisfied",
                hiring_vocabulary,
            )
            assert rule.condition.op == op

    def test_with_where_clause(self, hiring_vocabulary):
        rule = parse_rule(
            "if there are at least 1 approval status "
            'where the status of this is "approved" '
            "then the internal control is satisfied",
            hiring_vocabulary,
        )
        assert rule.condition.where is not None

    def test_render_roundtrip(self, hiring_vocabulary):
        text = (
            "if there are at least 2 approval status "
            'where the status of this is "approved" '
            "then the internal control is satisfied"
        )
        rule = parse_rule(text, hiring_vocabulary)
        assert parse_rule(rule.render(), hiring_vocabulary) == rule

    def test_missing_count_rejected(self, hiring_vocabulary):
        with pytest.raises(BalSyntaxError):
            parse_rule(
                "if there are at least approval status "
                "then the internal control is satisfied",
                hiring_vocabulary,
            )

    def test_concepts_collected_for_compile_check(self, hiring_vocabulary):
        compiled = BalCompiler(hiring_vocabulary).compile(
            "q",
            "if there are at least 1 candidate list "
            "then the internal control is satisfied",
        )
        assert compiled.concepts == ("Candidate List",)

    def test_unknown_concept_in_quantifier_rejected(self, hiring_vocabulary):
        with pytest.raises(BalCompileError):
            BalCompiler(hiring_vocabulary).compile(
                "q",
                "if there are at least 1 invoice "
                "then the internal control is satisfied",
            )


class TestEvaluation:
    @pytest.fixture
    def engine(self, hiring_xom, hiring_vocabulary):
        return RuleEngine(hiring_xom, hiring_vocabulary)

    def run(self, vocabulary, engine, text, trace):
        compiled = BalCompiler(vocabulary).compile("q", text)
        return engine.evaluate(compiled, trace).verdict

    def test_at_least_satisfied(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App01")
        verdict = self.run(
            hiring_vocabulary,
            engine,
            "if there are at least 1 approval status "
            "then the internal control is satisfied",
            trace,
        )
        assert verdict is RuleVerdict.SATISFIED

    def test_at_least_not_met(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App02", with_approval=False)
        verdict = self.run(
            hiring_vocabulary,
            engine,
            "if there are at least 1 approval status "
            "then the internal control is satisfied",
            trace,
        )
        assert verdict is RuleVerdict.NOT_SATISFIED

    def test_at_most_counts_matches_only(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App03")
        trace.add_node_record(
            DataRecord.create(
                "App03-D9",
                "App03",
                "approvalstatus",
                attributes={"reqid": "Req-App03", "status": "rejected"},
            )
        )
        verdict = self.run(
            hiring_vocabulary,
            engine,
            "if there are at most 1 approval status "
            'where the status of this is "approved" '
            "then the internal control is satisfied",
            trace,
        )
        assert verdict is RuleVerdict.SATISFIED

    def test_exactly(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App04")
        verdict = self.run(
            hiring_vocabulary,
            engine,
            "if there are exactly 1 candidate list "
            "then the internal control is satisfied",
            trace,
        )
        assert verdict is RuleVerdict.SATISFIED

    def test_quantifier_evidence_is_touched(
        self, hiring_vocabulary, hiring_xom
    ):
        engine = RuleEngine(hiring_xom, hiring_vocabulary)
        trace = build_hiring_trace("App05")
        compiled = BalCompiler(hiring_vocabulary).compile(
            "q",
            "if there are at least 1 approval status "
            "then the internal control is satisfied",
        )
        outcome = engine.evaluate(compiled, trace)
        assert "App05-D2" in outcome.touched_nodes

    def test_dual_approval_control_scenario(self, hiring_vocabulary, engine):
        # A realistic use: high-stakes requisitions need TWO approvals.
        trace = build_hiring_trace("App06")
        verdict = self.run(
            hiring_vocabulary,
            engine,
            "definitions set 'req' to a Job Requisition ; "
            "if there are at least 2 approval status "
            "where the requisition ID of this is "
            "the requisition ID of 'req' "
            "then the internal control is satisfied "
            "else the internal control is not satisfied",
            trace,
        )
        assert verdict is RuleVerdict.NOT_SATISFIED  # only one approval
