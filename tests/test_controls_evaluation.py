"""Integration tests: evaluator, binder, deployment, dashboard.

These exercise the full §III flow: author a control in BAL, evaluate it
against stored traces, materialize control-point subgraphs, and watch the
dashboard.
"""

import pytest

from repro.controls.authoring import ControlAuthoringTool
from repro.controls.binding import CONTROL_NODE_TYPE, ControlBinder
from repro.controls.control import ControlSeverity
from repro.controls.dashboard import ComplianceDashboard
from repro.controls.deployment import ControlDeployment
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.status import ComplianceStatus
from repro.errors import DeploymentError
from repro.graph.build import build_trace_graph
from repro.store.store import ProvenanceStore
from tests.conftest import build_hiring_trace

GM_CONTROL = """
definitions
  set 'req' to a Job Requisition where the position type of this is "new" ;
if
  all of the following conditions are true :
    - the approval of 'req' is not null ,
    - the candidate list of 'req' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "new position without GM approval evidence"
"""


def populate_store(model, traces):
    """Copy prepared trace graphs into a model-validated store."""
    store = ProvenanceStore(model=model)
    for graph in traces:
        for record in sorted(graph.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for relation in sorted(graph.edges(), key=lambda r: r.record_id):
            store.append(relation)
    return store


@pytest.fixture
def store(hiring_model):
    return populate_store(
        hiring_model,
        [
            build_hiring_trace("App01"),  # compliant
            build_hiring_trace("App02", with_approval=False),  # violation
            build_hiring_trace("App03", position_type="existing"),  # n/a
        ],
    )


@pytest.fixture
def tool(hiring_vocabulary):
    tool = ControlAuthoringTool(hiring_vocabulary)
    tool.author(
        "gm-approval",
        GM_CONTROL,
        severity=ControlSeverity.HIGH,
        description="New positions need GM approval before candidate search",
    )
    tool.deploy("gm-approval")
    return tool


class TestComplianceEvaluator:
    def test_statuses_per_trace(self, store, tool, hiring_xom,
                                hiring_vocabulary):
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        control = tool.control("gm-approval")
        results = evaluator.check_all_traces(control)
        statuses = {r.trace_id: r.status for r in results}
        assert statuses == {
            "App01": ComplianceStatus.SATISFIED,
            "App02": ComplianceStatus.VIOLATED,
            "App03": ComplianceStatus.NOT_APPLICABLE,
        }

    def test_run_many_controls(self, store, tool, hiring_xom,
                               hiring_vocabulary):
        tool.author(
            "has-submitter",
            "definitions set 'req' to a Job Requisition ; "
            "if the submitter of 'req' is not null "
            "then the internal control is satisfied",
        )
        tool.deploy("has-submitter")
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        results = evaluator.run(tool.deployed_controls())
        assert len(results) == 6  # 2 controls x 3 traces
        summary = evaluator.summary(results)
        assert summary["has-submitter"]["satisfied"] == 3
        assert summary["gm-approval"]["violated"] == 1

    def test_violations_filter(self, store, tool, hiring_xom,
                               hiring_vocabulary):
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        results = evaluator.check_all_traces(tool.control("gm-approval"))
        violations = evaluator.violations(results)
        assert [v.trace_id for v in violations] == ["App02"]
        assert violations[0].alerts == [
            "new position without GM approval evidence"
        ]

    def test_checked_at_is_trace_horizon(self, store, tool, hiring_xom,
                                         hiring_vocabulary):
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        result = evaluator.check_trace(tool.control("gm-approval"), "App01")
        assert result.checked_at == 30  # candidate list timestamp


class TestControlBinder:
    def test_bind_creates_custom_node_and_edges(
        self, store, tool, hiring_xom, hiring_vocabulary
    ):
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        result = evaluator.check_trace(tool.control("gm-approval"), "App01")
        binder = ControlBinder(store)
        node = binder.bind(result)

        assert result.control_node_id == node.record_id
        assert node.entity_type == CONTROL_NODE_TYPE
        assert node.get("control") == "gm-approval"
        assert node.get("status") == "satisfied"

        edges = store.relations_from(node.record_id)
        targets = {e.target_id for e in edges}
        assert targets == {"App01-D1", "App01-D2", "App01-D3"}
        assert all(e.entity_type == "checks" for e in edges)

    def test_control_point_is_subgraph_of_trace_graph(
        self, store, tool, hiring_xom, hiring_vocabulary
    ):
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        result = evaluator.check_trace(tool.control("gm-approval"), "App01")
        ControlBinder(store).bind(result)
        graph = build_trace_graph(store, "App01")
        control_nodes = graph.nodes(entity_type=CONTROL_NODE_TYPE)
        assert len(control_nodes) == 1
        control_id = control_nodes[0].record_id
        assert graph.has_edge(control_id, "App01-D1", "checks")
        assert graph.has_edge(control_id, "App01-D2", "checks")

    def test_bound_results_query(self, store, tool, hiring_xom,
                                 hiring_vocabulary):
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        binder = ControlBinder(store)
        for result in evaluator.check_all_traces(tool.control("gm-approval")):
            binder.bind(result)
        assert len(binder.bound_results()) == 3
        assert len(binder.bound_results("App02")) == 1
        violated = binder.bound_results("App02")[0]
        assert violated.get("status") == "violated"


class TestControlDeployment:
    def test_deploy_checks_existing_traces(
        self, store, tool, hiring_xom, hiring_vocabulary
    ):
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        deployment.deploy(tool.control("gm-approval"))
        assert deployment.latest("gm-approval", "App01").status is (
            ComplianceStatus.SATISFIED
        )
        assert deployment.latest("gm-approval", "App02").status is (
            ComplianceStatus.VIOLATED
        )

    def test_new_evidence_flips_violation(
        self, hiring_model, tool, hiring_xom, hiring_vocabulary
    ):
        # A trace starts without approval (violated), then the approval
        # arrives and the deployed control re-checks to satisfied.
        incomplete = build_hiring_trace("App10", with_approval=False)
        store = populate_store(hiring_model, [incomplete])
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        deployment.deploy(tool.control("gm-approval"))
        assert deployment.latest("gm-approval", "App10").status is (
            ComplianceStatus.VIOLATED
        )

        complete = build_hiring_trace("App10")
        store.append(complete.node("App10-D2"))
        for relation in complete.edges("approvalOf"):
            store.append(relation)

        assert deployment.latest("gm-approval", "App10").status is (
            ComplianceStatus.SATISFIED
        )

    def test_irrelevant_records_do_not_recheck(
        self, hiring_model, tool, hiring_xom, hiring_vocabulary
    ):
        store = populate_store(hiring_model, [build_hiring_trace("App20")])
        deployment = ControlDeployment(
            store, hiring_xom, hiring_vocabulary, bind_results=False
        )
        deployment.deploy(tool.control("gm-approval"))
        baseline = deployment.rechecks
        # A task record is irrelevant to the control's concepts.
        from repro.model.records import TaskRecord

        store.append(
            TaskRecord.create("App20-T9", "App20", "submission")
        )
        assert deployment.rechecks == baseline

    def test_own_control_rows_do_not_recheck(
        self, store, tool, hiring_xom, hiring_vocabulary
    ):
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        deployment.deploy(tool.control("gm-approval"))
        baseline = deployment.rechecks
        # Binding results appended control rows already; no extra rechecks
        # may have been triggered by them.
        assert deployment.rechecks == baseline

    def test_duplicate_deploy_rejected(self, store, tool, hiring_xom,
                                       hiring_vocabulary):
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        deployment.deploy(tool.control("gm-approval"))
        with pytest.raises(DeploymentError):
            deployment.deploy(tool.control("gm-approval"))

    def test_deploy_with_unbound_parameters_rejected(
        self, store, hiring_vocabulary, hiring_xom
    ):
        tool = ControlAuthoringTool(hiring_vocabulary)
        tool.author(
            "parametrized",
            "definitions set 'req' to a Job Requisition where "
            "the requisition ID of this is <ID> ; "
            "if 'req' is not null then the internal control is satisfied",
        )
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        with pytest.raises(DeploymentError):
            deployment.deploy(tool.control("parametrized"))

    def test_undeploy(self, store, tool, hiring_xom, hiring_vocabulary):
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        deployment.deploy(tool.control("gm-approval"))
        deployment.undeploy("gm-approval")
        with pytest.raises(DeploymentError):
            deployment.undeploy("gm-approval")


class TestDashboard:
    def test_live_feed_via_deployment(self, store, tool, hiring_xom,
                                      hiring_vocabulary):
        dashboard = ComplianceDashboard()
        dashboard.register_control(tool.control("gm-approval"))
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        deployment.subscribe(dashboard.record)
        deployment.deploy(tool.control("gm-approval"))

        kpi = dashboard.kpi("gm-approval")
        assert kpi.satisfied == 1
        assert kpi.violated == 1
        assert kpi.not_applicable == 1
        assert kpi.compliance_rate == 0.5

    def test_recheck_replaces_not_accumulates(self, hiring_model, tool,
                                              hiring_xom, hiring_vocabulary):
        incomplete = build_hiring_trace("App30", with_approval=False)
        store = populate_store(hiring_model, [incomplete])
        dashboard = ComplianceDashboard()
        deployment = ControlDeployment(store, hiring_xom, hiring_vocabulary)
        deployment.subscribe(dashboard.record)
        deployment.deploy(tool.control("gm-approval"))
        assert dashboard.kpi("gm-approval").violated == 1

        complete = build_hiring_trace("App30")
        store.append(complete.node("App30-D2"))
        for relation in complete.edges("approvalOf"):
            store.append(relation)

        kpi = dashboard.kpi("gm-approval")
        assert kpi.violated == 0
        assert kpi.satisfied == 1
        assert kpi.checked == 1

    def test_render_contains_kpis_and_exceptions(self, store, tool,
                                                 hiring_xom,
                                                 hiring_vocabulary):
        dashboard = ComplianceDashboard()
        dashboard.register_control(tool.control("gm-approval"))
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        dashboard.record_all(
            evaluator.check_all_traces(tool.control("gm-approval"))
        )
        text = dashboard.render()
        assert "COMPLIANCE DASHBOARD" in text
        assert "gm-approval" in text
        assert "EXCEPTIONS (1)" in text
        assert "App02" in text
        assert "high" in text

    def test_exceptions_sorted_by_severity(self, store, hiring_vocabulary,
                                           hiring_xom):
        tool = ControlAuthoringTool(hiring_vocabulary)
        tool.author(
            "low-ctl",
            "definitions set 'req' to a Job Requisition ; "
            "if the approval of 'req' is not null "
            "then the internal control is satisfied",
            severity=ControlSeverity.LOW,
        )
        tool.author(
            "critical-ctl",
            "definitions set 'req' to a Job Requisition ; "
            "if the candidate list of 'req' is not null "
            "then the internal control is satisfied",
            severity=ControlSeverity.CRITICAL,
        )
        dashboard = ComplianceDashboard()
        for name in ("low-ctl", "critical-ctl"):
            dashboard.register_control(tool.control(name))
        evaluator = ComplianceEvaluator(store, hiring_xom, hiring_vocabulary)
        bad_store_results = []
        for name in ("low-ctl", "critical-ctl"):
            bad_store_results.extend(
                evaluator.check_all_traces(tool.control(name),
                                           trace_ids=["App02"])
            )
        # App02 lacks approval only; candidate list exists -> only low-ctl
        # violates. Force both by also checking a candidates-free trace.
        dashboard.record_all(bad_store_results)
        exceptions = dashboard.exceptions()
        assert [e.control_name for e in exceptions] == ["low-ctl"]


class TestBatchedDeployment:
    def test_dirty_marking_and_flush(self, hiring_model, tool, hiring_xom,
                                     hiring_vocabulary):
        store = populate_store(hiring_model, [])
        deployment = ControlDeployment(
            store, hiring_xom, hiring_vocabulary,
            bind_results=False, immediate=False,
        )
        deployment.deploy(tool.control("gm-approval"))
        assert deployment.rechecks == 0

        trace = build_hiring_trace("App40")
        for record in sorted(trace.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for relation in sorted(trace.edges(), key=lambda r: r.record_id):
            store.append(relation)
        # Many relevant records arrived, but the pair is dirty only once.
        assert deployment.dirty_count == 1
        assert deployment.latest("gm-approval", "App40") is None

        results = deployment.flush()
        assert len(results) == 1
        assert deployment.rechecks == 1
        assert deployment.latest("gm-approval", "App40").status is (
            ComplianceStatus.SATISFIED
        )
        assert deployment.dirty_count == 0
        # Flushing again is a no-op.
        assert deployment.flush() == []

    def test_undeployed_dirty_pair_skipped(self, hiring_model, tool,
                                           hiring_xom, hiring_vocabulary):
        store = populate_store(hiring_model, [build_hiring_trace("App41")])
        deployment = ControlDeployment(
            store, hiring_xom, hiring_vocabulary,
            bind_results=False, immediate=False,
        )
        deployment.deploy(tool.control("gm-approval"))
        assert deployment.dirty_count == 1
        deployment.undeploy("gm-approval")
        assert deployment.flush() == []

    def test_immediate_mode_rechecks_per_relevant_record(
        self, hiring_model, tool, hiring_xom, hiring_vocabulary
    ):
        store = populate_store(hiring_model, [])
        batched = ControlDeployment(
            store, hiring_xom, hiring_vocabulary,
            bind_results=False, immediate=False,
        )
        batched.deploy(tool.control("gm-approval"))

        store2 = populate_store(hiring_model, [])
        immediate = ControlDeployment(
            store2, hiring_xom, hiring_vocabulary,
            bind_results=False, immediate=True,
        )
        immediate.deploy(tool.control("gm-approval"))

        trace = build_hiring_trace("App42")
        for target in (store, store2):
            graph = build_hiring_trace("App42")
            for record in sorted(graph.nodes(), key=lambda r: r.record_id):
                target.append(record)
            for relation in sorted(graph.edges(),
                                   key=lambda r: r.record_id):
                target.append(relation)
        batched.flush()
        assert batched.rechecks == 1
        assert immediate.rechecks > batched.rechecks
