"""Fuzzing the BAL front end: garbage must fail cleanly, never crash.

An authoring tool feeds arbitrary keystrokes into the lexer and parser;
the only acceptable failure mode is :class:`BalSyntaxError` (or a clean
parse).  Anything else — recursion blowups, IndexError, hangs — would
surface as editor crashes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brms.bal.parser import parse_rule
from repro.brms.bal.tokens import tokenize
from repro.errors import BalSyntaxError

# Raw character soup, biased toward BAL's own alphabet.
bal_chars = st.sampled_from(
    list("abcdefghij \n\"'<>()+-*/;:,.0123456789_")
    + ["if", " then ", " else ", " is ", " not ", " null ", " the ",
       " of ", " set ", " to ", " where ", " all ", " any ", " there "]
)
soup = st.lists(bal_chars, max_size=60).map("".join)

# Token-level soup: syntactically valid tokens in random order.
token_texts = st.sampled_from(
    ["if", "then", "else", "definitions", "set", "to", "a", "where",
     "the", "of", "is", "not", "null", "and", "or", "all", "any",
     "there", "are", "at", "least", "control", "internal", "satisfied",
     "alert", "this", "'x'", "'y'", "<p>", '"s"', "1", "2.5", ";", ":",
     ",", "-", "(", ")", "+", "*", "/"]
)
token_soup = st.lists(token_texts, max_size=30).map(" ".join)


class TestLexerTotality:
    @given(text=soup)
    @settings(max_examples=300, deadline=None)
    def test_lexer_raises_only_bal_errors(self, text):
        try:
            tokens = tokenize(text)
        except BalSyntaxError:
            return
        assert tokens[-1].value == ""  # EOF present on success


class TestParserTotality:
    @given(text=soup)
    @settings(max_examples=300, deadline=None)
    def test_parser_raises_only_bal_errors(self, text):
        try:
            parse_rule(text)
        except BalSyntaxError:
            pass

    @given(text=token_soup)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_raises_only_bal_errors(self, text):
        try:
            rule = parse_rule(text)
        except BalSyntaxError:
            return
        # A clean parse must render and re-parse.
        reparsed = parse_rule(rule.render())
        assert reparsed.render() == parse_rule(reparsed.render()).render()

    @given(
        prefix=st.sampled_from(
            ["if 1 is 1 then the control is satisfied"]
        ),
        junk=token_soup,
    )
    @settings(max_examples=100, deadline=None)
    def test_valid_rule_with_trailing_junk_rejected(self, prefix, junk):
        if not junk.strip():
            return
        try:
            rule = parse_rule(f"{prefix} {junk}")
        except BalSyntaxError:
            return
        # Junk that happens to extend the action list legally is fine —
        # but it must still render/reparse cleanly.
        assert parse_rule(rule.render()) is not None
