"""Fuzzing the BAL front end and the execution back ends.

Two layers:

- **front-end totality** — arbitrary keystrokes into the lexer and
  parser; the only acceptable failure mode is :class:`BalSyntaxError`
  (or a clean parse).  Anything else — recursion blowups, IndexError,
  hangs — would surface as editor crashes.
- **differential execution** — generated *valid* rules over the hiring
  vocabulary run through both the AST interpreter and the closure
  codegen back end; every observable (verdict, condition value, alerts,
  bindings, environment values, touched nodes — and error type/message
  when evaluation fails) must match exactly.  The interpreter is the
  reference semantics; this is the compiled path's correctness oracle.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.brms.bal.compiler import BalCompiler
from repro.brms.bal.parser import parse_rule
from repro.brms.bal.tokens import tokenize
from repro.brms.engine import RuleEngine
from repro.brms.xom import XomObject
from repro.errors import BalError, BalSyntaxError, RuleEngineError
from repro.graph.build import build_trace_graph
from repro.graph.graph import ProvenanceGraph
from repro.processes import hiring
from repro.processes.violations import ViolationPlan

from tests.conftest import derive_seed

# Raw character soup, biased toward BAL's own alphabet.
bal_chars = st.sampled_from(
    list("abcdefghij \n\"'<>()+-*/;:,.0123456789_")
    + ["if", " then ", " else ", " is ", " not ", " null ", " the ",
       " of ", " set ", " to ", " where ", " all ", " any ", " there "]
)
soup = st.lists(bal_chars, max_size=60).map("".join)

# Token-level soup: syntactically valid tokens in random order.
token_texts = st.sampled_from(
    ["if", "then", "else", "definitions", "set", "to", "a", "where",
     "the", "of", "is", "not", "null", "and", "or", "all", "any",
     "there", "are", "at", "least", "control", "internal", "satisfied",
     "alert", "this", "'x'", "'y'", "<p>", '"s"', "1", "2.5", ";", ":",
     ",", "-", "(", ")", "+", "*", "/"]
)
token_soup = st.lists(token_texts, max_size=30).map(" ".join)


class TestLexerTotality:
    @given(text=soup)
    @settings(max_examples=300, deadline=None)
    def test_lexer_raises_only_bal_errors(self, text):
        try:
            tokens = tokenize(text)
        except BalSyntaxError:
            return
        assert tokens[-1].value == ""  # EOF present on success


class TestParserTotality:
    @given(text=soup)
    @settings(max_examples=300, deadline=None)
    def test_parser_raises_only_bal_errors(self, text):
        try:
            parse_rule(text)
        except BalSyntaxError:
            pass

    @given(text=token_soup)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_raises_only_bal_errors(self, text):
        try:
            rule = parse_rule(text)
        except BalSyntaxError:
            return
        # A clean parse must render and re-parse.
        reparsed = parse_rule(rule.render())
        assert reparsed.render() == parse_rule(reparsed.render()).render()

    @given(
        prefix=st.sampled_from(
            ["if 1 is 1 then the control is satisfied"]
        ),
        junk=token_soup,
    )
    @settings(max_examples=100, deadline=None)
    def test_valid_rule_with_trailing_junk_rejected(self, prefix, junk):
        if not junk.strip():
            return
        try:
            rule = parse_rule(f"{prefix} {junk}")
        except BalSyntaxError:
            return
        # Junk that happens to extend the action list legally is fine —
        # but it must still render/reparse cleanly.
        assert parse_rule(rule.render()) is not None


# -- differential execution: interpreter vs closure codegen -------------------

# Navigation phrases per concept, split into value attributes (strings /
# numbers) and correlation links (other records, or None when the edge was
# never captured) so generated comparisons type-check often enough.
_ATTRS = {
    "Job Requisition": (
        "requisition ID", "position type", "offered position", "dept",
        "general manager", "submitter email", "timestamp",
    ),
    "Approval Status": (
        "requisition ID", "status", "approver", "approver email",
        "timestamp",
    ),
    "Candidate List": ("requisition ID", "count", "timestamp"),
    "Notification": ("requisition ID", "recipient", "timestamp"),
    "Person": ("name", "email", "role", "timestamp"),
}
_LINKS = {
    "Job Requisition": (
        "approval", "candidate list", "submitter", "notification",
    ),
    "Approval Status": ("submitter",),
    "Candidate List": ("submitter",),
    "Notification": ("submitter",),
    "Person": (),
}
_LINK_TARGET = {
    "approval": "Approval Status",
    "candidate list": "Candidate List",
    "submitter": "Person",
    "notification": "Notification",
}
_STRINGS = ('"new"', '"replacement"', '"approved"', '"rejected"',
            '"gm"', '"hr"', '"nobody@nowhere"', '""')
_NUMBERS = ("0", "1", "2", "5", "1000")

_concepts = st.sampled_from(sorted(_ATTRS))
_strings = st.sampled_from(_STRINGS)
_numbers = st.sampled_from(_NUMBERS)


def _navigation(draw, subject, concept):
    phrases = _ATTRS[concept] + _LINKS[concept]
    return f"the {draw(st.sampled_from(phrases))} of {subject}"


def _atomic(draw, subject, concept):
    """One comparison about *subject* (an expression of type *concept*)."""
    kind = draw(st.sampled_from(
        ("null", "string", "number", "one_of", "exists", "cross")
    ))
    if kind == "null":
        nav = _navigation(draw, subject, concept)
        op = draw(st.sampled_from(("is null", "is not null")))
        return f"{nav} {op}"
    if kind == "string":
        attr = draw(st.sampled_from(_ATTRS[concept]))
        op = draw(st.sampled_from(("is", "is not")))
        return f"the {attr} of {subject} {op} {draw(_strings)}"
    if kind == "number":
        attr = draw(st.sampled_from(("timestamp", "count"))
                    if concept == "Candidate List"
                    else st.just("timestamp"))
        op = draw(st.sampled_from(
            ("is at least", "is at most", "is more than", "is less than",
             "is after", "is before")
        ))
        left = f"the {attr} of {subject}"
        if draw(st.booleans()):
            left = f"{left} {draw(st.sampled_from('+-*'))} {draw(_numbers)}"
        return f"{left} {op} {draw(_numbers)}"
    if kind == "one_of":
        attr = draw(st.sampled_from(_ATTRS[concept]))
        options = draw(st.lists(_strings, min_size=1, max_size=3))
        return (f"the {attr} of {subject} is one of "
                f"( {' , '.join(options)} )")
    if kind == "exists":
        other = draw(_concepts)
        count = draw(st.sampled_from(("", "at least 1 ", "at least 2 ",
                                      "at most 1 ")))
        where = ""
        if draw(st.booleans()):
            where = " where " + _atomic(draw, f"this {other}", other)
        verb = "are" if count else "is a"
        return f"there {verb} {count}{other}{where}"
    # cross: compare two navigations of the same subject.
    left = _navigation(draw, subject, concept)
    right = _navigation(draw, subject, concept)
    op = draw(st.sampled_from(("is", "is not")))
    return f"{left} {op} {right}"


def _condition(draw, subjects, depth=0):
    """A condition over any of the in-scope (subject, concept) pairs."""
    subject, concept = draw(st.sampled_from(subjects))
    if depth >= 1 or draw(st.integers(0, 2)) == 0:
        return _atomic(draw, subject, concept)
    kind = draw(st.sampled_from(("all", "any", "not")))
    if kind == "not":
        return "not " + _atomic(draw, subject, concept)
    branches = [
        _condition(draw, subjects, depth + 1)
        for __ in range(draw(st.integers(2, 3)))
    ]
    bullets = " , ".join(f"- {branch}" for branch in branches)
    return (f"{kind} of the following conditions are true : {bullets}")


@st.composite
def generated_rules(draw):
    """A valid-looking BAL rule over the hiring vocabulary."""
    anchor = draw(_concepts)
    subjects = [("'the thing'", anchor)]
    where = ""
    if draw(st.booleans()):
        where = ("\n      where "
                 + _atomic(draw, f"this {anchor}", anchor))
    defs = [f"  set 'the thing' to a {anchor}{where} ;"]
    if _LINKS[anchor] and draw(st.booleans()):
        link = draw(st.sampled_from(_LINKS[anchor]))
        defs.append(f"  set 'the extra' to the {link} of 'the thing' ;")
        subjects.append(("'the extra'", _LINK_TARGET[link]))
    condition = _condition(draw, subjects)
    then_status = draw(st.sampled_from(("satisfied", "not satisfied")))
    else_status = draw(st.sampled_from(("satisfied", "not satisfied")))
    then_lines = [f"  the internal control is {then_status}"]
    else_lines = [f"  the internal control is {else_status}"]
    if draw(st.booleans()):
        then_lines.append('  alert "then-branch fired"')
    if draw(st.booleans()):
        else_lines.append('  alert "else-branch fired"')
    return "\n".join(
        ["definitions"]
        + defs
        + ["if", f"  {condition}", "then"]
        + [" ;\n".join(then_lines)]
        + ["else"]
        + [" ;\n".join(else_lines)]
    )


def _norm_value(value):
    if isinstance(value, XomObject):
        return ("obj", value.record.record_id)
    if isinstance(value, (list, tuple)):
        return tuple(_norm_value(item) for item in value)
    return value


def _observe(engine, compiled, graph, parameters=None):
    """Everything externally visible about one evaluation."""
    try:
        outcome = engine.evaluate(compiled, graph, parameters=parameters)
    except RuleEngineError as exc:
        return ("error", type(exc).__name__, str(exc))
    return (
        "ok",
        outcome.verdict.value,
        outcome.condition_value,
        tuple(outcome.alerts),
        tuple(sorted(outcome.bindings.items())),
        tuple(sorted(
            (var, _norm_value(value))
            for var, value in outcome.env_values.items()
        )),
        tuple(outcome.touched_nodes),
    )


_DIFF_STACK = None


def _diff_stack():
    """Shared compiler/engines/graphs (built once across fuzz examples)."""
    global _DIFF_STACK
    if _DIFF_STACK is None:
        sim = hiring.workload().simulate(
            cases=3,
            seed=derive_seed("bal-fuzz-stack"),
            violations=ViolationPlan.uniform(
                list(hiring.VIOLATION_KINDS), 0.5
            ),
        )
        graphs = [
            build_trace_graph(sim.store, trace_id)
            for trace_id in sim.store.app_ids()
        ]
        # An empty trace exercises NOT_APPLICABLE / vacuous quantifiers.
        graphs.append(ProvenanceGraph(name="empty-trace"))
        _DIFF_STACK = (
            BalCompiler(sim.vocabulary),
            RuleEngine(sim.xom, sim.vocabulary, execution_mode="interpret"),
            RuleEngine(sim.xom, sim.vocabulary, execution_mode="compiled"),
            graphs,
        )
    return _DIFF_STACK


class TestDifferentialExecution:
    @given(text=generated_rules())
    @settings(max_examples=500, deadline=None)
    def test_compiled_matches_interpreter(self, text):
        compiler, interpreter, compiled_engine, graphs = _diff_stack()
        try:
            compiled = compiler.compile("fuzz-diff", text)
        except BalError:
            assume(False)
        # The generator only emits constructs codegen covers: a gap here
        # is a compiler regression, not an acceptable fallback.
        assert compiled_engine.program_for(compiled) is not None, (
            compiled_engine.codegen_gaps
        )
        for graph in graphs:
            assert _observe(interpreter, compiled, graph) == _observe(
                compiled_engine, compiled, graph
            ), text

    @given(
        text=generated_rules(),
        wanted=st.sampled_from(("new", "replacement", 3)),
    )
    @settings(max_examples=50, deadline=None)
    def test_parameterized_rules_match(self, text, wanted):
        compiler, interpreter, compiled_engine, graphs = _diff_stack()
        # Splice a parameter comparison into the generated condition.
        text = text.replace(
            "if\n",
            "if\n  all of the following conditions are true : "
            "- the position type of 'the thing' is <wanted> , - ",
            1,
        )
        try:
            compiled = compiler.compile("fuzz-param", text)
        except BalError:
            assume(False)
        assert "wanted" in compiled.parameters
        parameters = {"wanted": wanted}
        for graph in graphs:
            assert _observe(
                interpreter, compiled, graph, parameters
            ) == _observe(compiled_engine, compiled, graph, parameters), text
