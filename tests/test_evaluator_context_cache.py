"""Regression tests for the evaluator's shared per-trace context cache.

PR 1's evaluator rebuilt each trace's graph (and re-wrapped its XOM
objects) on *every* check — ``check_trace`` in a loop paid one
``build_trace_graph`` per call.  These tests pin the fix: all public
entry points route through one frame cache, appends invalidate exactly
the touched trace, historical (``as_of``) views bypass the cache, and
the parallel sweep returns the same rows as the serial one.
"""

import dataclasses

import pytest

import repro.controls.evaluator as evaluator_module
from repro.controls.evaluator import ComplianceEvaluator
from repro.graph.build import build_trace_graph
from repro.processes import hiring
from repro.processes.violations import ViolationPlan


@pytest.fixture
def sim():
    return hiring.workload().simulate(
        cases=4,
        seed=9,
        violations=ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.3),
    )


@pytest.fixture
def evaluator(sim):
    return ComplianceEvaluator(
        sim.store, sim.xom, sim.vocabulary,
        observable_types=sim.observable_types,
    )


def _count_builds(monkeypatch):
    """Monkeypatch the evaluator's graph builders to count invocations."""
    calls = {"n": 0}
    real_build = build_trace_graph

    def counting_build(*args, **kwargs):
        calls["n"] += 1
        return real_build(*args, **kwargs)

    monkeypatch.setattr(
        evaluator_module, "build_trace_graph", counting_build
    )
    return calls


def _normalize(results):
    return [
        (
            r.control_name, r.trace_id, r.status, r.checked_at,
            tuple(r.alerts), tuple(sorted(r.bound_nodes.items())),
            tuple(r.touched_nodes),
        )
        for r in results
    ]


class TestCheckTraceCaching:
    def test_repeat_checks_build_graph_once(self, sim, evaluator, monkeypatch):
        calls = _count_builds(monkeypatch)
        trace_id = sim.store.app_ids()[0]
        first = evaluator.check_trace(sim.controls[0], trace_id)
        for control in sim.controls:
            evaluator.check_trace(control, trace_id)
        assert calls["n"] == 1
        assert evaluator.graph_builds == 1
        # And the repeat check is deterministic.
        assert evaluator.check_trace(sim.controls[0], trace_id) == first

    def test_distinct_traces_build_once_each(self, sim, evaluator, monkeypatch):
        calls = _count_builds(monkeypatch)
        for trace_id in sim.store.app_ids():
            evaluator.check_trace(sim.controls[0], trace_id)
            evaluator.check_trace(sim.controls[1], trace_id)
        assert calls["n"] == len(sim.store.app_ids())

    def test_run_then_check_trace_reuses_frames(self, sim, evaluator):
        evaluator.run(sim.controls)
        builds_after_sweep = evaluator.graph_builds
        assert builds_after_sweep == len(sim.store.app_ids())
        for trace_id in sim.store.app_ids():
            evaluator.check_trace(sim.controls[0], trace_id)
        evaluator.run(sim.controls)
        assert evaluator.graph_builds == builds_after_sweep

    def test_as_of_bypasses_cache(self, sim, evaluator):
        trace_id = sim.store.app_ids()[0]
        evaluator.check_trace(sim.controls[0], trace_id)
        assert evaluator.graph_builds == 1
        evaluator.check_trace(sim.controls[0], trace_id, as_of=10)
        evaluator.check_trace(sim.controls[0], trace_id, as_of=10)
        # Historical views never enter or read the cache...
        assert evaluator.graph_builds == 3
        # ...and the live frame is still there.
        evaluator.check_trace(sim.controls[1], trace_id)
        assert evaluator.graph_builds == 3

    def test_explicit_graph_skips_cache(self, sim, evaluator):
        trace_id = sim.store.app_ids()[0]
        graph = build_trace_graph(sim.store, trace_id)
        evaluator.check_trace(sim.controls[0], trace_id, graph=graph)
        assert evaluator.graph_builds == 0


class TestInvalidation:
    def test_append_invalidates_only_touched_trace(self, sim, evaluator):
        ids = sim.store.app_ids()
        evaluator.run(sim.controls)
        assert evaluator.graph_builds == len(ids)
        # Grow one trace by cloning one of its existing records.
        victim = ids[0]
        template = max(
            (r for r in sim.store.records() if r.app_id == victim),
            key=lambda r: r.timestamp,
        )
        sim.store.append(
            dataclasses.replace(
                template,
                record_id=f"{template.record_id}-clone",
                timestamp=template.timestamp + 1000,
            )
        )
        evaluator.run(sim.controls)
        # Exactly one frame was rebuilt, and its result sees the append.
        assert evaluator.graph_builds == len(ids) + 1
        refreshed = evaluator.check_trace(sim.controls[0], victim)
        assert refreshed.checked_at == template.timestamp + 1000

    def test_clear_context_cache_rebuilds_everything(self, sim, evaluator):
        evaluator.run(sim.controls)
        evaluator.clear_context_cache()
        evaluator.run(sim.controls)
        assert evaluator.graph_builds == 2 * len(sim.store.app_ids())

    def test_share_contexts_off_rebuilds_every_check(self, sim):
        rebuilding = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary,
            observable_types=sim.observable_types,
            share_contexts=False,
        )
        trace_id = sim.store.app_ids()[0]
        rebuilding.check_trace(sim.controls[0], trace_id)
        rebuilding.check_trace(sim.controls[0], trace_id)
        assert rebuilding.graph_builds == 2


class TestSweepParity:
    def test_modes_produce_identical_rows(self, sim):
        def rows(**kwargs):
            jobs = kwargs.pop("jobs", None)
            ev = ComplianceEvaluator(
                sim.store, sim.xom, sim.vocabulary,
                observable_types=sim.observable_types, **kwargs
            )
            return _normalize(ev.run(sim.controls, jobs=jobs))

        reference = rows(execution_mode="interpret", share_contexts=False)
        assert rows(execution_mode="interpret") == reference
        assert rows(execution_mode="compiled") == reference
        assert rows(execution_mode="compiled", jobs=2) == reference

    def test_parallel_sweep_restricted_ids_stays_serial(self, sim, evaluator):
        ids = sim.store.app_ids()[:2]
        # trace_ids restriction forces the serial per-trace path even with
        # jobs set; rows still come back in (trace, control) order.
        results = evaluator.run(sim.controls, trace_ids=ids, jobs=4)
        assert [r.trace_id for r in results] == [
            tid for tid in ids for __ in sim.controls
        ]


class TestForkUnavailable:
    """Platforms without ``fork`` degrade to serial — loudly, once, and
    with byte-identical results."""

    def _serial_reference(self, sim):
        ev = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary,
            observable_types=sim.observable_types,
        )
        return _normalize(ev.run(sim.controls))

    def test_missing_os_fork_warns_once_and_matches_serial(
        self, sim, monkeypatch
    ):
        reference = self._serial_reference(sim)
        monkeypatch.delattr(evaluator_module.os, "fork", raising=False)
        ev = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary,
            observable_types=sim.observable_types,
        )
        ev.parallel_mode = "always"  # would fork if it could
        with pytest.warns(RuntimeWarning) as captured:
            got = _normalize(ev.run(sim.controls, jobs=4))
        fork_warnings = [
            w for w in captured if "os.fork" in str(w.message)
        ]
        assert len(fork_warnings) == 1
        assert got == reference

    def test_spawn_only_platform_warns_and_matches_serial(
        self, sim, monkeypatch
    ):
        reference = self._serial_reference(sim)

        def no_fork_context(method=None):
            raise ValueError(f"cannot find context for {method!r}")

        monkeypatch.setattr(
            evaluator_module.multiprocessing, "get_context", no_fork_context
        )
        ev = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary,
            observable_types=sim.observable_types,
        )
        ev.parallel_mode = "always"
        with pytest.warns(
            RuntimeWarning, match="start method is unavailable"
        ):
            got = _normalize(ev.run(sim.controls, jobs=4))
        assert got == reference
