"""Tests for temporal controls via the built-in ``timestamp`` phrase."""

import pytest

from repro.brms.bal.compiler import BalCompiler
from repro.brms.engine import RuleEngine, RuleVerdict
from tests.conftest import build_hiring_trace


@pytest.fixture
def engine(hiring_xom, hiring_vocabulary):
    return RuleEngine(hiring_xom, hiring_vocabulary)


class TestBuiltinTimestamp:
    def test_every_concept_verbalizes_timestamp(self, hiring_vocabulary):
        for concept in hiring_vocabulary.concept_labels():
            member = hiring_vocabulary.find_member(concept, "timestamp")
            assert member is not None, concept

    def test_timestamp_reads_record_time(self, hiring_vocabulary,
                                         hiring_xom):
        trace = build_hiring_trace("App01")
        requisition = hiring_xom.wrap(trace.node("App01-D1"), trace)
        member = hiring_vocabulary.find_member("Job Requisition",
                                               "timestamp")
        assert member.execute(requisition) == 10

    def test_declared_timestamp_attribute_wins(self):
        from repro.brms.verbalization import Verbalizer
        from repro.brms.xom import ExecutableObjectModel
        from repro.model.builder import ModelBuilder

        model = (
            ModelBuilder("m").data("thing", "Thing", timestamp=int).build()
        )
        bom = Verbalizer(ExecutableObjectModel(model)).verbalize()
        member = bom.concept("Thing").member_by_phrase("timestamp")
        assert member.attribute == "timestamp"  # the declared one


class TestOrderingControls:
    APPROVAL_BEFORE_SEARCH = """
    definitions
      set 'req' to a Job Requisition
          where the position type of this Job Requisition is "new" ;
      set 'the approval' to the approval of 'req' ;
      set 'the list' to the candidate list of 'req' ;
    if
      all of the following conditions are true :
        - 'the approval' is not null ,
        - 'the list' is not null ,
        - the timestamp of 'the approval' is before
          the timestamp of 'the list'
    then
      the internal control is satisfied
    else
      the internal control is not satisfied ;
      alert "candidate search started before GM approval"
    """

    def test_compliant_ordering(self, hiring_vocabulary, engine):
        trace = build_hiring_trace("App01")  # approval t=20, list t=30
        compiled = BalCompiler(hiring_vocabulary).compile(
            "order", self.APPROVAL_BEFORE_SEARCH
        )
        outcome = engine.evaluate(compiled, trace)
        assert outcome.verdict is RuleVerdict.SATISFIED

    def test_violated_ordering(self, hiring_vocabulary, engine):
        from repro.model.records import DataRecord, RelationRecord

        # Build a trace where the candidate list PREDATES the approval.
        trace = build_hiring_trace("App02", with_candidates=False)
        trace.add_node_record(
            DataRecord.create(
                "App02-D3",
                "App02",
                "candidatelist",
                timestamp=5,  # before the approval at t=20
                attributes={"reqid": "Req-App02", "count": 2},
            )
        )
        trace.add_relation_record(
            RelationRecord.create(
                "App02-E5",
                "App02",
                "candidatesFor",
                source_id="App02-D3",
                target_id="App02-D1",
            )
        )
        compiled = BalCompiler(hiring_vocabulary).compile(
            "order", self.APPROVAL_BEFORE_SEARCH
        )
        outcome = engine.evaluate(compiled, trace)
        assert outcome.verdict is RuleVerdict.NOT_SATISFIED
        assert outcome.alerts == [
            "candidate search started before GM approval"
        ]

    def test_sla_control_with_arithmetic(self, hiring_vocabulary, engine):
        # Approval must land within 15 time units of submission.
        trace = build_hiring_trace("App03")  # submission t=10, approval t=20
        compiled = BalCompiler(hiring_vocabulary).compile(
            "sla",
            "definitions set 'req' to a Job Requisition ; "
            "set 'the approval' to the approval of 'req' ; "
            "if the timestamp of 'the approval' is at most "
            "the timestamp of 'req' + 15 "
            "then the internal control is satisfied",
        )
        outcome = engine.evaluate(compiled, trace)
        assert outcome.verdict is RuleVerdict.SATISFIED


class TestGraphml:
    def test_graphml_export(self):
        from repro.graph.serialize import to_graphml

        trace = build_hiring_trace("App01")
        text = to_graphml(trace)
        assert text.startswith("<?xml")
        assert "graphml" in text
        assert "App01-D1" in text
        assert "submitterOf" in text
