"""Unit tests for provenance record classes."""

import pytest

from repro.errors import SchemaViolation, UnknownRecordClass
from repro.model.records import (
    CustomRecord,
    DataRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
    TaskRecord,
    record_from_parts,
)


def make_data(**overrides):
    args = dict(
        record_id="PE3",
        app_id="App01",
        entity_type="jobrequisition",
        timestamp=100,
        attributes={"reqid": "Req001", "type": "new"},
    )
    args.update(overrides)
    return DataRecord.create(**args)


class TestRecordClass:
    def test_from_wire_case_insensitive(self):
        assert RecordClass.from_wire("data") is RecordClass.DATA
        assert RecordClass.from_wire("Resource") is RecordClass.RESOURCE
        assert RecordClass.from_wire("RELATION") is RecordClass.RELATION

    def test_from_wire_unknown_raises(self):
        with pytest.raises(UnknownRecordClass):
            RecordClass.from_wire("thing")

    def test_relation_is_not_node(self):
        assert not RecordClass.RELATION.is_node
        for cls in (
            RecordClass.DATA,
            RecordClass.TASK,
            RecordClass.RESOURCE,
            RecordClass.CUSTOM,
        ):
            assert cls.is_node


class TestNodeRecords:
    def test_data_record_class(self):
        assert make_data().record_class is RecordClass.DATA

    def test_attribute_access(self):
        record = make_data()
        assert record.get("reqid") == "Req001"
        assert record.get("missing") is None
        assert record.get("missing", "x") == "x"
        assert record.has("type")
        assert not record.has("nope")

    def test_attributes_returns_fresh_dict(self):
        record = make_data()
        attrs = record.attributes
        attrs["reqid"] = "tampered"
        assert record.get("reqid") == "Req001"

    def test_with_attributes_returns_new_record(self):
        record = make_data()
        enriched = record.with_attributes(dept="Dept501")
        assert enriched.get("dept") == "Dept501"
        assert not record.has("dept")
        assert enriched.record_id == record.record_id

    def test_records_are_hashable_and_equal_by_value(self):
        assert make_data() == make_data()
        assert hash(make_data()) == hash(make_data())

    def test_empty_record_id_rejected(self):
        with pytest.raises(SchemaViolation):
            make_data(record_id="")

    def test_empty_app_id_rejected(self):
        with pytest.raises(SchemaViolation):
            make_data(app_id="")

    def test_empty_entity_type_rejected(self):
        with pytest.raises(SchemaViolation):
            make_data(entity_type="")

    def test_task_start_end(self):
        task = TaskRecord.create(
            record_id="PE2",
            app_id="App01",
            entity_type="submission",
            attributes={"start": 10, "end": 25},
        )
        assert task.start == 10
        assert task.end == 25

    def test_task_start_end_absent(self):
        task = TaskRecord.create(
            record_id="PE2", app_id="App01", entity_type="submission"
        )
        assert task.start is None
        assert task.end is None

    def test_resource_and_custom_classes(self):
        resource = ResourceRecord.create("PE1", "App01", "person")
        custom = CustomRecord.create("PE9", "App01", "controlpoint")
        assert resource.record_class is RecordClass.RESOURCE
        assert custom.record_class is RecordClass.CUSTOM


class TestRelationRecord:
    def test_create(self):
        relation = RelationRecord.create(
            record_id="PE5",
            app_id="App01",
            entity_type="submitterOf",
            source_id="PE1",
            target_id="PE3",
        )
        assert relation.record_class is RecordClass.RELATION
        assert relation.source_id == "PE1"
        assert relation.target_id == "PE3"

    def test_missing_endpoint_rejected(self):
        with pytest.raises(SchemaViolation):
            RelationRecord.create(
                record_id="PE5",
                app_id="App01",
                entity_type="submitterOf",
                source_id="",
                target_id="PE3",
            )


class TestRecordFromParts:
    def test_rebuild_each_node_class(self):
        for record_class in (
            RecordClass.DATA,
            RecordClass.TASK,
            RecordClass.RESOURCE,
            RecordClass.CUSTOM,
        ):
            record = record_from_parts(
                record_class, "X1", "App01", "thing", 5, {"a": "b"}
            )
            assert record.record_class is record_class
            assert record.get("a") == "b"

    def test_rebuild_relation(self):
        record = record_from_parts(
            RecordClass.RELATION,
            "X1",
            "App01",
            "actor",
            source_id="A",
            target_id="B",
        )
        assert isinstance(record, RelationRecord)
        assert record.source_id == "A"
