"""Unit tests for control artifacts, statuses, and the authoring tool."""

import pytest

from repro.brms.bal.compiler import BalCompiler
from repro.brms.engine import RuleOutcome, RuleVerdict
from repro.controls.authoring import ControlAuthoringTool
from repro.controls.control import ControlSeverity, InternalControl
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.errors import ControlError


RULE = (
    "definitions set 'req' to a Job Requisition where "
    "the requisition ID of this is <ID> ; "
    "if the approval of 'req' is not null "
    "then the internal control is satisfied"
)


@pytest.fixture
def compiled(hiring_vocabulary):
    return BalCompiler(hiring_vocabulary).compile("gm-approval", RULE)


class TestComplianceStatus:
    def test_verdict_mapping(self):
        assert (
            ComplianceStatus.from_verdict(RuleVerdict.SATISFIED)
            is ComplianceStatus.SATISFIED
        )
        assert (
            ComplianceStatus.from_verdict(RuleVerdict.NOT_SATISFIED)
            is ComplianceStatus.VIOLATED
        )
        assert (
            ComplianceStatus.from_verdict(RuleVerdict.NOT_APPLICABLE)
            is ComplianceStatus.NOT_APPLICABLE
        )
        assert (
            ComplianceStatus.from_verdict(RuleVerdict.UNDETERMINED)
            is ComplianceStatus.UNDETERMINED
        )

    def test_conclusive(self):
        assert ComplianceStatus.SATISFIED.is_conclusive
        assert ComplianceStatus.VIOLATED.is_conclusive
        assert not ComplianceStatus.NOT_APPLICABLE.is_conclusive
        assert not ComplianceStatus.UNDETERMINED.is_conclusive

    def test_from_outcome(self):
        outcome = RuleOutcome(
            rule_name="r",
            trace_id="App01",
            verdict=RuleVerdict.NOT_SATISFIED,
            alerts=["missing approval"],
            bindings={"req": "D1"},
        )
        result = ComplianceResult.from_outcome(outcome, checked_at=5)
        assert result.status is ComplianceStatus.VIOLATED
        assert result.checked_at == 5
        assert result.bound_nodes == {"req": "D1"}
        assert "missing approval" in result.describe()


class TestInternalControl:
    def test_nameless_rejected(self, compiled):
        with pytest.raises(ControlError):
            InternalControl(name="", compiled=compiled)

    def test_unknown_default_parameter_rejected(self, compiled):
        with pytest.raises(ControlError):
            InternalControl(
                name="c", compiled=compiled,
                parameter_defaults={"nope": 1},
            )

    def test_unbound_parameters(self, compiled):
        control = InternalControl(name="c", compiled=compiled)
        assert control.unbound_parameters() == ["ID"]
        assert control.unbound_parameters({"ID": "Req1"}) == []

    def test_resolve_parameters_merges_defaults(self, compiled):
        control = InternalControl(
            name="c", compiled=compiled, parameter_defaults={"ID": "X"}
        )
        assert control.resolve_parameters() == {"ID": "X"}
        assert control.resolve_parameters({"ID": "Y"}) == {"ID": "Y"}

    def test_resolve_missing_raises(self, compiled):
        control = InternalControl(name="c", compiled=compiled)
        with pytest.raises(ControlError):
            control.resolve_parameters()

    def test_specialized(self, compiled):
        control = InternalControl(name="c", compiled=compiled)
        special = control.specialized("Req9", ID="Req9")
        assert special.name == "c[Req9]"
        assert special.parameter_defaults == {"ID": "Req9"}
        assert special.compiled is control.compiled
        assert control.parameter_defaults == {}

    def test_source_exposed(self, compiled):
        control = InternalControl(name="c", compiled=compiled)
        assert control.source == RULE


class TestAuthoringTool:
    @pytest.fixture
    def tool(self, hiring_vocabulary):
        return ControlAuthoringTool(hiring_vocabulary)

    def test_vocabulary_menus(self, tool):
        menus = tool.vocabulary_menus()
        assert (
            "the general manager of the job requisition"
            in menus["Job Requisition"]
        )

    def test_validate_ok(self, tool):
        assert tool.validate(
            "if 1 is 1 then the internal control is satisfied"
        ) == []

    def test_validate_syntax_issue(self, tool):
        issues = tool.validate("if 1 is then")
        assert len(issues) == 1
        assert issues[0].kind == "syntax"
        assert issues[0].line >= 1

    def test_validate_vocabulary_issue(self, tool):
        issues = tool.validate(
            "definitions set 'x' to an Invoice ; "
            "if 'x' is null then the internal control is satisfied"
        )
        assert len(issues) == 1
        assert issues[0].kind == "vocabulary"
        assert "Invoice" in issues[0].message

    def test_author_and_deploy(self, tool):
        control = tool.author(
            "gm-approval",
            RULE,
            description="GM must approve new positions",
            severity=ControlSeverity.HIGH,
            owner="compliance team",
            parameter_defaults={"ID": "Req-1"},
        )
        assert control.severity is ControlSeverity.HIGH
        assert tool.deployed_controls() == []
        tool.deploy("gm-approval")
        assert tool.deployed_controls() == [control]

    def test_reauthor_creates_new_version(self, tool):
        tool.author("c", "if 1 is 1 then the internal control is satisfied")
        tool.author("c", "if 2 is 2 then the internal control is satisfied")
        assert len(tool.repository.history("c")) == 2
        assert "2 is 2" in tool.control("c").source

    def test_deploy_unknown_raises(self, tool):
        with pytest.raises(ControlError):
            tool.deploy("ghost")

    def test_control_lookup_unknown_raises(self, tool):
        with pytest.raises(ControlError):
            tool.control("ghost")

    def test_retire(self, tool):
        tool.author("c", "if 1 is 1 then the internal control is satisfied")
        tool.deploy("c")
        tool.retire("c")
        assert tool.deployed_controls() == []
