"""Tests for automatic per-instance control deployment (§IV future work)."""

import pytest

from repro.controls.autodeploy import AutoSpecializer, ParameterBinding
from repro.controls.authoring import ControlAuthoringTool
from repro.controls.deployment import ControlDeployment
from repro.controls.status import ComplianceStatus
from repro.errors import ControlError
from repro.store.store import ProvenanceStore
from tests.conftest import build_hiring_trace

PARAMETRIZED_CONTROL = """
definitions
  set 'the request' to a Job Requisition
      where the requisition ID of this Job Requisition is <ID> ;
if
  the approval of 'the request' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied
"""


def populate(store, *traces):
    for graph in traces:
        for record in sorted(graph.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for relation in sorted(graph.edges(), key=lambda r: r.record_id):
            store.append(relation)


@pytest.fixture
def setup(hiring_model, hiring_xom, hiring_vocabulary):
    store = ProvenanceStore(model=hiring_model)
    tool = ControlAuthoringTool(hiring_vocabulary)
    control = tool.author("per-req-approval", PARAMETRIZED_CONTROL)
    deployment = ControlDeployment(
        store, hiring_xom, hiring_vocabulary, bind_results=False
    )
    specializer = AutoSpecializer(deployment, hiring_vocabulary)
    binding = ParameterBinding(
        parameter="ID", concept="Job Requisition", phrase="requisition ID"
    )
    return store, control, deployment, specializer, binding


class TestRegistration:
    def test_binding_must_fill_the_parameter(self, setup, hiring_vocabulary):
        __, control, __, specializer, __ = setup
        wrong = ParameterBinding(
            parameter="OTHER", concept="Job Requisition",
            phrase="requisition ID",
        )
        with pytest.raises(ControlError):
            specializer.register(control, wrong)

    def test_phrase_must_be_an_attribute(self, setup):
        __, control, __, specializer, __ = setup
        relation_phrase = ParameterBinding(
            parameter="ID", concept="Job Requisition", phrase="approval"
        )
        with pytest.raises(ControlError):
            specializer.register(control, relation_phrase)


class TestAutoDeployment:
    def test_existing_instances_specialized_on_register(self, setup):
        store, control, deployment, specializer, binding = setup
        populate(store, build_hiring_trace("App01"),
                 build_hiring_trace("App02", with_approval=False))
        specializer.register(control, binding)
        assert specializer.deployed_instances == 2
        assert specializer.instance_names() == [
            "per-req-approval[Req-App01]",
            "per-req-approval[Req-App02]",
        ]
        ok = deployment.latest("per-req-approval[Req-App01]", "App01")
        bad = deployment.latest("per-req-approval[Req-App02]", "App02")
        assert ok.status is ComplianceStatus.SATISFIED
        assert bad.status is ComplianceStatus.VIOLATED

    def test_future_instances_specialized_on_arrival(self, setup):
        store, control, deployment, specializer, binding = setup
        specializer.register(control, binding)
        assert specializer.deployed_instances == 0
        populate(store, build_hiring_trace("App03"))
        assert specializer.deployed_instances == 1
        result = deployment.latest("per-req-approval[Req-App03]", "App03")
        assert result.status is ComplianceStatus.SATISFIED

    def test_duplicate_keys_deploy_once(self, setup):
        store, control, deployment, specializer, binding = setup
        specializer.register(control, binding)
        populate(store, build_hiring_trace("App04"))
        before = specializer.deployed_instances
        # Re-observing the same requisition (idempotent capture would have
        # dropped it; simulate a second store of the same key in a new
        # trace id to exercise the per-key dedupe).
        assert before == 1

    def test_specialized_control_is_scoped_to_its_instance(self, setup):
        store, control, deployment, specializer, binding = setup
        populate(store, build_hiring_trace("App05"),
                 build_hiring_trace("App06"))
        specializer.register(control, binding)
        # App06's control over App05's trace: anchor unbound -> N/A.
        other = deployment.latest("per-req-approval[Req-App06]", "App05")
        assert other.status is ComplianceStatus.NOT_APPLICABLE
