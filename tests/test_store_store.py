"""Unit tests for the provenance store, indexes, and persistence."""

import pytest

from repro.errors import DuplicateRecordId, RecordNotFound, SchemaViolation
from repro.model.builder import ModelBuilder
from repro.model.records import (
    DataRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
)
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore


def sample_records(app_id="App01"):
    person = ResourceRecord.create(
        "R1-" + app_id, app_id, "person", attributes={"name": "Joe Doe"}
    )
    requisition = DataRecord.create(
        "D1-" + app_id,
        app_id,
        "jobrequisition",
        timestamp=5,
        attributes={"reqid": "Req-" + app_id, "type": "new"},
    )
    relation = RelationRecord.create(
        "E1-" + app_id,
        app_id,
        "submitterOf",
        source_id=person.record_id,
        target_id=requisition.record_id,
    )
    return [person, requisition, relation]


@pytest.fixture(params=[True, False], ids=["indexed", "scan"])
def store(request):
    store = ProvenanceStore(
        indexed=request.param, indexed_attributes={"reqid"}
    )
    store.extend(sample_records("App01"))
    store.extend(sample_records("App02"))
    return store


class TestAppend:
    def test_len(self, store):
        assert len(store) == 6

    def test_duplicate_id_rejected(self, store):
        with pytest.raises(DuplicateRecordId):
            store.append(sample_records("App01")[0])

    def test_get_and_contains(self, store):
        assert "D1-App01" in store
        assert store.get("D1-App01").get("type") == "new"

    def test_get_missing_raises(self, store):
        with pytest.raises(RecordNotFound):
            store.get("nope")

    def test_rows_kept_in_append_order(self, store):
        ids = [row.record_id for row in store.rows()]
        assert ids[:3] == ["R1-App01", "D1-App01", "E1-App01"]

    def test_app_ids_first_seen_order(self, store):
        assert store.app_ids() == ["App01", "App02"]

    def test_observer_called_on_append(self):
        store = ProvenanceStore()
        seen = []
        store.subscribe(seen.append)
        store.extend(sample_records())
        assert len(seen) == 3
        store.unsubscribe(seen.append)
        store.append(
            DataRecord.create("D9", "App01", "jobrequisition")
        )
        assert len(seen) == 3


class TestValidation:
    def test_model_validation_on_append(self):
        model = (
            ModelBuilder("m").data("jobrequisition", "Job Requisition").build()
        )
        store = ProvenanceStore(model=model)
        store.append(DataRecord.create("D1", "App01", "jobrequisition"))
        with pytest.raises(SchemaViolation):
            store.append(DataRecord.create("D2", "App01", "invoice"))


class TestSelect:
    def test_select_by_class(self, store):
        data = store.select(RecordQuery(record_class=RecordClass.DATA))
        assert {r.record_id for r in data} == {"D1-App01", "D1-App02"}

    def test_select_by_app(self, store):
        records = store.select(RecordQuery(app_id="App02"))
        assert all(r.app_id == "App02" for r in records)
        assert len(records) == 3

    def test_select_by_app_and_class(self, store):
        records = store.select(
            RecordQuery(app_id="App01", record_class=RecordClass.RESOURCE)
        )
        assert [r.record_id for r in records] == ["R1-App01"]

    def test_select_by_type_and_attribute(self, store):
        query = RecordQuery(entity_type="jobrequisition").where(
            "reqid", "==", "Req-App02"
        )
        records = store.select(query)
        assert [r.record_id for r in records] == ["D1-App02"]

    def test_select_by_time_window(self, store):
        query = RecordQuery(record_class=RecordClass.DATA, since=1, until=10)
        assert len(store.select(query)) == 2

    def test_select_one(self, store):
        record = store.select_one(RecordQuery(app_id="App01"))
        assert record is not None and record.record_id == "R1-App01"
        assert store.select_one(RecordQuery(app_id="AppXX")) is None

    def test_find_data_convenience(self, store):
        hits = store.find_data("App01", "jobrequisition", type="new")
        assert [r.record_id for r in hits] == ["D1-App01"]

    def test_relations_from_to(self, store):
        outgoing = store.relations_from("R1-App01")
        assert [r.record_id for r in outgoing] == ["E1-App01"]
        incoming = store.relations_to("D1-App01")
        assert [r.record_id for r in incoming] == ["E1-App01"]
        assert store.relations_from("D1-App01") == []


class TestPersistence:
    def test_dump_load_roundtrip(self, store, tmp_path):
        path = str(tmp_path / "store.jsonl")
        count = store.dump(path)
        assert count == 6
        loaded = ProvenanceStore.load(path)
        assert len(loaded) == 6
        assert loaded.get("D1-App02").get("reqid") == "Req-App02"
        relation = loaded.get("E1-App01")
        assert isinstance(relation, RelationRecord)
        assert relation.source_id == "R1-App01"

    def test_load_missing_file_raises(self, tmp_path):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            ProvenanceStore.load(str(tmp_path / "missing.jsonl"))


class TestStoreIndexDirect:
    """Direct tests of the attribute value index path."""

    def test_attribute_index_used_for_equality(self):
        store = ProvenanceStore(indexed=True, indexed_attributes={"reqid"})
        for index in range(20):
            store.append(
                DataRecord.create(
                    f"D{index}", f"App{index:02d}", "jobrequisition",
                    attributes={"reqid": f"R{index}"},
                )
            )
        query = RecordQuery(entity_type="jobrequisition").where(
            "reqid", "==", "R7"
        )
        hits = store.select(query)
        assert [r.record_id for r in hits] == ["D7"]

    def test_unindexed_attribute_falls_back(self):
        store = ProvenanceStore(indexed=True, indexed_attributes=set())
        store.append(
            DataRecord.create(
                "D1", "App01", "jobrequisition",
                attributes={"reqid": "R1"},
            )
        )
        query = RecordQuery(entity_type="jobrequisition").where(
            "reqid", "==", "R1"
        )
        assert len(store.select(query)) == 1

    def test_attribute_index_respects_entity_type(self):
        store = ProvenanceStore(indexed=True, indexed_attributes={"reqid"})
        store.append(
            DataRecord.create(
                "D1", "App01", "jobrequisition",
                attributes={"reqid": "R1"},
            )
        )
        store.append(
            DataRecord.create(
                "D2", "App01", "approvalstatus",
                attributes={"reqid": "R1"},
            )
        )
        query = RecordQuery(entity_type="approvalstatus").where(
            "reqid", "==", "R1"
        )
        assert [r.record_id for r in store.select(query)] == ["D2"]
