"""Tests for as-of (time-travel) evaluation and incident-workload details."""


from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.status import ComplianceStatus
from repro.graph.build import BuildReport, build_trace_graph
from repro.processes import incidents
from repro.processes.violations import ViolationPlan
from tests.conftest import build_hiring_trace


class TestAsOfGraph:
    def test_as_of_hides_later_records(self, hiring_model):
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore(model=hiring_model)
        trace = build_hiring_trace("App01")  # req t=10, approval 20, list 30
        for record in sorted(trace.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for relation in sorted(trace.edges(), key=lambda r: r.record_id):
            store.append(relation)

        at_15 = build_trace_graph(store, "App01", as_of=15)
        assert at_15.nodes(entity_type="jobrequisition")
        assert not at_15.nodes(entity_type="approvalstatus")
        assert not at_15.nodes(entity_type="candidatelist")

        at_25 = build_trace_graph(store, "App01", as_of=25)
        assert at_25.nodes(entity_type="approvalstatus")
        assert not at_25.nodes(entity_type="candidatelist")

        full = build_trace_graph(store, "App01")
        assert full.nodes(entity_type="candidatelist")

    def test_as_of_counts_dangling_relations(self, hiring_model):
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore(model=hiring_model)
        trace = build_hiring_trace("App01")
        for record in sorted(trace.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for relation in sorted(trace.edges(), key=lambda r: r.record_id):
            store.append(relation)
        # Relations were created at t=0 in the fixture; bump a fresh store
        # isn't needed — just verify the report at a cut that removes nodes.
        report = BuildReport()
        build_trace_graph(store, "App01", report=report, as_of=15)
        # approvalOf/candidatesFor edges reference nodes after the cut --
        # wait: fixture relations carry timestamp 0, so they are *in* the
        # window while their endpoints are not: they must count as dangling.
        assert report.dangling_count >= 2


class TestAsOfCompliance:
    def test_compliance_evolves_over_time(self, hiring_model, hiring_xom,
                                          hiring_vocabulary):
        from repro.brms.bal.compiler import BalCompiler
        from repro.controls.control import InternalControl
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore(model=hiring_model)
        trace = build_hiring_trace("App01")
        for record in sorted(trace.nodes(), key=lambda r: r.record_id):
            store.append(record)
        for relation in sorted(trace.edges(), key=lambda r: r.record_id):
            store.append(relation)

        compiled = BalCompiler(hiring_vocabulary).compile(
            "gm",
            "definitions set 'req' to a Job Requisition "
            'where the position type of this is "new" ; '
            "if the approval of 'req' is not null "
            "then the internal control is satisfied",
        )
        control = InternalControl(name="gm", compiled=compiled)
        evaluator = ComplianceEvaluator(store, hiring_xom,
                                        hiring_vocabulary)
        # Before the requisition exists: not applicable.
        assert evaluator.check_trace(control, "App01", as_of=5).status is (
            ComplianceStatus.NOT_APPLICABLE
        )
        # Requisition exists, approval not yet: violated at that date.
        assert evaluator.check_trace(control, "App01", as_of=15).status is (
            ComplianceStatus.VIOLATED
        )
        # After the approval: satisfied.
        assert evaluator.check_trace(control, "App01", as_of=25).status is (
            ComplianceStatus.SATISFIED
        )
        # Full-history default unchanged.
        assert evaluator.check_trace(control, "App01").status is (
            ComplianceStatus.SATISFIED
        )


class TestIncidentSpecifics:
    def test_backdated_closure_detected_only_by_temporal_control(self):
        workload = incidents.workload()
        plan = ViolationPlan.uniform(["close_before_resolve"], 1.0)
        sim = workload.simulate(cases=10, seed=5, violations=plan)
        evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
        results = evaluator.run(sim.controls)
        by_control = {}
        for result in results:
            by_control.setdefault(result.control_name, []).append(result)
        # Every trace violates the temporal control...
        assert all(
            r.status is ComplianceStatus.VIOLATED
            for r in by_control["close-after-resolve"]
        )
        # ...while the structural controls see nothing wrong.
        assert not any(
            r.status is ComplianceStatus.VIOLATED
            for r in by_control["p1-escalation"]
        )

    def test_closure_event_timestamp_is_backdated(self):
        workload = incidents.workload()
        plan = ViolationPlan.uniform(["close_before_resolve"], 1.0)
        sim = workload.simulate(cases=5, seed=5, violations=plan)
        for run in sim.runs:
            closures = sim.store.find_data(run.app_id, "closure")
            resolutions = sim.store.find_data(run.app_id, "resolution")
            assert closures and resolutions
            assert closures[0].timestamp < resolutions[0].timestamp

    def test_p3_incidents_not_applicable_for_p1_controls(self):
        case = {"priority": "P3", "violations": set()}
        assert incidents.ground_truth(case, "p1-escalation") is (
            ComplianceStatus.NOT_APPLICABLE
        )
        assert incidents.ground_truth(case, "p1-postmortem") is (
            ComplianceStatus.NOT_APPLICABLE
        )

    def test_open_p1_without_closure_needs_no_postmortem_yet(
        self,
    ):
        # The postmortem control is conditioned on closure existing; an
        # unclosed P1 must not be flagged.  Exercise via ground truth and a
        # manual store cut.
        workload = incidents.workload()
        sim = workload.simulate(cases=8, seed=2)
        evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
        p1_runs = [r for r in sim.runs if r.case["priority"] == "P1"]
        assert p1_runs
        run = p1_runs[0]
        closure = sim.store.find_data(run.app_id, "closure")[0]
        before_close = closure.timestamp - 1
        control = next(
            c for c in sim.controls if c.name == "p1-postmortem"
        )
        result = evaluator.check_trace(
            control, run.app_id, as_of=before_close
        )
        assert result.status is ComplianceStatus.SATISFIED
