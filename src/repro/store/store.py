"""The append-only provenance store.

"The recorder client processes application events, transforms them into
provenance events and records them in the provenance store" (§II.A).  The
store is the *coordination layer* over a pluggable storage backend
(:mod:`repro.store.backends`):

- the physical rows (Table I layout) live in the backend — in-memory lists
  by default, a SQLite table when durability or scale is needed — kept
  verbatim so the table can be re-printed at any time,
- the store enforces append policy (duplicate-id rejection, optional model
  validation), maintains secondary indexes (:mod:`repro.store.index`), and
  notifies registered continuous queries (:mod:`repro.store.continuous`)
  on every append.

Opening a store over a backend that already holds rows (e.g. a SQLite file
written by an earlier run) hydrates the secondary indexes from the existing
rows, so queries and continuous checking behave exactly as if the records
had just been appended.

The store also fronts the backend's **change feed**: every committed row
has a monotonic sequence number (its append position), :meth:`last_seq`
reports the newest one this store has seen, :meth:`changes_since` replays
decoded records after a cursor, and :meth:`sync` folds in rows another
handle wrote to the same backend out-of-band — updating indexes and firing
observers exactly as if the records had been appended here.  Incremental
consumers (the verdict materializer, deployed controls, ``watch``) are all
views over this one feed.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.errors import DuplicateRecordId, QueryError
from repro.faults.points import crash_point
from repro.model.attributes import AttributeValue
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
)
from repro.model.schema import ProvenanceDataModel
from repro.store.backends import StorageBackend, create_backend
from repro.store.columnar import ColumnarCodec
from repro.store.cursor import Cursor, advance_cursor
from repro.store.index import StoreIndex
from repro.store.query import RecordQuery
from repro.store.xmlcodec import StoredRow, XmlCodec, decode_row, encode_row

BackendSpec = Union[None, str, StorageBackend]


class ProvenanceStore:
    """Append-only store of provenance records with query access.

    Args:
        model: optional data model; when given, appends are validated.
        indexed: whether to maintain secondary indexes (E8 ablation knob).
        indexed_attributes: attribute names to value-index (e.g. ``reqid``).
        backend: where the physical rows live — a
            :class:`~repro.store.backends.base.StorageBackend` instance, a
            registry name (``"memory"``, ``"sqlite"``), or ``None`` for the
            in-memory default.
        fast_codec: use the compiled per-(CLASS, record-type) XML codecs
            (:class:`~repro.store.xmlcodec.XmlCodec`) for row encode/decode.
            Byte-identical to the ElementTree path; disable only to measure
            the oracle path (the ingestion benchmark's baseline).
    """

    def __init__(
        self,
        model: Optional[ProvenanceDataModel] = None,
        indexed: bool = True,
        indexed_attributes: Optional[Set[str]] = None,
        backend: BackendSpec = None,
        fast_codec: bool = True,
    ) -> None:
        self.model = model
        self.codec: Optional[XmlCodec] = XmlCodec(model) if fast_codec else None
        # Retained so shard-scoped handles (service ingest lanes) can be
        # built with the same columnar/index configuration.
        self.indexed_attributes: FrozenSet[str] = frozenset(
            indexed_attributes or ()
        )
        if backend is None:
            backend = create_backend("memory")
        elif isinstance(backend, str):
            backend = create_backend(backend)
        self._backend: StorageBackend = backend
        self._backend.set_decoder(self._decode)
        # Columnar sidecar: only worthwhile when the backend persists it,
        # and only sound when the canonical (fast) encoder produced the
        # rows — the oracle-codec ablation path stays XML-only.
        self.columnar: Optional[ColumnarCodec] = None
        if fast_codec and self._backend.accepts_cols():
            self.columnar = ColumnarCodec(model)
            self._backend.bind_columnar(
                self.columnar, indexed_attributes or ()
            )
        self._index: Optional[StoreIndex] = (
            StoreIndex(indexed_attributes) if indexed else None
        )
        self._observers: List[Callable[[ProvenanceRecord], None]] = []
        self._seen_seq = self._backend.last_seq()
        if self._index is not None and self._backend.count():
            self._index.rebuild(self._backend.iter_records())

    @property
    def backend(self) -> StorageBackend:
        """The storage backend holding the physical rows."""
        return self._backend

    @property
    def indexed(self) -> bool:
        """Whether secondary indexes are maintained (E8 ablation knob)."""
        return self._index is not None

    def _decode(self, row: StoredRow) -> ProvenanceRecord:
        if self.codec is not None:
            return self.codec.decode_row(row)
        return decode_row(row, self.model)

    def _encode(self, record: ProvenanceRecord) -> StoredRow:
        if self.codec is not None:
            return self.codec.encode_row(record)
        return encode_row(record)

    # -- append ------------------------------------------------------------

    def append(self, record: ProvenanceRecord) -> StoredRow:
        """Append one record; returns its physical row.

        Raises :class:`DuplicateRecordId` on id reuse and, when a model is
        attached, :class:`~repro.errors.SchemaViolation` on nonconforming
        records.  Observers (continuous queries) run after the row commits.
        """
        if self._backend.contains(record.record_id):
            raise DuplicateRecordId(record.record_id)
        if self.model is not None:
            self.model.validate(record)
        row = self._encode(record)
        cols = (
            self.columnar.encode_cols(row, record)
            if self.columnar is not None
            else None
        )
        self._commit(row, record, cols)
        return row

    def _commit(
        self,
        row: StoredRow,
        record: ProvenanceRecord,
        cols: Optional[str] = None,
    ) -> None:
        """Persist an already-validated (row, record) pair and fan out."""
        crash_point("store.append.before_commit")
        self._backend.append_row(row, record, cols)
        crash_point("store.append.after_commit_before_index")
        self._seen_seq = advance_cursor(
            self._seen_seq, self._backend.shard_index(record.app_id)
        )
        if self._index is not None:
            self._index.add(record)
        for observer in self._observers:
            observer(record)

    def extend(self, records: Iterable[ProvenanceRecord]) -> int:
        """Append many records; returns the count appended."""
        count = 0
        with self.bulk():
            for record in records:
                self.append(record)
                count += 1
        return count

    @contextmanager
    def bulk(self):
        """Batch backend commits across a run of appends.

        Semantics are unchanged — duplicate checks, indexes and observers
        still fire per append — only the backend's transaction boundaries
        widen, which is what makes SQLite appends stream-fast.  Nestable.
        """
        self._backend.begin_bulk()
        crash_point("store.bulk.enter")
        try:
            yield self
        finally:
            # A crash here may supersede an in-flight exception — as a
            # real process death would.
            crash_point("store.bulk.exit")
            self._backend.end_bulk()

    def subscribe(self, observer: Callable[[ProvenanceRecord], None]) -> None:
        """Register a callback invoked after every append."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[ProvenanceRecord], None]) -> None:
        self._observers.remove(observer)

    # -- sharding ------------------------------------------------------------

    def shard_count(self) -> int:
        """Number of physical partitions in the backend (1 unsharded)."""
        return self._backend.shard_count()

    def shard_index(self, app_id: str) -> int:
        """The shard a trace's rows route to (0 unsharded)."""
        return self._backend.shard_index(app_id)

    # -- change feed --------------------------------------------------------

    def last_seq(self) -> Cursor:
        """Position of the newest record this store has committed or
        synced; 0 for an empty store.  Plain backends use 1-based int
        append positions; sharded backends a per-shard
        :class:`~repro.store.cursor.VectorCursor`."""
        return self._seen_seq

    def changes_since(
        self, seq: Cursor
    ) -> Iterator[Tuple[Cursor, ProvenanceRecord]]:
        """Decoded records appended after *seq*, as ``(seq, record)`` pairs.

        This is the replay face of the feed: a consumer that remembers the
        cursor it last processed asks for exactly the rows it missed —
        including rows written by *other* handles on the same backend.
        """
        for position, row in self._backend.changes_since(seq):
            yield position, self._decode(row)

    def sync(self) -> int:
        """Fold in rows another handle appended to the shared backend.

        Rows past this store's cursor are decoded, indexed, and announced
        to observers exactly as a local append would be — continuous
        queries, deployments, and materializers downstream of this store
        catch up without a rescan.  Returns the number of rows folded in.

        The local handle is flushed first so its own pending rows get
        their seqs before foreign rows are numbered after them; callers
        interleaving unflushed local writes with foreign appends on one
        file should flush at the handoff points.  On sharded backends the
        delta folds every shard's tail, shard by shard.
        """
        self._backend.flush()
        # Cheap short-circuit for poll loops (``watch``): comparing the
        # backend tip against our cursor costs one MAX(rowid) per shard —
        # no tail scan, no row decoding.
        if self._backend.last_seq() == self._seen_seq:
            return 0
        # Snapshot the delta and advance the cursor past it *before* firing
        # observers: an observer that appends (a binder writing control
        # rows) re-enters _commit, and the counter must already be past the
        # foreign rows for that append to be numbered correctly.
        delta = list(self._backend.changes_since(self._seen_seq))
        if not delta:
            return 0
        self._seen_seq = delta[-1][0]
        for __, row in delta:
            record = self._decode(row)
            if self._index is not None:
                self._index.add(record)
            for observer in self._observers:
                observer(record)
        return len(delta)

    # -- auxiliary state ----------------------------------------------------

    def load_state(self, key: str) -> Optional[str]:
        """Auxiliary state blob from the backend (None when absent)."""
        return self._backend.load_state(key)

    def save_state(self, key: str, payload: str) -> None:
        """Persist an auxiliary state blob with the backend's durability.

        Pending row appends are flushed first: auxiliary state typically
        *describes* the rows (a materialized-verdict snapshot carries a
        change-feed cursor), so the rows must never be less durable than
        the state referring to them.  Without this write-ahead ordering a
        crash after the state commit but before the row commit would
        leave a snapshot whose cursor points past the end of the table.
        """
        self._backend.flush()
        self._backend.save_state(key, payload)

    # -- direct access -----------------------------------------------------

    def __len__(self) -> int:
        return self._backend.count()

    def __contains__(self, record_id: str) -> bool:
        return self._backend.contains(record_id)

    def get(self, record_id: str) -> ProvenanceRecord:
        """Record by id; raises :class:`RecordNotFound` when absent."""
        return self._backend.get(record_id)

    def records(self) -> Iterator[ProvenanceRecord]:
        """All records in append order."""
        return self._backend.iter_records()

    def rows(self) -> List[StoredRow]:
        """The physical rows in append order (Table I regeneration)."""
        return list(self._backend.iter_rows())

    def app_ids(self) -> List[str]:
        """Distinct application ids in first-seen order.

        On sharded backends "first-seen" means the backend's canonical
        shard-grouped order, which every handle — indexed or not, local
        writer or foreign reader — computes identically; the local
        index's arrival order would differ between handles that saw the
        same rows interleave differently.
        """
        if self._backend.shard_count() > 1:
            fast = self._backend.app_ids()
            if fast is not None:
                return fast
        if self._index is not None:
            return self._index.app_ids()
        fast = self._backend.app_ids()
        if fast is not None:
            return fast
        seen: List[str] = []
        known = set()
        for row in self._backend.iter_rows():
            if row.app_id not in known:
                known.add(row.app_id)
                seen.append(row.app_id)
        return seen

    def records_by_trace(self) -> Dict[str, List[ProvenanceRecord]]:
        """trace id → its records in append order, from one backend scan.

        This is the sweep-friendly access path: evaluating every control
        over every trace costs one sequential pass instead of one indexed
        point-lookup chain per trace (which on lazy backends would decode
        row by row).
        """
        grouped: Dict[str, List[ProvenanceRecord]] = {}
        for record in self._backend.iter_records():
            grouped.setdefault(record.app_id, []).append(record)
        return grouped

    def records_by_trace_projected(
        self, attributes: FrozenSet[str]
    ) -> Optional[Dict[str, List[ProvenanceRecord]]]:
        """Like :meth:`records_by_trace`, materializing only *attributes*.

        ``None`` means the backend has no projection fast path; callers
        fall back to the full grouping.  Projected records carry class,
        type, timestamp, relation endpoints, and the named attributes —
        callers must not read any other attribute off them.
        """
        projected = self._backend.iter_records_projected(
            frozenset(attributes)
        )
        if projected is None:
            return None
        grouped: Dict[str, List[ProvenanceRecord]] = {}
        for record in projected:
            grouped.setdefault(record.app_id, []).append(record)
        return grouped

    # -- querying ----------------------------------------------------------

    def _candidates(self, query: RecordQuery) -> Iterator[ProvenanceRecord]:
        """Choose the narrowest index path for *query*, else scan."""
        # Predicate push-down first: a backend that can compile the query
        # into indexed SQL hands back a candidate superset without
        # touching rows the WHERE clause excludes.  select()/select_one()
        # still apply query.matches to every candidate (superset rule).
        pushed = self._backend.query_records(query)
        if pushed is not None:
            yield from pushed
            return
        if self._index is None:
            if query.app_id is not None:
                # The physical row carries APPID (Table I), so a trace
                # query filters on the column and decodes only that
                # trace's rows — other traces' XML is never touched, and
                # a corrupt row elsewhere stays that trace's problem.
                for row in self._backend.iter_rows():
                    if row.app_id == query.app_id:
                        yield self._decode(row)
                return
            yield from self.records()
            return
        ids: Optional[List[str]] = None
        # Attribute value index is the most selective path when available.
        if query.entity_type is not None:
            for predicate in query.predicates:
                if predicate.op != "==" or predicate.value is None:
                    continue
                hit = self._index.by_attribute(
                    query.entity_type, predicate.name, predicate.value
                )
                if hit is not None:
                    ids = hit
                    break
        if ids is None and query.app_id is not None:
            if query.record_class is not None:
                ids = self._index.by_app_class(query.app_id, query.record_class)
            else:
                ids = self._index.by_app(query.app_id)
        if ids is None and query.entity_type is not None:
            ids = self._index.by_type(query.entity_type)
        if ids is None and query.record_class is not None:
            ids = self._index.by_class(query.record_class)
        if ids is None:
            yield from self.records()
            return
        for record_id in ids:
            yield self._backend.get(record_id)

    def select(self, query: RecordQuery) -> List[ProvenanceRecord]:
        """All records matching *query*, in append order."""
        return [r for r in self._candidates(query) if query.matches(r)]

    def select_one(self, query: RecordQuery) -> Optional[ProvenanceRecord]:
        """First match or None; raises on ambiguity-free usage patterns only."""
        for record in self._candidates(query):
            if query.matches(record):
                return record
        return None

    def find_data(
        self,
        app_id: str,
        entity_type: str,
        **attribute_equals: AttributeValue,
    ) -> List[ProvenanceRecord]:
        """Convenience: Data records of a type in a trace, by attribute."""
        query = RecordQuery(
            record_class=RecordClass.DATA,
            app_id=app_id,
            entity_type=entity_type,
        )
        for name, value in attribute_equals.items():
            query = query.where(name, "==", value)
        return self.select(query)

    def relations_from(self, source_id: str) -> List[RelationRecord]:
        """All relation records whose source is *source_id*."""
        if self._index is not None:
            ids = self._index.relations_from(source_id)
            return [self._backend.get(i) for i in ids]  # type: ignore[misc]
        return [
            record
            for record in self.records()
            if isinstance(record, RelationRecord)
            and record.source_id == source_id
        ]

    def relations_to(self, target_id: str) -> List[RelationRecord]:
        """All relation records whose target is *target_id*."""
        if self._index is not None:
            ids = self._index.relations_to(target_id)
            return [self._backend.get(i) for i in ids]  # type: ignore[misc]
        return [
            record
            for record in self.records()
            if isinstance(record, RelationRecord)
            and record.target_id == target_id
        ]

    # -- persistence -------------------------------------------------------

    def flush(self) -> None:
        """Make pending backend writes durable (no-op for memory)."""
        crash_point("store.flush")
        self._backend.flush()

    def close(self) -> None:
        """Flush and release backend resources.  Idempotent."""
        crash_point("store.close")
        self._backend.close()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def dump(self, path: str) -> int:
        """Write the physical rows to *path* as JSON lines; returns count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for row in self._backend.iter_rows():
                handle.write(
                    json.dumps(
                        {
                            "id": row.record_id,
                            "class": row.record_class.value,
                            "appid": row.app_id,
                            "xml": row.xml,
                        }
                    )
                )
                handle.write("\n")
                count += 1
        return count

    @classmethod
    def load(
        cls,
        path: str,
        model: Optional[ProvenanceDataModel] = None,
        indexed: bool = True,
        indexed_attributes: Optional[Set[str]] = None,
        backend: BackendSpec = None,
    ) -> "ProvenanceStore":
        """Rebuild a store from a file written by :meth:`dump`.

        The dumped rows are committed *verbatim* into the target backend —
        byte-identical regardless of which backend wrote the dump — while
        still passing duplicate and model validation.
        """
        if not os.path.exists(path):
            raise QueryError(f"no store file at {path!r}")
        store = cls(
            model=model,
            indexed=indexed,
            indexed_attributes=indexed_attributes,
            backend=backend,
        )
        with open(path, "r", encoding="utf-8") as handle, store.bulk():
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                row = StoredRow(
                    record_id=payload["id"],
                    record_class=RecordClass.from_wire(payload["class"]),
                    app_id=payload["appid"],
                    xml=payload["xml"],
                )
                store.append_row(row)
        return store

    def append_row(self, row: StoredRow) -> ProvenanceRecord:
        """Append a physical row verbatim (replication/load path).

        The row is decoded for validation, indexing and observers, but the
        stored bytes are *row*'s exactly — not a re-encoding — so replicas
        and reloaded dumps stay byte-identical to their source.
        """
        if self._backend.contains(row.record_id):
            raise DuplicateRecordId(row.record_id)
        record = self._decode(row)
        if self.model is not None:
            self.model.validate(record)
        # verify_xml: this row's bytes were NOT produced by our encoder, so
        # the columnar payload is only written when a canonical re-encode
        # matches byte-for-byte (otherwise the row stays XML-decoded).
        cols = (
            self.columnar.encode_cols(row, record, verify_xml=True)
            if self.columnar is not None
            else None
        )
        self._commit(row, record, cols)
        return record
