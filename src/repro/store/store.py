"""The append-only provenance store.

"The recorder client processes application events, transforms them into
provenance events and records them in the provenance store" (§II.A).  The
store owns:

- the physical rows (Table I layout), kept verbatim so the table can be
  re-printed at any time,
- the materialized records decoded from those rows,
- secondary indexes (:mod:`repro.store.index`), optional,
- registered continuous queries (:mod:`repro.store.continuous`), which are
  notified on every append.

Optionally the store validates each append against a provenance data model;
recorder clients normally pre-validate, but direct appends in tests and
examples benefit from the check.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import DuplicateRecordId, QueryError, RecordNotFound
from repro.model.attributes import AttributeValue
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
)
from repro.model.schema import ProvenanceDataModel
from repro.store.index import StoreIndex
from repro.store.query import RecordQuery
from repro.store.xmlcodec import StoredRow, decode_row, encode_row


class ProvenanceStore:
    """Append-only store of provenance records with query access.

    Args:
        model: optional data model; when given, appends are validated.
        indexed: whether to maintain secondary indexes (E8 ablation knob).
        indexed_attributes: attribute names to value-index (e.g. ``reqid``).
    """

    def __init__(
        self,
        model: Optional[ProvenanceDataModel] = None,
        indexed: bool = True,
        indexed_attributes: Optional[Set[str]] = None,
    ) -> None:
        self.model = model
        self._rows: List[StoredRow] = []
        self._records: Dict[str, ProvenanceRecord] = {}
        self._order: List[str] = []
        self._index: Optional[StoreIndex] = (
            StoreIndex(indexed_attributes) if indexed else None
        )
        self._observers: List[Callable[[ProvenanceRecord], None]] = []

    # -- append ------------------------------------------------------------

    def append(self, record: ProvenanceRecord) -> StoredRow:
        """Append one record; returns its physical row.

        Raises :class:`DuplicateRecordId` on id reuse and, when a model is
        attached, :class:`~repro.errors.SchemaViolation` on nonconforming
        records.  Observers (continuous queries) run after the row commits.
        """
        if record.record_id in self._records:
            raise DuplicateRecordId(record.record_id)
        if self.model is not None:
            self.model.validate(record)
        row = encode_row(record)
        self._rows.append(row)
        self._records[record.record_id] = record
        self._order.append(record.record_id)
        if self._index is not None:
            self._index.add(record)
        for observer in self._observers:
            observer(record)
        return row

    def extend(self, records: Iterable[ProvenanceRecord]) -> int:
        """Append many records; returns the count appended."""
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    def subscribe(self, observer: Callable[[ProvenanceRecord], None]) -> None:
        """Register a callback invoked after every append."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[ProvenanceRecord], None]) -> None:
        self._observers.remove(observer)

    # -- direct access -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records

    def get(self, record_id: str) -> ProvenanceRecord:
        """Record by id; raises :class:`RecordNotFound` when absent."""
        try:
            return self._records[record_id]
        except KeyError:
            raise RecordNotFound(record_id) from None

    def records(self) -> Iterator[ProvenanceRecord]:
        """All records in append order."""
        for record_id in self._order:
            yield self._records[record_id]

    def rows(self) -> List[StoredRow]:
        """The physical rows in append order (Table I regeneration)."""
        return list(self._rows)

    def app_ids(self) -> List[str]:
        """Distinct application ids in first-seen order."""
        if self._index is not None:
            return self._index.app_ids()
        seen: List[str] = []
        known = set()
        for record in self.records():
            if record.app_id not in known:
                known.add(record.app_id)
                seen.append(record.app_id)
        return seen

    # -- querying ----------------------------------------------------------

    def _candidates(self, query: RecordQuery) -> Iterator[ProvenanceRecord]:
        """Choose the narrowest index path for *query*, else scan."""
        if self._index is None:
            yield from self.records()
            return
        ids: Optional[List[str]] = None
        # Attribute value index is the most selective path when available.
        if query.entity_type is not None:
            for predicate in query.predicates:
                if predicate.op != "==" or predicate.value is None:
                    continue
                hit = self._index.by_attribute(
                    query.entity_type, predicate.name, predicate.value
                )
                if hit is not None:
                    ids = hit
                    break
        if ids is None and query.app_id is not None:
            if query.record_class is not None:
                ids = self._index.by_app_class(query.app_id, query.record_class)
            else:
                ids = self._index.by_app(query.app_id)
        if ids is None and query.entity_type is not None:
            ids = self._index.by_type(query.entity_type)
        if ids is None and query.record_class is not None:
            ids = self._index.by_class(query.record_class)
        if ids is None:
            yield from self.records()
            return
        for record_id in ids:
            yield self._records[record_id]

    def select(self, query: RecordQuery) -> List[ProvenanceRecord]:
        """All records matching *query*, in append order."""
        return [r for r in self._candidates(query) if query.matches(r)]

    def select_one(self, query: RecordQuery) -> Optional[ProvenanceRecord]:
        """First match or None; raises on ambiguity-free usage patterns only."""
        for record in self._candidates(query):
            if query.matches(record):
                return record
        return None

    def find_data(
        self,
        app_id: str,
        entity_type: str,
        **attribute_equals: AttributeValue,
    ) -> List[ProvenanceRecord]:
        """Convenience: Data records of a type in a trace, by attribute."""
        query = RecordQuery(
            record_class=RecordClass.DATA,
            app_id=app_id,
            entity_type=entity_type,
        )
        for name, value in attribute_equals.items():
            query = query.where(name, "==", value)
        return self.select(query)

    def relations_from(self, source_id: str) -> List[RelationRecord]:
        """All relation records whose source is *source_id*."""
        if self._index is not None:
            ids = self._index.relations_from(source_id)
            return [self._records[i] for i in ids]  # type: ignore[list-item]
        return [
            record
            for record in self.records()
            if isinstance(record, RelationRecord)
            and record.source_id == source_id
        ]

    def relations_to(self, target_id: str) -> List[RelationRecord]:
        """All relation records whose target is *target_id*."""
        if self._index is not None:
            ids = self._index.relations_to(target_id)
            return [self._records[i] for i in ids]  # type: ignore[list-item]
        return [
            record
            for record in self.records()
            if isinstance(record, RelationRecord)
            and record.target_id == target_id
        ]

    # -- persistence -------------------------------------------------------

    def dump(self, path: str) -> int:
        """Write the physical rows to *path* as JSON lines; returns count."""
        with open(path, "w", encoding="utf-8") as handle:
            for row in self._rows:
                handle.write(
                    json.dumps(
                        {
                            "id": row.record_id,
                            "class": row.record_class.value,
                            "appid": row.app_id,
                            "xml": row.xml,
                        }
                    )
                )
                handle.write("\n")
        return len(self._rows)

    @classmethod
    def load(
        cls,
        path: str,
        model: Optional[ProvenanceDataModel] = None,
        indexed: bool = True,
        indexed_attributes: Optional[Set[str]] = None,
    ) -> "ProvenanceStore":
        """Rebuild a store from a file written by :meth:`dump`."""
        if not os.path.exists(path):
            raise QueryError(f"no store file at {path!r}")
        store = cls(
            model=model, indexed=indexed, indexed_attributes=indexed_attributes
        )
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                row = StoredRow(
                    record_id=payload["id"],
                    record_class=RecordClass.from_wire(payload["class"]),
                    app_id=payload["appid"],
                    xml=payload["xml"],
                )
                store.append(decode_row(row, model))
        return store
