"""On-demand queries over the provenance store.

Two complementary query surfaces:

- :class:`RecordQuery` — a structured filter (class, APPID, entity type,
  attribute predicates) that the store can satisfy with its indexes.  This is
  what the control evaluator compiles BAL definitions into.
- :func:`xpath_lite` — a small XPath-like path language evaluated over the
  XML column of rows, mirroring the paper's "the attributes of each data
  entity can be extracted from the table by using XML queries".

Supported xpath-lite syntax::

    /jobrequisition/reqid            text of child element
    /jobrequisition/@ps:class        attribute of the root element
    //reqid                          text of element anywhere
"""

from __future__ import annotations

import operator
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import QueryError
from repro.model.attributes import AttributeValue
from repro.model.records import ProvenanceRecord, RecordClass
from repro.store.xmlcodec import PS_NAMESPACE, StoredRow

_OPERATORS: dict = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class AttributePredicate:
    """A single ``attribute <op> value`` filter.

    ``op`` is one of ``== != < <= > >= exists absent``.  ``exists`` and
    ``absent`` ignore *value* and test attribute presence — the evaluator
    uses them for the paper's ``is not null`` / ``is null`` conditions.
    """

    name: str
    op: str = "=="
    value: Optional[AttributeValue] = None

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS and self.op not in ("exists", "absent"):
            raise QueryError(f"unknown predicate operator {self.op!r}")

    def matches(self, record: ProvenanceRecord) -> bool:
        present = record.has(self.name)
        if self.op == "exists":
            return present
        if self.op == "absent":
            return not present
        if not present:
            return False
        actual = record.get(self.name)
        try:
            return _OPERATORS[self.op](actual, self.value)
        except TypeError:
            # Cross-type ordered comparison (e.g. str < int): no match rather
            # than an exception, matching SQL's three-valued comparison.
            return False


@dataclass(frozen=True)
class RecordQuery:
    """Structured filter over store records.

    All specified facets must match (conjunction).  Unspecified facets
    (``None``) do not constrain.
    """

    record_class: Optional[RecordClass] = None
    app_id: Optional[str] = None
    entity_type: Optional[str] = None
    predicates: Tuple[AttributePredicate, ...] = field(default_factory=tuple)
    since: Optional[int] = None
    until: Optional[int] = None

    def where(
        self, name: str, op: str = "==", value: Optional[AttributeValue] = None
    ) -> "RecordQuery":
        """Return a copy with one more attribute predicate."""
        return RecordQuery(
            record_class=self.record_class,
            app_id=self.app_id,
            entity_type=self.entity_type,
            predicates=self.predicates + (AttributePredicate(name, op, value),),
            since=self.since,
            until=self.until,
        )

    def matches(self, record: ProvenanceRecord) -> bool:
        """Whether *record* satisfies every facet of this query."""
        if (
            self.record_class is not None
            and record.record_class is not self.record_class
        ):
            return False
        if self.app_id is not None and record.app_id != self.app_id:
            return False
        if (
            self.entity_type is not None
            and record.entity_type != self.entity_type
        ):
            return False
        if self.since is not None and record.timestamp < self.since:
            return False
        if self.until is not None and record.timestamp > self.until:
            return False
        return all(p.matches(record) for p in self.predicates)


PathStep = Tuple[str, str]  # (axis, name) where axis is "child" or "anywhere"


def _parse_path(path: str) -> Tuple[List[PathStep], Optional[str]]:
    """Split an xpath-lite expression into steps plus optional @attribute."""
    if not path.startswith("/"):
        raise QueryError(f"xpath-lite must start with '/': {path!r}")
    attribute: Optional[str] = None
    if "/@" in path:
        path, attribute = path.rsplit("/@", 1)
        if not attribute:
            raise QueryError("empty attribute name in xpath-lite")
    steps: List[PathStep] = []
    remainder = path
    while remainder:
        if remainder.startswith("//"):
            axis, remainder = "anywhere", remainder[2:]
        elif remainder.startswith("/"):
            axis, remainder = "child", remainder[1:]
        else:
            raise QueryError(f"malformed xpath-lite near {remainder!r}")
        name, __, remainder = remainder.partition("/")
        if remainder:
            remainder = "/" + remainder
        if not name:
            raise QueryError("empty step name in xpath-lite")
        steps.append((axis, name))
    if not steps and attribute is None:
        raise QueryError("empty xpath-lite expression")
    return steps, attribute


def _qualify(name: str) -> str:
    """Map a step name onto the ps: namespace used by the codec."""
    if name.startswith("ps:"):
        name = name[3:]
    return f"{{{PS_NAMESPACE}}}{name}"


# One-row parse memo: callers evaluate several path expressions against the
# same row back to back (row-major query loops), and each used to re-parse
# the XML per expression.  Keyed by row identity — StoredRow is frozen, so
# the same object always means the same XML — and sized at one entry, which
# is all a row-major loop needs.  Parse errors memoize too: a malformed row
# costs one parse attempt per row, not one per path.
_parse_memo: Optional[Tuple[StoredRow, Optional[ET.Element], Optional[ET.ParseError]]] = None
#: XML documents actually parsed (regression metric for the memo).
_parses = 0


def xml_parse_count() -> int:
    """How many XML documents :func:`xpath_lite` has parsed so far."""
    return _parses


def _parsed_root(row: StoredRow) -> ET.Element:
    global _parse_memo, _parses
    memo = _parse_memo
    if memo is not None and memo[0] is row:
        root, error = memo[1], memo[2]
    else:
        _parses += 1
        root, error = None, None
        try:
            root = ET.fromstring(row.xml)
        except ET.ParseError as exc:
            error = exc
        _parse_memo = (row, root, error)
    if root is None:
        raise QueryError(f"row {row.record_id}: malformed XML") from error
    return root


def xpath_lite(row: StoredRow, path: str) -> List[str]:
    """Evaluate an xpath-lite *path* against one row's XML column.

    Returns matched text values (element text, or attribute values when the
    path ends in ``/@name``).  Unknown elements simply match nothing.  The
    row's XML is parsed at most once per row visit: consecutive calls
    against the same row object reuse the parsed document.
    """
    steps, attribute = _parse_path(path)
    root = _parsed_root(row)

    nodes = [root]
    for position, (axis, name) in enumerate(steps):
        qualified = _qualify(name)
        matched: List[ET.Element] = []
        for node in nodes:
            if position == 0 and axis == "child":
                # The first child step addresses the root element itself,
                # matching how /jobrequisition/reqid reads.
                if node.tag == qualified:
                    matched.append(node)
            elif axis == "child":
                matched.extend(child for child in node if child.tag == qualified)
            else:
                if node.tag == qualified:
                    matched.append(node)
                matched.extend(node.iter(qualified))
        nodes = matched
        if not nodes:
            return []

    if attribute is not None:
        qualified_attr = _qualify(attribute) if ":" in attribute else attribute
        results = []
        for node in nodes:
            value = node.get(qualified_attr)
            if value is None and ":" not in attribute:
                value = node.get(_qualify(attribute))
            if value is not None:
                results.append(value)
        return results
    return [(node.text or "").strip() for node in nodes]


def scan(
    records: Iterable[ProvenanceRecord],
    query: RecordQuery,
    key: Optional[Callable[[ProvenanceRecord], object]] = None,
) -> List[ProvenanceRecord]:
    """Filter *records* by *query*, optionally sorting by *key*.

    Accepts any iterable — lists, or a backend's lazy record iterator —
    and always returns a materialized list.
    """
    matched = [record for record in records if query.matches(record)]
    if key is not None:
        matched.sort(key=key)
    return matched
