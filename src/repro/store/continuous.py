"""Deployed (continuous) queries.

§II.A distinguishes two analysis styles.  The first: "a query can be deployed
into the provenance store to emit results in real-time, feeding existing
dashboard systems to display key performance indicators".  A
:class:`ContinuousQuery` wraps a :class:`~repro.store.query.RecordQuery`,
subscribes to a store, and pushes every matching append to its subscribers as
it happens — no re-scan.  This is the mechanism behind continuous compliance
checking in :mod:`repro.controls.deployment` and the KPI feeds in
:mod:`repro.controls.dashboard`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.model.records import ProvenanceRecord
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore

Callback = Callable[[ProvenanceRecord], None]


class Subscription:
    """Handle returned by :meth:`ContinuousQuery.subscribe`; supports cancel."""

    def __init__(self, query: "ContinuousQuery", callback: Callback) -> None:
        self._query = query
        self._callback = callback
        self.active = True

    def cancel(self) -> None:
        """Stop receiving matches."""
        if self.active:
            self._query._drop(self._callback)
            self.active = False


class ContinuousQuery:
    """A query deployed into a store, emitting matches in real time.

    Matches arriving *before* deployment are replayed on deploy so that a
    dashboard attached mid-stream still sees the full history — this mirrors
    the store-backed semantics (results are a view over the table, not only
    over future appends).

    Lifecycle: :meth:`undeploy` detaches from the store, and cancelling the
    *last* subscription undeploys automatically — a deployed query with
    nobody listening would otherwise sit in the store's observer list
    forever, paying a match test per append and pinning the query (and
    everything its callbacks close over) in memory.  Re-attach with
    :meth:`deploy`; subscribers added while undeployed queue up and start
    receiving once deployed again.
    """

    def __init__(self, query: RecordQuery, replay: bool = True) -> None:
        self.query = query
        self.replay = replay
        self._callbacks: List[Callback] = []
        self._store: Optional[ProvenanceStore] = None
        self.emitted = 0

    # -- lifecycle -----------------------------------------------------------

    def deploy(self, store: ProvenanceStore) -> "ContinuousQuery":
        """Attach to *store*; replays history when configured to."""
        if self._store is not None:
            raise RuntimeError("continuous query already deployed")
        self._store = store
        store.subscribe(self._on_append)
        if self.replay:
            for record in store.select(self.query):
                self._emit(record)
        return self

    def undeploy(self) -> None:
        """Detach from the store; no further emissions."""
        if self._store is not None:
            self._store.unsubscribe(self._on_append)
            self._store = None

    @property
    def deployed(self) -> bool:
        return self._store is not None

    # -- subscription ---------------------------------------------------------

    def subscribe(self, callback: Callback) -> Subscription:
        """Register *callback* for every match; returns a cancel handle."""
        self._callbacks.append(callback)
        return Subscription(self, callback)

    def _drop(self, callback: Callback) -> None:
        self._callbacks.remove(callback)
        if not self._callbacks:
            # Last listener gone: stop leaking an observer slot (and the
            # per-append match test) on the store.
            self.undeploy()

    # -- plumbing ---------------------------------------------------------------

    def _on_append(self, record: ProvenanceRecord) -> None:
        if self.query.matches(record):
            self._emit(record)

    def _emit(self, record: ProvenanceRecord) -> None:
        self.emitted += 1
        for callback in list(self._callbacks):
            callback(record)


class CollectingSink:
    """A simple subscriber that accumulates matches (used by tests/benches)."""

    def __init__(self) -> None:
        self.records: List[ProvenanceRecord] = []

    def __call__(self, record: ProvenanceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)
