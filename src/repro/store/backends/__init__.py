"""Pluggable storage backends for the provenance store.

The store's physical Table I rows live behind the
:class:`~repro.store.backends.base.StorageBackend` seam; two
implementations ship:

- :class:`~repro.store.backends.memory.MemoryBackend` — rows in a list,
  records in a dict; the zero-copy default.
- :class:`~repro.store.backends.sqlite.SQLiteBackend` — rows in a SQLite
  table (WAL, batched transactions, LRU-cached lazy decoding); durable
  across runs via ``--db``.
- :class:`~repro.store.backends.sharded.ShardedBackend` — a composite
  that routes rows to N child backends by stable APPID hash and merges
  their change feeds under a vector cursor (``--shards N``).

:func:`create_backend` is the name registry used by CLI flags and
:class:`~repro.processes.workload.Workload` parameters; register new
backends there (see ``docs/EXTENDING.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import BackendError
from repro.store.backends.base import StorageBackend
from repro.store.backends.memory import MemoryBackend
from repro.store.backends.sharded import ShardedBackend
from repro.store.backends.sqlite import SQLiteBackend


def _make_memory(path: Optional[str] = None, **options) -> StorageBackend:
    if path is not None:
        raise BackendError("the memory backend takes no --db path")
    return MemoryBackend(**options)


def _make_sqlite(path: Optional[str] = None, **options) -> StorageBackend:
    return SQLiteBackend(path or ":memory:", **options)


def _make_sharded(
    path: Optional[str] = None, shards: int = 2, **options
) -> StorageBackend:
    if shards < 1:
        raise BackendError("sharded backend needs shards >= 1")
    if path is not None:
        return ShardedBackend.for_sqlite(path, shards, **options)
    return ShardedBackend([MemoryBackend(**options) for _ in range(shards)])


BACKENDS: Dict[str, Callable[..., StorageBackend]] = {
    "memory": _make_memory,
    "sqlite": _make_sqlite,
    "sharded": _make_sharded,
}


def create_backend(
    name: str, path: Optional[str] = None, **options
) -> StorageBackend:
    """Instantiate a backend by registry name.

    Args:
        name: one of :data:`BACKENDS` (``"memory"``, ``"sqlite"``).
        path: database path for backends that persist; ``None`` keeps the
            backend ephemeral.
        options: backend-specific keyword arguments (batch sizes, cache
            capacity, …).
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise BackendError(
            f"unknown storage backend {name!r} (known: {known})"
        ) from None
    return factory(path=path, **options)


__all__ = [
    "BACKENDS",
    "MemoryBackend",
    "ShardedBackend",
    "SQLiteBackend",
    "StorageBackend",
    "create_backend",
]
