"""The storage-backend contract of the provenance store.

Table I is literally a relational table — ``(ID, CLASS, APPID, XML)`` — so
the physical home of those rows should be swappable: an in-memory list for
tests and small runs, SQLite for durable single-node deployments, and, down
the road, sharded or client/server stores.  :class:`StorageBackend` is that
seam.  The :class:`~repro.store.store.ProvenanceStore` stays the
coordination layer (validation, secondary indexes, observers, queries) and
delegates row custody to a backend.

A backend owns exactly three things:

- the physical rows, in append order, byte-identical forever,
- the materialization of rows back into records (eagerly for the memory
  backend, lazily with caching for SQLite), and
- the **change feed**: every row carries an implicit monotonic sequence
  number — its 1-based append position — and :meth:`changes_since`
  replays the rows after a cursor.  Seqs are contiguous and identical
  across backends holding the same rows, so a cursor taken against one
  backend resumes against any replica.  On SQLite the feed is the table
  itself (``rowid`` order), which is what lets a reopened database hand
  incremental consumers exactly the rows they missed.

Backends may additionally persist small named *auxiliary state* blobs
(:meth:`save_state` / :meth:`load_state`) next to the rows — materialized
verdict snapshots use this so an incremental evaluation survives a close
and reopen.  Durability follows the backend: the memory backend keeps the
blobs for the life of the object, SQLite writes them to disk.

Everything else — duplicate-id policy, schema validation, indexing,
continuous queries — is store policy and must NOT be reimplemented in a
backend.  Backends may assume the store has already rejected duplicates
before :meth:`StorageBackend.append_row` is called.

Row→record decoding needs the store's data model (attribute typing), so the
store injects a decoder via :meth:`StorageBackend.set_decoder` right after
construction; backends that keep live record objects (memory) may ignore
it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Callable,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.model.records import ProvenanceRecord
from repro.store.query import RecordQuery
from repro.store.xmlcodec import StoredRow

RowDecoder = Callable[[StoredRow], ProvenanceRecord]


class StorageBackend(ABC):
    """Abstract home of the physical Table I rows.

    Subclasses implement :meth:`append_row`, :meth:`get`, :meth:`contains`,
    :meth:`iter_rows`, :meth:`iter_records`, :meth:`count`, and
    :meth:`close`; the bulk/flush/decoder hooks have no-op defaults.
    """

    #: short name used by :func:`repro.store.backends.create_backend` and
    #: reported in diagnostics.
    name: str = "abstract"

    # -- wiring --------------------------------------------------------------

    def set_decoder(self, decoder: RowDecoder) -> None:
        """Install the row→record decoder (model-aware).  Default: ignore."""

    # -- columnar representation ---------------------------------------------

    def accepts_cols(self) -> bool:
        """Whether this backend persists columnar ``cols`` payloads.

        ``False`` (the default) tells the store not to bother computing
        them; backends that store XML only, or keep live record objects,
        gain nothing from the sidecar.
        """
        return False

    def bind_columnar(
        self, codec, indexed_attributes: Iterable[str] = ()
    ) -> None:
        """Attach a :class:`~repro.store.columnar.ColumnarCodec`.

        Called by the store right after the decoder is installed.
        Backends that persist ``cols`` use the codec to decode payloads
        on read paths and to backfill payloads for rows written before
        the columnar schema existed; *indexed_attributes* names get
        expression indexes.  Default: ignore.
        """

    # -- writes --------------------------------------------------------------

    @abstractmethod
    def append_row(
        self,
        row: StoredRow,
        record: Optional[ProvenanceRecord] = None,
        cols: Optional[str] = None,
    ) -> None:
        """Persist one physical row.

        *record* is the already-materialized record when the caller has one
        (the normal append path); backends may keep it to avoid a decode.
        *cols* is the row's columnar payload when the store computed one
        (only meaningful to backends whose :meth:`accepts_cols` is true;
        others ignore it).  The store guarantees the row's id is not
        already present.
        """

    # -- reads ---------------------------------------------------------------

    @abstractmethod
    def get(self, record_id: str) -> ProvenanceRecord:
        """Record by id; raises :class:`~repro.errors.RecordNotFound`."""

    @abstractmethod
    def contains(self, record_id: str) -> bool:
        """Whether a row with *record_id* exists (flushed or pending)."""

    @abstractmethod
    def iter_rows(self) -> Iterator[StoredRow]:
        """All physical rows, in append order."""

    @abstractmethod
    def iter_records(self) -> Iterator[ProvenanceRecord]:
        """All records, in append order."""

    @abstractmethod
    def count(self) -> int:
        """Number of rows stored."""

    def app_ids(self) -> Optional[List[str]]:
        """Distinct APPIDs in first-seen order, when the backend can compute
        them faster than a row scan; ``None`` means "no fast path"."""
        return None

    def query_records(
        self, query: RecordQuery
    ) -> Optional[List[ProvenanceRecord]]:
        """Candidate records for *query* via predicate push-down.

        ``None`` means "no push-down path" (the default) and the store
        falls back to its index/scan candidate generation.  A non-None
        result must be a **superset** of the true matches, in this
        backend's append order — the store re-applies ``query.matches``
        to every candidate, so false positives are fine and false
        negatives are forbidden.
        """
        return None

    def iter_records_projected(
        self, attributes: FrozenSet[str]
    ) -> Optional[Iterator[ProvenanceRecord]]:
        """All records in append order, materializing only *attributes*.

        ``None`` (the default) means "no projection fast path"; callers
        fall back to :meth:`iter_records`.  Records yielded by a
        projecting backend carry class, type, timestamp, relation
        endpoints, and the named attributes — other attributes may be
        absent, which is only safe for callers that declared they will
        not read them.
        """
        return None

    # -- sharding ------------------------------------------------------------

    def fork_handle(self) -> Optional["StorageBackend"]:
        """An independent handle over the same physical rows, or ``None``.

        A fork shares the durable medium (e.g. the SQLite file) but owns
        its own connection, write buffer, and decode cache, so one thread
        can write through the fork while others read through the original.
        Backends without a forkable medium return ``None`` (the default);
        callers must then fall back to sharing the original handle under a
        lock.
        """
        return None

    def shard_count(self) -> int:
        """Number of physical partitions.  Plain backends are one shard."""
        return 1

    def shard_index(self, app_id: str) -> int:
        """The shard a row with *app_id* routes to (always 0 unsharded)."""
        return 0

    # -- change feed ---------------------------------------------------------

    def last_seq(self) -> int:
        """Sequence number of the newest row; 0 when empty.

        A row's seq is its 1-based append position.  The store is
        append-only, so seqs are contiguous, monotonic, and — because they
        are positional — identical across backends holding the same rows.
        Backends with a write buffer flush before answering so that every
        numbered row is actually replayable.

        Sharded backends return a
        :class:`~repro.store.cursor.VectorCursor` (one component per
        shard) instead of an ``int``; both shapes flow through the same
        call sites via the helpers in :mod:`repro.store.cursor`.
        """
        self.flush()
        return self.count()

    def changes_since(self, seq: int) -> Iterator[Tuple[int, StoredRow]]:
        """``(seq, row)`` for every row appended after *seq*, in order.

        ``changes_since(0)`` replays the whole table;
        ``changes_since(last_seq())`` yields nothing.  The default derives
        the feed from :meth:`iter_rows`; backends with a cheaper tail scan
        (SQLite's ``rowid > ?``) override it.
        """
        for position, row in enumerate(self.iter_rows(), start=1):
            if position > seq:
                yield position, row

    # -- auxiliary state -----------------------------------------------------

    def load_state(self, key: str) -> Optional[str]:
        """The auxiliary state blob stored under *key*, or ``None``.

        Default: no auxiliary storage (always ``None``).
        """
        return None

    def save_state(self, key: str, payload: str) -> None:
        """Persist *payload* under *key*, replacing any previous value.

        Default: dropped.  Callers that need to know whether state will
        survive should check :meth:`load_state` round-trips.
        """

    # -- batching ------------------------------------------------------------

    def begin_bulk(self) -> None:
        """Enter a bulk-append section (nestable).  Backends with write
        batching defer commits until the outermost :meth:`end_bulk`."""

    def end_bulk(self) -> None:
        """Leave a bulk-append section; flush at the outermost exit."""

    def flush(self) -> None:
        """Make pending writes durable/visible.  Default: nothing pending."""

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and release resources.  Idempotent."""
        self.flush()

    def abort(self) -> None:
        """Release resources WITHOUT flushing pending writes.

        This is the process-death path: crash simulation
        (:class:`~repro.faults.backend.FaultyBackend`) and unrecoverable
        error handling use it to model "the buffer never reached disk".
        Backends without pending state need not override it.  Idempotent.
        """
