"""The storage-backend contract of the provenance store.

Table I is literally a relational table — ``(ID, CLASS, APPID, XML)`` — so
the physical home of those rows should be swappable: an in-memory list for
tests and small runs, SQLite for durable single-node deployments, and, down
the road, sharded or client/server stores.  :class:`StorageBackend` is that
seam.  The :class:`~repro.store.store.ProvenanceStore` stays the
coordination layer (validation, secondary indexes, observers, queries) and
delegates row custody to a backend.

A backend owns exactly two things:

- the physical rows, in append order, byte-identical forever, and
- the materialization of rows back into records (eagerly for the memory
  backend, lazily with caching for SQLite).

Everything else — duplicate-id policy, schema validation, indexing,
continuous queries — is store policy and must NOT be reimplemented in a
backend.  Backends may assume the store has already rejected duplicates
before :meth:`StorageBackend.append_row` is called.

Row→record decoding needs the store's data model (attribute typing), so the
store injects a decoder via :meth:`StorageBackend.set_decoder` right after
construction; backends that keep live record objects (memory) may ignore
it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator, List, Optional

from repro.model.records import ProvenanceRecord
from repro.store.xmlcodec import StoredRow

RowDecoder = Callable[[StoredRow], ProvenanceRecord]


class StorageBackend(ABC):
    """Abstract home of the physical Table I rows.

    Subclasses implement :meth:`append_row`, :meth:`get`, :meth:`contains`,
    :meth:`iter_rows`, :meth:`iter_records`, :meth:`count`, and
    :meth:`close`; the bulk/flush/decoder hooks have no-op defaults.
    """

    #: short name used by :func:`repro.store.backends.create_backend` and
    #: reported in diagnostics.
    name: str = "abstract"

    # -- wiring --------------------------------------------------------------

    def set_decoder(self, decoder: RowDecoder) -> None:
        """Install the row→record decoder (model-aware).  Default: ignore."""

    # -- writes --------------------------------------------------------------

    @abstractmethod
    def append_row(
        self, row: StoredRow, record: Optional[ProvenanceRecord] = None
    ) -> None:
        """Persist one physical row.

        *record* is the already-materialized record when the caller has one
        (the normal append path); backends may keep it to avoid a decode.
        The store guarantees the row's id is not already present.
        """

    # -- reads ---------------------------------------------------------------

    @abstractmethod
    def get(self, record_id: str) -> ProvenanceRecord:
        """Record by id; raises :class:`~repro.errors.RecordNotFound`."""

    @abstractmethod
    def contains(self, record_id: str) -> bool:
        """Whether a row with *record_id* exists (flushed or pending)."""

    @abstractmethod
    def iter_rows(self) -> Iterator[StoredRow]:
        """All physical rows, in append order."""

    @abstractmethod
    def iter_records(self) -> Iterator[ProvenanceRecord]:
        """All records, in append order."""

    @abstractmethod
    def count(self) -> int:
        """Number of rows stored."""

    def app_ids(self) -> Optional[List[str]]:
        """Distinct APPIDs in first-seen order, when the backend can compute
        them faster than a row scan; ``None`` means "no fast path"."""
        return None

    # -- batching ------------------------------------------------------------

    def begin_bulk(self) -> None:
        """Enter a bulk-append section (nestable).  Backends with write
        batching defer commits until the outermost :meth:`end_bulk`."""

    def end_bulk(self) -> None:
        """Leave a bulk-append section; flush at the outermost exit."""

    def flush(self) -> None:
        """Make pending writes durable/visible.  Default: nothing pending."""

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and release resources.  Idempotent."""
        self.flush()
