"""Sharded storage backend — Table I partitioned by APPID hash.

The paper's provenance table is naturally partitionable by trace: every
row carries the APPID of the process execution it belongs to, and no
control ever joins rows *across* traces.  :class:`ShardedBackend`
exploits that by routing each row to one of N child backends with a
stable APPID hash, while exposing the ordinary
:class:`~repro.store.backends.base.StorageBackend` protocol to callers:

- **Routing** is :func:`shard_index_for` — ``crc32(appid) % N`` — chosen
  over Python's ``hash()`` because it is stable across processes and
  interpreter runs, which is what lets N independent writer processes
  agree on the placement of every trace without coordination.
- **Iteration order** is shard-grouped: ``iter_rows`` drains shard 0,
  then shard 1, …  Within a shard (and therefore within any one trace)
  append order is preserved exactly; across shards there is no global
  order to preserve, because concurrent writers never had one.
- **The change feed is a vector**: ``last_seq()`` returns a
  :class:`~repro.store.cursor.VectorCursor` with one component per
  shard, and ``changes_since`` folds the per-shard tails, yielding each
  row with the composite position *after* that row — so a consumer can
  stop mid-stream and resume from the last cursor it saw.  Int cursors
  from pre-sharding snapshots remain valid in the N=1 degenerate case.
- **Crash points** ``sharded.flush.shard<i>`` / ``sharded.append.shard<i>``
  let a :class:`~repro.faults.plan.FaultPlan` kill one shard mid-flush
  while the others survive; shards flush in index order, so a crash at
  shard *i* leaves shards ``< i`` durable and shards ``>= i`` staged.

Auxiliary state (verdict snapshots) lives on shard 0 — it is global to
the store, not per-partition, and keeping one copy means one commit.
"""

from __future__ import annotations

import zlib
from typing import (
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import BackendError, RecordNotFound
from repro.faults.points import crash_point
from repro.model.records import ProvenanceRecord
from repro.store.backends.base import StorageBackend
from repro.store.cursor import Cursor, VectorCursor, coerce_cursor
from repro.store.locks import FileLock
from repro.store.query import RecordQuery
from repro.store.xmlcodec import StoredRow


def shard_index_for(app_id: str, shard_count: int) -> int:
    """The shard *app_id* routes to: ``crc32(appid) % shard_count``.

    Stable across processes and runs (unlike ``hash()``), so concurrent
    writers and later readers always agree on a trace's home shard.
    """
    return zlib.crc32(app_id.encode("utf-8")) % shard_count


def sqlite_shard_path(path: str, index: int) -> str:
    """The database file of shard *index* for base path *path*."""
    return "%s.shard-%02d" % (path, index)


class ShardedBackend(StorageBackend):
    """N child backends behind one ``StorageBackend`` face.

    Args:
        children: the child backends, one per shard, in shard order.
            Children must be empty or previously populated through a
            sharded backend with the same shard count — rows must sit in
            the shard their APPID hashes to.
    """

    name = "sharded"

    def __init__(self, children: Sequence[StorageBackend]):
        if not children:
            raise BackendError("sharded backend needs at least one child")
        self._children: Tuple[StorageBackend, ...] = tuple(children)
        n = len(self._children)
        self._flush_points = tuple(
            "sharded.flush.shard%d" % i for i in range(n)
        )
        self._append_points = tuple(
            "sharded.append.shard%d" % i for i in range(n)
        )
        self._decoder = None

    @classmethod
    def for_sqlite(
        cls,
        path: str,
        shards: int,
        use_locks: bool = True,
        **options,
    ) -> "ShardedBackend":
        """Sharded SQLite: shard *i* lives at ``<path>.shard-0i``.

        Each shard gets its own database file and (when *use_locks*) a
        sibling ``.lock`` file guarding its flush transactions, so N
        writer processes appending to disjoint shards never contend.
        """
        from repro.store.backends.sqlite import SQLiteBackend

        if shards < 1:
            raise BackendError("sharded backend needs shards >= 1")
        children = []
        for i in range(shards):
            shard_path = sqlite_shard_path(path, i)
            lock = FileLock(shard_path + ".lock") if use_locks else None
            children.append(
                SQLiteBackend(shard_path, write_lock=lock, **options)
            )
        return cls(children)

    # -- shard topology ------------------------------------------------------

    def shard_count(self) -> int:
        return len(self._children)

    def shard_index(self, app_id: str) -> int:
        return shard_index_for(app_id, len(self._children))

    def shard(self, index: int) -> StorageBackend:
        """Direct access to one child backend (stats, targeted tests)."""
        return self._children[index]

    @property
    def children(self) -> Tuple[StorageBackend, ...]:
        return self._children

    # -- wiring --------------------------------------------------------------

    def set_decoder(self, decoder) -> None:
        self._decoder = decoder
        for child in self._children:
            child.set_decoder(decoder)

    # -- columnar representation ---------------------------------------------

    def accepts_cols(self) -> bool:
        return any(child.accepts_cols() for child in self._children)

    def bind_columnar(
        self, codec, indexed_attributes: Iterable[str] = ()
    ) -> None:
        names = tuple(indexed_attributes)
        for child in self._children:
            child.bind_columnar(codec, names)

    # -- writes --------------------------------------------------------------

    def append_row(
        self,
        row: StoredRow,
        record: Optional[ProvenanceRecord] = None,
        cols: Optional[str] = None,
    ) -> None:
        index = self.shard_index(row.app_id)
        crash_point(self._append_points[index])
        self._children[index].append_row(row, record, cols)

    def flush(self) -> None:
        # Shards flush in index order; a crash at shard i leaves shards
        # < i durable and >= i staged — the per-shard recovery invariant
        # the model checker asserts.
        for i, child in enumerate(self._children):
            crash_point(self._flush_points[i])
            child.flush()

    def begin_bulk(self) -> None:
        for child in self._children:
            child.begin_bulk()

    def end_bulk(self) -> None:
        for child in self._children:
            child.end_bulk()

    # -- reads ---------------------------------------------------------------

    def get(self, record_id: str) -> ProvenanceRecord:
        # Record ids do not carry their APPID, so point lookups probe the
        # shards in order.  O(N) point reads are acceptable: the store
        # keeps its own id index and rarely reaches this path.
        for child in self._children:
            if child.contains(record_id):
                return child.get(record_id)
        raise RecordNotFound(record_id)

    def contains(self, record_id: str) -> bool:
        return any(child.contains(record_id) for child in self._children)

    def iter_rows(self) -> Iterator[StoredRow]:
        for child in self._children:
            for row in child.iter_rows():
                yield row

    def iter_records(self) -> Iterator[ProvenanceRecord]:
        for child in self._children:
            for record in child.iter_records():
                yield record

    def iter_records_projected(
        self, attributes: FrozenSet[str]
    ) -> Optional[Iterator[ProvenanceRecord]]:
        if not any(child.accepts_cols() for child in self._children):
            return None

        def generate() -> Iterator[ProvenanceRecord]:
            # Shard-grouped, like iter_records; children without a
            # projection path fall back to full records (a superset of
            # what the projection promises).
            for child in self._children:
                projected = child.iter_records_projected(attributes)
                if projected is None:
                    projected = child.iter_records()
                for record in projected:
                    yield record

        return generate()

    def query_records(
        self, query: RecordQuery
    ) -> Optional[List[ProvenanceRecord]]:
        # Only trace-scoped queries push down: an APPID pins the query to
        # exactly one home shard, whose append order matches what every
        # other candidate path yields for that trace.  Queries spanning
        # shards would surface shard-grouped order where the store's
        # index paths use arrival order, so they take the fallback.
        if query.app_id is None:
            return None
        return self._children[self.shard_index(query.app_id)].query_records(
            query
        )

    def count(self) -> int:
        return sum(child.count() for child in self._children)

    def app_ids(self) -> List[str]:
        """Distinct APPIDs in shard-grouped, first-seen-per-shard order.

        Routing puts every APPID in exactly one shard, so concatenating
        the per-shard lists needs no dedup.  Never returns ``None``: the
        store treats this as the canonical trace order for sharded
        backends, shared by indexed and index-free handles alike.
        """
        result: List[str] = []
        for child in self._children:
            ids = child.app_ids()
            if ids is None:
                seen = set()
                ids = []
                for row in child.iter_rows():
                    if row.app_id not in seen:
                        seen.add(row.app_id)
                        ids.append(row.app_id)
            result.extend(ids)
        return result

    # -- change feed ---------------------------------------------------------

    def last_seq(self) -> VectorCursor:
        return VectorCursor(
            [child.last_seq() for child in self._children]
        )

    def changes_since(
        self, seq: Cursor
    ) -> Iterator[Tuple[VectorCursor, StoredRow]]:
        try:
            start = coerce_cursor(seq, len(self._children))
        except ValueError as exc:
            raise BackendError(str(exc)) from None
        positions = list(start.seqs)
        for i, child in enumerate(self._children):
            for position, row in child.changes_since(positions[i]):
                positions[i] = position
                yield VectorCursor(positions), row

    # -- auxiliary state -----------------------------------------------------

    def load_state(self, key: str) -> Optional[str]:
        return self._children[0].load_state(key)

    def save_state(self, key: str, payload: str) -> None:
        self._children[0].save_state(key, payload)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for child in self._children:
            child.close()

    def abort(self) -> None:
        for child in self._children:
            child.abort()
