"""SQLite storage backend — Table I as an actual relational table.

The paper's provenance table is ``(ID, CLASS, APPID, XML)``; this backend
stores it verbatim::

    CREATE TABLE provenance (
        id    TEXT PRIMARY KEY,
        class TEXT NOT NULL,
        appid TEXT NOT NULL,
        xml   TEXT NOT NULL
    )

with secondary SQL indexes on ``class`` and ``appid``.  Append order is the
implicit ``rowid`` order, so dumps and re-printed Table I artifacts are
byte-identical to the memory backend's.

Throughput and latency choices:

- **WAL journal + NORMAL synchronous** on file databases, so readers never
  block the appender and commits avoid a full fsync per transaction.
- **Batched transactions**: appends accumulate in a pending buffer and are
  committed ``executemany``-style every *batch_size* rows (a much larger
  threshold inside :meth:`begin_bulk`/:meth:`end_bulk` sections, which the
  recorder client wraps around event streams).  Reads see pending rows —
  point lookups consult the buffer, scans flush first — so batching is
  invisible to store semantics.
- **Lazy decoding with an LRU record cache**: rows are only materialized
  into records when fetched, and the hot ids (index hits, relation
  endpoints) stay cached.  Full scans read through the cache but do not
  populate it, so sweeps cannot evict the hot set.
- **The table is the change log**: the store never deletes, so ``rowid``
  is exactly the row's 1-based append position — the backend-neutral
  sequence number.  :meth:`changes_since` is a ``rowid > ?`` tail scan,
  which makes catching up after a reopen (or after another handle on the
  same file appended out-of-band) cost O(new rows), not O(table).
- **Auxiliary state** (``aux_state`` table): small named blobs —
  materialized verdict snapshots — persisted next to the rows so
  incremental consumers survive a close/reopen.
- **Columnar sidecar + predicate push-down**: each row optionally
  carries a ``cols`` JSON payload (:mod:`repro.store.columnar`) with
  generated columns ``etype``/``ts`` extracted from it, so
  :meth:`query_records` compiles :class:`~repro.store.query.RecordQuery`
  facets into indexed ``WHERE`` clauses, and scans decode via the
  payload instead of parsing XML.  Databases created before the columnar
  schema migrate in place on open (``ALTER TABLE``), and rows written by
  pre-columnar code are backfilled — once, bounded by a cursor marker —
  when a codec is bound.  XML remains the source of truth; any row whose
  payload is missing or stale (CRC mismatch) decodes from XML exactly as
  before.
"""

from __future__ import annotations

import os
import sqlite3
from collections import OrderedDict
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import BackendError, RecordNotFound
from repro.faults.points import crash_point
from repro.model.records import ProvenanceRecord, RecordClass
from repro.store.backends.base import StorageBackend
from repro.store.columnar import (
    ColumnarCodec,
    _JSON_PATH_RE,
    compile_query,
)
from repro.store.locks import FileLock, NullLock
from repro.store.query import RecordQuery
from repro.store.xmlcodec import StoredRow

_SCHEMA_BASE = """
CREATE TABLE IF NOT EXISTS provenance (
    id    TEXT PRIMARY KEY,
    class TEXT NOT NULL,
    appid TEXT NOT NULL,
    xml   TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_provenance_class ON provenance(class);
CREATE INDEX IF NOT EXISTS idx_provenance_appid ON provenance(appid);
CREATE TABLE IF NOT EXISTS aux_state (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
"""

# Schema v2 adds the columnar sidecar: the cols payload plus VIRTUAL
# generated columns over it (they cost nothing per row — extraction
# happens at read time, and the etype index stores only the extracted
# values).  Applied as ALTERs so v1 files upgrade in place; databases
# opened by a SQLite built without generated-column/JSON support simply
# stay on the v1 schema (and the columnar fast paths stay off).
_SCHEMA_COLUMNAR = (
    "ALTER TABLE provenance ADD COLUMN cols TEXT",
    "ALTER TABLE provenance ADD COLUMN etype TEXT GENERATED ALWAYS AS "
    "(json_extract(cols, '$.t')) VIRTUAL",
    "ALTER TABLE provenance ADD COLUMN ts INTEGER GENERATED ALWAYS AS "
    "(json_extract(cols, '$.ts')) VIRTUAL",
)
_COLUMNAR_INDEX = (
    "CREATE INDEX IF NOT EXISTS idx_provenance_etype ON provenance(etype)"
)

#: aux-state marker bounding the columnar backfill: rows at or below this
#: rowid have been offered a payload already (encodable or not), so a
#: reopen never rescans them.
_BACKFILL_MARKER = "columnar.backfill.cursor"

#: fallback LRU record-cache capacity when neither the constructor nor the
#: environment says otherwise.
_DEFAULT_CACHE_SIZE = 4096


def _default_cache_size() -> int:
    """Cache capacity from ``REPRO_DECODE_CACHE``, else 4096."""
    raw = os.environ.get("REPRO_DECODE_CACHE")
    if raw is None or not raw.strip():
        return _DEFAULT_CACHE_SIZE
    try:
        return int(raw)
    except ValueError:
        raise BackendError(
            f"REPRO_DECODE_CACHE must be an integer, got {raw!r}"
        ) from None


class SQLiteBackend(StorageBackend):
    """Durable Table I rows in a SQLite database.

    Args:
        path: database file, or ``":memory:"`` (default) for an ephemeral
            in-process database.
        batch_size: pending appends per transaction outside bulk sections.
        bulk_batch_size: pending appends per transaction inside bulk
            sections (recorder streams).
        cache_size: capacity of the LRU record cache (decoded rows).
            Defaults to the ``REPRO_DECODE_CACHE`` environment variable,
            or 4096.
        write_lock: optional context manager (a
            :class:`~repro.store.locks.FileLock`) taken around each flush
            transaction, serializing multi-process writers fairly instead
            of spinning on ``SQLITE_BUSY``.
        threadsafe: allow the connection to be used from threads other
            than the creating one (``check_same_thread=False``).  The
            caller must serialize all access externally — the service
            runtime does, holding its lock around every store touch; the
            default keeps sqlite3's own thread check for everyone else.
    """

    name = "sqlite"

    def __init__(
        self,
        path: str = ":memory:",
        batch_size: int = 256,
        bulk_batch_size: int = 8192,
        cache_size: Optional[int] = None,
        write_lock=None,
        threadsafe: bool = False,
    ) -> None:
        if cache_size is None:
            cache_size = _default_cache_size()
        if batch_size < 1 or bulk_batch_size < 1 or cache_size < 1:
            raise BackendError("sqlite backend sizes must be >= 1")
        self.path = path
        self.batch_size = batch_size
        self.bulk_batch_size = bulk_batch_size
        self.cache_size = cache_size
        self._write_lock = write_lock if write_lock is not None else NullLock()
        self._conn = sqlite3.connect(
            path, timeout=30.0, check_same_thread=not threadsafe
        )
        try:
            self._conn.executescript(_SCHEMA_BASE)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise BackendError(
                f"cannot open {path!r} as a SQLite provenance store: {exc}"
            ) from exc
        self._columnar_ready = self._migrate_columnar()
        # Pending (row, record-or-None, cols-or-None) appends, not yet
        # committed, plus an id map so point reads see them without
        # forcing a flush.
        self._pending: List[
            Tuple[StoredRow, Optional[ProvenanceRecord], Optional[str]]
        ] = []
        self._pending_ids: dict = {}
        self._bulk_depth = 0
        self._cache: "OrderedDict[str, ProvenanceRecord]" = OrderedDict()
        self._decoder = None
        self._codec: Optional[ColumnarCodec] = None
        self._closed = False
        #: rows known to lack a cols payload (committed + pending).  May
        #: overcount after aborted batches — safe, it only keeps the
        #: ``OR cols IS NULL`` widening in compiled queries — but never
        #: undercounts.
        self._null_cols = 0
        if self._columnar_ready:
            self._null_cols = self._count_null_cols()
        #: columnar observability (surfaced by ``repro store-stats``).
        self.cache_hits = 0
        self.cache_misses = 0
        self.pushdown_queries = 0
        self.migrated_cols = 0

    def _migrate_columnar(self) -> bool:
        """Bring the schema to v2 (cols + generated columns); idempotent.

        Returns whether the columnar schema is available.  A SQLite build
        without generated-column or JSON support leaves the file on the
        v1 schema and this backend degrades to XML-only operation.
        """
        try:
            # table_xinfo, not table_info: VIRTUAL generated columns are
            # "hidden" and table_info omits them, which would make every
            # reopen re-ALTER etype/ts into a duplicate-column error.
            present = {
                row[1]
                for row in self._conn.execute(
                    "PRAGMA table_xinfo(provenance)"
                )
            }
            if "cols" not in present:
                for statement in _SCHEMA_COLUMNAR:
                    self._conn.execute(statement)
            elif "etype" not in present:
                for statement in _SCHEMA_COLUMNAR[1:]:
                    self._conn.execute(statement)
            self._conn.execute(_COLUMNAR_INDEX)
            self._conn.commit()
            return True
        except sqlite3.OperationalError:
            self._conn.rollback()
            return False

    def fork_handle(self) -> Optional["SQLiteBackend"]:
        """A second connection over the same file (None for ``:memory:``).

        The fork is created threadsafe — it is meant to be owned by one
        worker thread — and duplicates the file write lock (flock is per
        open-file-description, so the fork contends with other processes
        exactly like the original).  In-memory databases are private to
        their connection and cannot be forked.
        """
        if self.path == ":memory:":
            return None
        write_lock = None
        if isinstance(self._write_lock, FileLock):
            write_lock = FileLock(self._write_lock.path)
        return SQLiteBackend(
            self.path,
            batch_size=self.batch_size,
            bulk_batch_size=self.bulk_batch_size,
            cache_size=self.cache_size,
            write_lock=write_lock,
            threadsafe=True,
        )

    def _count_null_cols(self) -> int:
        (nulls,) = self._conn.execute(
            "SELECT COUNT(*) FROM provenance WHERE cols IS NULL"
        ).fetchone()
        return int(nulls)

    def set_decoder(self, decoder) -> None:
        self._decoder = decoder

    # -- columnar representation ---------------------------------------------

    def accepts_cols(self) -> bool:
        return self._columnar_ready

    def bind_columnar(
        self, codec: ColumnarCodec, indexed_attributes: Iterable[str] = ()
    ) -> None:
        """Attach the codec; create expression indexes; backfill old rows.

        The backfill decodes (via the bound row decoder) every row that
        has no payload and was never offered one — bounded by an aux-state
        rowid marker, so a reopened v2 database pays O(1), not O(table).
        Rows that cannot be encoded (tampered, non-canonical) are skipped
        and never retried; they keep decoding from XML.
        """
        if not self._columnar_ready or self._closed:
            return
        self._codec = codec
        for name in sorted(set(indexed_attributes)):
            if _JSON_PATH_RE.match(name) is None:
                continue
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS idx_provenance_attr_{name} "
                f"ON provenance(json_extract(cols, '$.a.{name}'))"
            )
        self._conn.commit()
        if self._decoder is not None:
            self._backfill_cols(codec)
        self._null_cols = self._count_null_cols() + sum(
            1 for __, __, cols in self._pending if cols is None
        )

    def _backfill_cols(self, codec: ColumnarCodec) -> None:
        marker = self.load_state(_BACKFILL_MARKER)
        try:
            floor = int(marker) if marker is not None else 0
        except ValueError:
            floor = 0
        (ceiling,) = self._conn.execute(
            "SELECT COALESCE(MAX(rowid), 0) FROM provenance"
        ).fetchone()
        if ceiling <= floor:
            return
        updates: List[Tuple[str, int]] = []
        cursor = self._conn.execute(
            "SELECT rowid, id, class, appid, xml FROM provenance "
            "WHERE cols IS NULL AND rowid > ? ORDER BY rowid",
            (floor,),
        )
        for rowid, *found in cursor.fetchall():
            row = self._row_from_sql(tuple(found))
            try:
                record = self._decode(row)
            except Exception:
                # Undecodable rows (tampering, schema drift) stay NULL and
                # keep raising from the XML path when actually queried.
                continue
            cols = codec.encode_cols(row, record, verify_xml=True)
            if cols is not None:
                updates.append((cols, int(rowid)))
        with self._write_lock:
            if updates:
                self._conn.executemany(
                    "UPDATE provenance SET cols = ? WHERE rowid = ?",
                    updates,
                )
            self._conn.execute(
                "INSERT OR REPLACE INTO aux_state (key, payload) "
                "VALUES (?, ?)",
                (_BACKFILL_MARKER, str(int(ceiling))),
            )
            self._conn.commit()
        self.migrated_cols += len(updates)

    # -- writes --------------------------------------------------------------

    def append_row(
        self,
        row: StoredRow,
        record: Optional[ProvenanceRecord] = None,
        cols: Optional[str] = None,
    ) -> None:
        self._check_open()
        if not self._columnar_ready:
            cols = None
        elif cols is None:
            self._null_cols += 1
        self._pending.append((row, record, cols))
        self._pending_ids[row.record_id] = len(self._pending) - 1
        if record is not None:
            self._cache_put(row.record_id, record)
        threshold = (
            self.bulk_batch_size if self._bulk_depth else self.batch_size
        )
        if len(self._pending) >= threshold:
            self.flush()

    def flush(self) -> None:
        """Commit all pending appends in one transaction."""
        if not self._pending:
            return
        self._check_open()
        with self._write_lock:
            if self._columnar_ready:
                self._conn.executemany(
                    "INSERT INTO provenance (id, class, appid, xml, cols) "
                    "VALUES (?, ?, ?, ?, ?)",
                    [
                        (r.record_id, r.record_class.value, r.app_id, r.xml, c)
                        for r, __, c in self._pending
                    ],
                )
            else:
                self._conn.executemany(
                    "INSERT INTO provenance (id, class, appid, xml) "
                    "VALUES (?, ?, ?, ?)",
                    [
                        (r.record_id, r.record_class.value, r.app_id, r.xml)
                        for r, __, __c in self._pending
                    ],
                )
            # A death between the INSERTs and the COMMIT must roll the
            # whole batch back — this is the transaction-boundary
            # guarantee the crash model checker exercises.
            crash_point("sqlite.flush.before_commit")
            self._conn.commit()
            crash_point("sqlite.flush.after_commit")
        self._pending.clear()
        self._pending_ids.clear()

    def begin_bulk(self) -> None:
        self._bulk_depth += 1

    def end_bulk(self) -> None:
        if self._bulk_depth > 0:
            self._bulk_depth -= 1
        if self._bulk_depth == 0:
            self.flush()

    # -- reads ---------------------------------------------------------------

    def get(self, record_id: str) -> ProvenanceRecord:
        self._check_open()
        cached = self._cache.get(record_id)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(record_id)
            return cached
        self.cache_misses += 1
        position = self._pending_ids.get(record_id)
        if position is not None:
            row, record, cols = self._pending[position]
            if record is None:
                record = self._materialize(row, cols)
            self._cache_put(record_id, record)
            return record
        found = self._conn.execute(
            "SELECT id, class, appid, xml, cols FROM provenance WHERE id = ?"
            if self._columnar_ready
            else "SELECT id, class, appid, xml FROM provenance WHERE id = ?",
            (record_id,),
        ).fetchone()
        if found is None:
            raise RecordNotFound(record_id)
        row = self._row_from_sql(found[:4])
        cols = found[4] if self._columnar_ready else None
        record = self._materialize(row, cols)
        self._cache_put(record_id, record)
        return record

    def _materialize(
        self,
        row: StoredRow,
        cols: Optional[str],
        projection: Optional[FrozenSet[str]] = None,
    ) -> ProvenanceRecord:
        """Row → record, preferring the columnar payload over XML.

        A missing or stale payload falls back to the XML decoder, so the
        result is always exactly what the oracle path would produce.
        """
        if cols is not None and self._codec is not None:
            record = self._codec.decode_cols(row, cols, projection=projection)
            if record is not None:
                return record
        return self._decode(row)

    def contains(self, record_id: str) -> bool:
        self._check_open()
        if record_id in self._pending_ids or record_id in self._cache:
            return True
        found = self._conn.execute(
            "SELECT 1 FROM provenance WHERE id = ?", (record_id,)
        ).fetchone()
        return found is not None

    def iter_rows(self) -> Iterator[StoredRow]:
        self._check_open()
        self.flush()
        cursor = self._conn.execute(
            "SELECT id, class, appid, xml FROM provenance ORDER BY rowid"
        )
        for found in cursor:
            yield self._row_from_sql(found)

    def iter_records(self) -> Iterator[ProvenanceRecord]:
        # Reads through the cache but does not populate it: a full sweep
        # must not evict the hot point-lookup entries.
        if self._columnar_ready and self._codec is not None:
            for row, cols in self._iter_rows_with_cols():
                cached = self._cache.get(row.record_id)
                yield cached if cached is not None else self._materialize(
                    row, cols
                )
            return
        for row in self.iter_rows():
            cached = self._cache.get(row.record_id)
            yield cached if cached is not None else self._decode(row)

    def _iter_rows_with_cols(
        self,
    ) -> Iterator[Tuple[StoredRow, Optional[str]]]:
        self._check_open()
        self.flush()
        cursor = self._conn.execute(
            "SELECT id, class, appid, xml, cols FROM provenance "
            "ORDER BY rowid"
        )
        for found in cursor:
            yield self._row_from_sql(found[:4]), found[4]

    def iter_records_projected(
        self, attributes: FrozenSet[str]
    ) -> Optional[Iterator[ProvenanceRecord]]:
        if not self._columnar_ready or self._codec is None:
            return None
        if self._decoder is None:
            return None

        def generate() -> Iterator[ProvenanceRecord]:
            # No cache read-through: a projected record must never leak
            # into (or be served from) the full-record cache.
            for row, cols in self._iter_rows_with_cols():
                yield self._materialize(row, cols, projection=attributes)

        return generate()

    def query_records(
        self, query: RecordQuery
    ) -> Optional[List[ProvenanceRecord]]:
        """Push *query* facets down into an indexed SQL WHERE clause.

        Returns a superset of the true matches in append order (the store
        re-applies ``query.matches``), or ``None`` when push-down is
        unavailable or the query has no compilable constraint.
        """
        if not self._columnar_ready or self._codec is None:
            return None
        if self._decoder is None:
            return None
        self._check_open()
        compiled = compile_query(query)
        if not compiled.has_constraints:
            return None
        self.flush()
        where, params = compiled.where_clause(
            include_null_branch=self._null_cols > 0
        )
        self.pushdown_queries += 1
        cursor = self._conn.execute(
            "SELECT id, class, appid, xml, cols FROM provenance "
            f"WHERE {where} ORDER BY rowid",
            params,
        )
        results: List[ProvenanceRecord] = []
        for found in cursor:
            row = self._row_from_sql(found[:4])
            cached = self._cache.get(row.record_id)
            results.append(
                cached if cached is not None else self._materialize(
                    row, found[4]
                )
            )
        return results

    def columnar_coverage(self) -> Tuple[int, int]:
        """``(rows with a cols payload, total rows)`` including pending."""
        self._check_open()
        if not self._columnar_ready:
            return 0, self.count()
        with_cols, total = self._conn.execute(
            "SELECT COUNT(cols), COUNT(*) FROM provenance"
        ).fetchone()
        with_cols = int(with_cols) + sum(
            1 for __, __, cols in self._pending if cols is not None
        )
        return with_cols, int(total) + len(self._pending)

    def count(self) -> int:
        self._check_open()
        (total,) = self._conn.execute(
            "SELECT COUNT(*) FROM provenance"
        ).fetchone()
        return int(total) + len(self._pending)

    def app_ids(self) -> List[str]:
        self._check_open()
        self.flush()
        cursor = self._conn.execute(
            "SELECT appid FROM provenance GROUP BY appid ORDER BY MIN(rowid)"
        )
        return [appid for (appid,) in cursor]

    # -- change feed ---------------------------------------------------------

    def last_seq(self) -> int:
        # Flush so every numbered row is replayable; with no deletes ever,
        # MAX(rowid) == COUNT(*) == the append position of the newest row.
        self._check_open()
        self.flush()
        (seq,) = self._conn.execute(
            "SELECT COALESCE(MAX(rowid), 0) FROM provenance"
        ).fetchone()
        return int(seq)

    def changes_since(self, seq: int) -> Iterator[Tuple[int, StoredRow]]:
        self._check_open()
        self.flush()
        cursor = self._conn.execute(
            "SELECT rowid, id, class, appid, xml FROM provenance "
            "WHERE rowid > ? ORDER BY rowid",
            (seq,),
        )
        for rowid, *found in cursor:
            yield int(rowid), self._row_from_sql(tuple(found))

    # -- auxiliary state -----------------------------------------------------

    def load_state(self, key: str) -> Optional[str]:
        self._check_open()
        found = self._conn.execute(
            "SELECT payload FROM aux_state WHERE key = ?", (key,)
        ).fetchone()
        return found[0] if found is not None else None

    def save_state(self, key: str, payload: str) -> None:
        self._check_open()
        self._conn.execute(
            "INSERT OR REPLACE INTO aux_state (key, payload) VALUES (?, ?)",
            (key, payload),
        )
        self._conn.commit()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._conn.close()
        self._closed = True

    def abort(self) -> None:
        """Process-death close: pending appends are dropped, the open
        transaction (if any) rolls back — exactly what SQLite guarantees
        when the process holding the connection dies.  Idempotent."""
        if self._closed:
            return
        self._pending.clear()
        self._pending_ids.clear()
        self._conn.rollback()
        self._conn.close()
        self._closed = True

    # -- plumbing ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError(f"sqlite backend {self.path!r} is closed")

    def _decode(self, row: StoredRow) -> ProvenanceRecord:
        if self._decoder is None:
            raise BackendError(
                f"cannot materialize row {row.record_id!r}: no decoder bound"
            )
        return self._decoder(row)

    def _cache_put(self, record_id: str, record: ProvenanceRecord) -> None:
        self._cache[record_id] = record
        self._cache.move_to_end(record_id)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    @staticmethod
    def _row_from_sql(found: tuple) -> StoredRow:
        record_id, class_value, app_id, xml = found
        return StoredRow(
            record_id=record_id,
            record_class=RecordClass.from_wire(class_value),
            app_id=app_id,
            xml=xml,
        )
