"""SQLite storage backend — Table I as an actual relational table.

The paper's provenance table is ``(ID, CLASS, APPID, XML)``; this backend
stores it verbatim::

    CREATE TABLE provenance (
        id    TEXT PRIMARY KEY,
        class TEXT NOT NULL,
        appid TEXT NOT NULL,
        xml   TEXT NOT NULL
    )

with secondary SQL indexes on ``class`` and ``appid``.  Append order is the
implicit ``rowid`` order, so dumps and re-printed Table I artifacts are
byte-identical to the memory backend's.

Throughput and latency choices:

- **WAL journal + NORMAL synchronous** on file databases, so readers never
  block the appender and commits avoid a full fsync per transaction.
- **Batched transactions**: appends accumulate in a pending buffer and are
  committed ``executemany``-style every *batch_size* rows (a much larger
  threshold inside :meth:`begin_bulk`/:meth:`end_bulk` sections, which the
  recorder client wraps around event streams).  Reads see pending rows —
  point lookups consult the buffer, scans flush first — so batching is
  invisible to store semantics.
- **Lazy decoding with an LRU record cache**: rows are only materialized
  into records when fetched, and the hot ids (index hits, relation
  endpoints) stay cached.  Full scans read through the cache but do not
  populate it, so sweeps cannot evict the hot set.
- **The table is the change log**: the store never deletes, so ``rowid``
  is exactly the row's 1-based append position — the backend-neutral
  sequence number.  :meth:`changes_since` is a ``rowid > ?`` tail scan,
  which makes catching up after a reopen (or after another handle on the
  same file appended out-of-band) cost O(new rows), not O(table).
- **Auxiliary state** (``aux_state`` table): small named blobs —
  materialized verdict snapshots — persisted next to the rows so
  incremental consumers survive a close/reopen.
"""

from __future__ import annotations

import sqlite3
from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from repro.errors import BackendError, RecordNotFound
from repro.faults.points import crash_point
from repro.model.records import ProvenanceRecord, RecordClass
from repro.store.backends.base import StorageBackend
from repro.store.locks import NullLock
from repro.store.xmlcodec import StoredRow

_SCHEMA = """
CREATE TABLE IF NOT EXISTS provenance (
    id    TEXT PRIMARY KEY,
    class TEXT NOT NULL,
    appid TEXT NOT NULL,
    xml   TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_provenance_class ON provenance(class);
CREATE INDEX IF NOT EXISTS idx_provenance_appid ON provenance(appid);
CREATE TABLE IF NOT EXISTS aux_state (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
"""


class SQLiteBackend(StorageBackend):
    """Durable Table I rows in a SQLite database.

    Args:
        path: database file, or ``":memory:"`` (default) for an ephemeral
            in-process database.
        batch_size: pending appends per transaction outside bulk sections.
        bulk_batch_size: pending appends per transaction inside bulk
            sections (recorder streams).
        cache_size: capacity of the LRU record cache (decoded rows).
        write_lock: optional context manager (a
            :class:`~repro.store.locks.FileLock`) taken around each flush
            transaction, serializing multi-process writers fairly instead
            of spinning on ``SQLITE_BUSY``.
    """

    name = "sqlite"

    def __init__(
        self,
        path: str = ":memory:",
        batch_size: int = 256,
        bulk_batch_size: int = 8192,
        cache_size: int = 4096,
        write_lock=None,
    ) -> None:
        if batch_size < 1 or bulk_batch_size < 1 or cache_size < 1:
            raise BackendError("sqlite backend sizes must be >= 1")
        self.path = path
        self.batch_size = batch_size
        self.bulk_batch_size = bulk_batch_size
        self.cache_size = cache_size
        self._write_lock = write_lock if write_lock is not None else NullLock()
        self._conn = sqlite3.connect(path, timeout=30.0)
        try:
            self._conn.executescript(_SCHEMA)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise BackendError(
                f"cannot open {path!r} as a SQLite provenance store: {exc}"
            ) from exc
        # Pending (row, record-or-None) appends, not yet committed, plus an
        # id map so point reads see them without forcing a flush.
        self._pending: List[Tuple[StoredRow, Optional[ProvenanceRecord]]] = []
        self._pending_ids: dict = {}
        self._bulk_depth = 0
        self._cache: "OrderedDict[str, ProvenanceRecord]" = OrderedDict()
        self._decoder = None
        self._closed = False

    def set_decoder(self, decoder) -> None:
        self._decoder = decoder

    # -- writes --------------------------------------------------------------

    def append_row(
        self, row: StoredRow, record: Optional[ProvenanceRecord] = None
    ) -> None:
        self._check_open()
        self._pending.append((row, record))
        self._pending_ids[row.record_id] = len(self._pending) - 1
        if record is not None:
            self._cache_put(row.record_id, record)
        threshold = (
            self.bulk_batch_size if self._bulk_depth else self.batch_size
        )
        if len(self._pending) >= threshold:
            self.flush()

    def flush(self) -> None:
        """Commit all pending appends in one transaction."""
        if not self._pending:
            return
        self._check_open()
        with self._write_lock:
            self._conn.executemany(
                "INSERT INTO provenance (id, class, appid, xml) "
                "VALUES (?, ?, ?, ?)",
                [
                    (r.record_id, r.record_class.value, r.app_id, r.xml)
                    for r, __ in self._pending
                ],
            )
            # A death between the INSERTs and the COMMIT must roll the
            # whole batch back — this is the transaction-boundary
            # guarantee the crash model checker exercises.
            crash_point("sqlite.flush.before_commit")
            self._conn.commit()
            crash_point("sqlite.flush.after_commit")
        self._pending.clear()
        self._pending_ids.clear()

    def begin_bulk(self) -> None:
        self._bulk_depth += 1

    def end_bulk(self) -> None:
        if self._bulk_depth > 0:
            self._bulk_depth -= 1
        if self._bulk_depth == 0:
            self.flush()

    # -- reads ---------------------------------------------------------------

    def get(self, record_id: str) -> ProvenanceRecord:
        self._check_open()
        cached = self._cache.get(record_id)
        if cached is not None:
            self._cache.move_to_end(record_id)
            return cached
        position = self._pending_ids.get(record_id)
        if position is not None:
            row, record = self._pending[position]
            if record is None:
                record = self._decode(row)
            self._cache_put(record_id, record)
            return record
        found = self._conn.execute(
            "SELECT id, class, appid, xml FROM provenance WHERE id = ?",
            (record_id,),
        ).fetchone()
        if found is None:
            raise RecordNotFound(record_id)
        record = self._decode(self._row_from_sql(found))
        self._cache_put(record_id, record)
        return record

    def contains(self, record_id: str) -> bool:
        self._check_open()
        if record_id in self._pending_ids or record_id in self._cache:
            return True
        found = self._conn.execute(
            "SELECT 1 FROM provenance WHERE id = ?", (record_id,)
        ).fetchone()
        return found is not None

    def iter_rows(self) -> Iterator[StoredRow]:
        self._check_open()
        self.flush()
        cursor = self._conn.execute(
            "SELECT id, class, appid, xml FROM provenance ORDER BY rowid"
        )
        for found in cursor:
            yield self._row_from_sql(found)

    def iter_records(self) -> Iterator[ProvenanceRecord]:
        # Reads through the cache but does not populate it: a full sweep
        # must not evict the hot point-lookup entries.
        for row in self.iter_rows():
            cached = self._cache.get(row.record_id)
            yield cached if cached is not None else self._decode(row)

    def count(self) -> int:
        self._check_open()
        (total,) = self._conn.execute(
            "SELECT COUNT(*) FROM provenance"
        ).fetchone()
        return int(total) + len(self._pending)

    def app_ids(self) -> List[str]:
        self._check_open()
        self.flush()
        cursor = self._conn.execute(
            "SELECT appid FROM provenance GROUP BY appid ORDER BY MIN(rowid)"
        )
        return [appid for (appid,) in cursor]

    # -- change feed ---------------------------------------------------------

    def last_seq(self) -> int:
        # Flush so every numbered row is replayable; with no deletes ever,
        # MAX(rowid) == COUNT(*) == the append position of the newest row.
        self._check_open()
        self.flush()
        (seq,) = self._conn.execute(
            "SELECT COALESCE(MAX(rowid), 0) FROM provenance"
        ).fetchone()
        return int(seq)

    def changes_since(self, seq: int) -> Iterator[Tuple[int, StoredRow]]:
        self._check_open()
        self.flush()
        cursor = self._conn.execute(
            "SELECT rowid, id, class, appid, xml FROM provenance "
            "WHERE rowid > ? ORDER BY rowid",
            (seq,),
        )
        for rowid, *found in cursor:
            yield int(rowid), self._row_from_sql(tuple(found))

    # -- auxiliary state -----------------------------------------------------

    def load_state(self, key: str) -> Optional[str]:
        self._check_open()
        found = self._conn.execute(
            "SELECT payload FROM aux_state WHERE key = ?", (key,)
        ).fetchone()
        return found[0] if found is not None else None

    def save_state(self, key: str, payload: str) -> None:
        self._check_open()
        self._conn.execute(
            "INSERT OR REPLACE INTO aux_state (key, payload) VALUES (?, ?)",
            (key, payload),
        )
        self._conn.commit()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._conn.close()
        self._closed = True

    def abort(self) -> None:
        """Process-death close: pending appends are dropped, the open
        transaction (if any) rolls back — exactly what SQLite guarantees
        when the process holding the connection dies.  Idempotent."""
        if self._closed:
            return
        self._pending.clear()
        self._pending_ids.clear()
        self._conn.rollback()
        self._conn.close()
        self._closed = True

    # -- plumbing ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError(f"sqlite backend {self.path!r} is closed")

    def _decode(self, row: StoredRow) -> ProvenanceRecord:
        if self._decoder is None:
            raise BackendError(
                f"cannot materialize row {row.record_id!r}: no decoder bound"
            )
        return self._decoder(row)

    def _cache_put(self, record_id: str, record: ProvenanceRecord) -> None:
        self._cache[record_id] = record
        self._cache.move_to_end(record_id)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    @staticmethod
    def _row_from_sql(found: tuple) -> StoredRow:
        record_id, class_value, app_id, xml = found
        return StoredRow(
            record_id=record_id,
            record_class=RecordClass.from_wire(class_value),
            app_id=app_id,
            xml=xml,
        )
