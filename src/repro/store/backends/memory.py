"""In-memory storage backend — the seed behavior, now behind the seam.

Rows live in a Python list, records in an id-keyed dict; :meth:`get` hands
back the very record object that was appended (zero-copy), which is what
the store always did before backends existed.  Everything is O(1) except
the full scans, and nothing survives the process.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import RecordNotFound
from repro.model.records import ProvenanceRecord
from repro.store.backends.base import StorageBackend
from repro.store.xmlcodec import StoredRow


class MemoryBackend(StorageBackend):
    """Rows in a list, records in a dict; the default backend."""

    name = "memory"

    def __init__(self) -> None:
        self._rows: List[StoredRow] = []
        self._records: Dict[str, ProvenanceRecord] = {}
        self._order: List[str] = []
        self._state: Dict[str, str] = {}
        self._decoder = None

    def set_decoder(self, decoder) -> None:
        self._decoder = decoder

    def append_row(
        self,
        row: StoredRow,
        record: Optional[ProvenanceRecord] = None,
        cols: Optional[str] = None,
    ) -> None:
        # *cols* is ignored: records live decoded in memory already.
        if record is None:
            if self._decoder is None:
                raise RecordNotFound(
                    f"cannot materialize row {row.record_id!r}: no decoder"
                )
            record = self._decoder(row)
        self._rows.append(row)
        self._records[row.record_id] = record
        self._order.append(row.record_id)

    def get(self, record_id: str) -> ProvenanceRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise RecordNotFound(record_id) from None

    def contains(self, record_id: str) -> bool:
        return record_id in self._records

    def iter_rows(self) -> Iterator[StoredRow]:
        return iter(self._rows)

    def iter_records(self) -> Iterator[ProvenanceRecord]:
        for record_id in self._order:
            yield self._records[record_id]

    def count(self) -> int:
        return len(self._order)

    def last_seq(self) -> int:
        return len(self._rows)

    def changes_since(self, seq: int) -> Iterator[Tuple[int, StoredRow]]:
        # The row list *is* the change log; replay is a slice.
        start = max(seq, 0)
        for offset, row in enumerate(self._rows[start:], start=start + 1):
            yield offset, row

    def load_state(self, key: str) -> Optional[str]:
        return self._state.get(key)

    def save_state(self, key: str, payload: str) -> None:
        # Survives for the life of the backend object — two stores sharing
        # one MemoryBackend see each other's snapshots, mirroring two
        # SQLite handles on one file.
        self._state[key] = payload

    def close(self) -> None:
        """Nothing to release; kept so stores can close any backend."""
