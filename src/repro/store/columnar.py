"""Columnar row representation + SQL predicate push-down plans.

The paper stores "the content of the recorded provenance events as XML"
(Table I), and every query path in this repo used to decode that XML into
Python objects before filtering — fine at 800 traces, fatal at 100k.  The
event logs are naturally columnar (each (CLASS, record-type) pair has a
fixed attribute set), so alongside the XML column the SQLite backend now
persists a compact typed **``cols`` payload** per row:

``{"v": 1, "t": type, "ts": int, "a": {name: value}, "s": src, "g": tgt,
"x": crc32(xml)}``

serialized as minified JSON with sorted keys — deliberately a format
SQLite itself can index (``json_extract`` generated columns + expression
indexes), which is what lets :class:`RecordQuery` attribute predicates
compile into ``WHERE`` clauses instead of decode-then-filter.

**XML stays the interchange and differential oracle format.**  The
``cols`` payload is a cache of the XML decode, never a second source of
truth:

- :meth:`ColumnarCodec.encode_cols` refuses (returns ``None``) for any
  row where the columnar decode could diverge from the ElementTree
  decode — non-strip-stable text, carriage returns, invalid XML
  characters, non-canonical names, boolean timestamps, out-of-int64
  integers — so such rows simply keep taking the XML path,
- :meth:`ColumnarCodec.decode_cols` carries the attribute values as
  *wire text* through the current model's coercers (the same
  ``from_wire`` table the XML decoders use), so typing, type errors, and
  model-revision changes behave identically on both paths,
- a CRC of the XML column is embedded in the payload; any at-rest
  tampering of the XML invalidates the columnar fast path and the row
  falls back to the XML decode — which raises the same
  :class:`~repro.errors.CodecError` it always did.

Push-down compilation follows a **superset rule**: the store re-applies
``query.matches(record)`` to every candidate, so a compiled SQL filter
only needs to never produce *false negatives*; predicates whose SQL
semantics cannot be proven superset-safe are left as residual Python
filters.
"""

from __future__ import annotations

import json
import re
import zlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

from repro.errors import CodecError
from repro.model.attributes import AttributeValue
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
    record_from_parts,
)
from repro.model.schema import ProvenanceDataModel
from repro.store.query import RecordQuery
from repro.store.xmlcodec import (
    StoredRow,
    XmlCodec,
    _attribute_to_wire,
    _INVALID_XML_CHAR_RE,
    _NAME,
    _RESERVED,
)

COLS_VERSION = 1

# Tag names the columnar payload claims — the same conservative ASCII
# subset the compiled XML codec claims, so a cols-bearing row is always a
# row the canonical encoders could have produced.
_SAFE_NAME_RE = re.compile(rf"{_NAME}\Z")

# Attribute names safe to splice into a json_extract '$.a.<name>' path
# (no quoting ambiguity).  Names outside it stay residual Python filters.
_JSON_PATH_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

# SQLite integers are int64; a JSON integer outside this range is read
# back as an approximated REAL by json_extract, which could produce
# false negatives under ordered comparisons.  Such values are simply not
# encoded (storage side) / not pushed (parameter side).
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


def _crc(xml: str) -> Optional[int]:
    try:
        return zlib.crc32(xml.encode("utf-8")) & 0xFFFFFFFF
    except UnicodeEncodeError:
        return None


def _wire_stable(text: str) -> bool:
    """Whether the XML decode would hand *text* back unchanged.

    Element text is stripped after line-ending normalization, so leading
    or trailing whitespace and any ``\\r`` make the columnar copy diverge
    from what :func:`~repro.store.xmlcodec.decode_row` yields.
    """
    return "\r" not in text and text == text.strip()


class ColumnarCodec:
    """Encode/decode the ``cols`` payload for one data model.

    Like :class:`~repro.store.xmlcodec.XmlCodec`, one instance lives as
    long as its store and compiles per-(CLASS, record-type) coercer
    tables lazily, invalidating them when the model's revision moves.
    """

    def __init__(self, model: Optional[ProvenanceDataModel] = None) -> None:
        self.model = model
        self._coercers: Dict[str, Dict[str, Callable[[str], object]]] = {}
        self._model_revision = self._revision()
        # Canonical re-encoder for verify_xml (verbatim/backfill rows).
        self._xml = XmlCodec(model)
        #: rows encoded / refused (regression metrics).
        self.encoded = 0
        self.encode_skips = 0
        #: rows decoded columnar / handed back to the XML path.
        self.cols_decodes = 0
        self.cols_rejects = 0

    def _revision(self) -> int:
        if self.model is None:
            return 0
        return getattr(self.model, "revision", 0)

    def _check_revision(self) -> None:
        current = self._revision()
        if current != self._model_revision:
            self._coercers.clear()
            self._model_revision = current

    # -- encoding ------------------------------------------------------------

    def encode_cols(
        self,
        row: StoredRow,
        record: ProvenanceRecord,
        verify_xml: bool = False,
    ) -> Optional[str]:
        """The ``cols`` payload for *(row, record)*, or ``None``.

        ``None`` means "this row must keep taking the XML decode path" —
        either because the columnar copy could diverge from the XML
        decode, or because the XML decode would raise and the columnar
        path must not mask that error.

        Args:
            verify_xml: byte-compare a canonical re-encode of *record*
                against ``row.xml`` and refuse on mismatch.  Required on
                the verbatim-row path (``append_row``/backfill), where the
                XML was not produced by this store's encoder; the normal
                append path skips it because the row is canonical by
                construction.
        """
        if type(record.timestamp) is not int or not (
            _INT64_MIN <= record.timestamp <= _INT64_MAX
        ):
            # A bool (or huge) timestamp decodes differently — or raises —
            # on the XML path; don't mask it.
            self.encode_skips += 1
            return None
        if _SAFE_NAME_RE.match(record.entity_type) is None:
            self.encode_skips += 1
            return None
        if not _wire_stable(record.app_id):
            self.encode_skips += 1
            return None
        payload: Dict[str, object] = {
            "v": COLS_VERSION,
            "t": record.entity_type,
            "ts": record.timestamp,
        }
        if isinstance(record, RelationRecord):
            if not _wire_stable(record.source_id) or not _wire_stable(
                record.target_id
            ):
                self.encode_skips += 1
                return None
            payload["s"] = record.source_id
            payload["g"] = record.target_id
        attrs: Dict[str, AttributeValue] = {}
        for name, value in record._attributes:
            if _SAFE_NAME_RE.match(name) is None or name in _RESERVED:
                self.encode_skips += 1
                return None
            if not isinstance(value, (str, int, float, bool)):
                self.encode_skips += 1
                return None
            if isinstance(value, int) and not isinstance(value, bool):
                if not (_INT64_MIN <= value <= _INT64_MAX):
                    self.encode_skips += 1
                    return None
            if not _wire_stable(_attribute_to_wire(value)):
                self.encode_skips += 1
                return None
            attrs[name] = value
        payload["a"] = attrs
        if _INVALID_XML_CHAR_RE.search(row.xml):
            # The XML decode raises "malformed XML" on these rows; the
            # columnar path must not silently succeed where it fails.
            self.encode_skips += 1
            return None
        if verify_xml:
            try:
                canonical = self._xml.encode_record_xml(record)
            except Exception:
                self.encode_skips += 1
                return None
            if canonical != row.xml:
                self.encode_skips += 1
                return None
        crc = _crc(row.xml)
        if crc is None:
            self.encode_skips += 1
            return None
        payload["x"] = crc
        try:
            encoded = json.dumps(
                payload,
                separators=(",", ":"),
                sort_keys=True,
                allow_nan=False,
            )
        except (TypeError, ValueError):
            # Non-finite floats, exotic attribute objects.
            self.encode_skips += 1
            return None
        self.encoded += 1
        return encoded

    # -- decoding ------------------------------------------------------------

    def _coercers_for(
        self, record_class: RecordClass, entity_type: str
    ) -> Dict[str, Callable[[str], object]]:
        if record_class is RecordClass.RELATION or self.model is None:
            return {}
        cached = self._coercers.get(entity_type)
        if cached is None:
            cached = {}
            if self.model.has_node_type(entity_type):
                for spec in self.model.node_type(entity_type).attributes:
                    cached[spec.name] = spec.type.from_wire
            self._coercers[entity_type] = cached
        return cached

    def decode_cols(
        self,
        row: StoredRow,
        cols: str,
        projection: Optional[FrozenSet[str]] = None,
    ) -> Optional[ProvenanceRecord]:
        """Materialize a record from a row's ``cols`` payload.

        Returns ``None`` when the payload is unusable (wrong version,
        malformed, or its CRC no longer matches the XML column — i.e. the
        XML was modified after the payload was written); callers fall
        back to the XML decode, which reports tampering exactly as it
        always did.  Typed attribute coercion errors
        (:class:`~repro.errors.SchemaViolation`) propagate just as they
        do from the XML decoders.

        Args:
            projection: when given, only attributes named in it are
                materialized — the lazy-projection sweep path.  Class,
                type, timestamp, and relation endpoints always decode.
        """
        self._check_revision()
        try:
            payload = json.loads(cols)
        except ValueError:
            self.cols_rejects += 1
            return None
        if not isinstance(payload, dict) or payload.get("v") != COLS_VERSION:
            self.cols_rejects += 1
            return None
        if payload.get("x") != _crc(row.xml):
            self.cols_rejects += 1
            return None
        entity_type = payload.get("t")
        timestamp = payload.get("ts")
        raw_attrs = payload.get("a")
        source_id = payload.get("s", "")
        target_id = payload.get("g", "")
        if (
            not isinstance(entity_type, str)
            or type(timestamp) is not int
            or not isinstance(raw_attrs, dict)
            or not isinstance(source_id, str)
            or not isinstance(target_id, str)
        ):
            self.cols_rejects += 1
            return None
        coercers = self._coercers_for(row.record_class, entity_type)
        attributes: Dict[str, AttributeValue] = {}
        for name, value in raw_attrs.items():
            if projection is not None and name not in projection:
                continue
            # Wire-transport: the payload value round-trips through the
            # same wire text + coercer the XML decode uses, so both paths
            # agree on types (and on type errors) by construction.
            wire = _attribute_to_wire(value)
            coercer = coercers.get(name)
            attributes[name] = wire if coercer is None else coercer(wire)
        try:
            record = record_from_parts(
                record_class=row.record_class,
                record_id=row.record_id,
                app_id=row.app_id,
                entity_type=entity_type,
                timestamp=timestamp,
                attributes=attributes,
                source_id=source_id,
                target_id=target_id,
            )
        except Exception as exc:
            raise CodecError(f"row {row.record_id}: {exc}") from exc
        self.cols_decodes += 1
        return record


# -- push-down plan compilation ----------------------------------------------


@dataclass(frozen=True)
class CompiledQuery:
    """A :class:`RecordQuery` lowered to SQL clauses over one row table.

    ``physical`` clauses filter the real columns (``class``, ``appid``)
    and apply to every row; ``cols`` clauses filter the columnar payload
    and are only valid for rows where ``cols IS NOT NULL`` — the backend
    widens them with an ``OR cols IS NULL`` branch while any un-encoded
    rows exist, so those rows remain candidates for the store's residual
    Python filter (the superset rule).
    """

    physical: Tuple[str, ...]
    physical_params: Tuple[object, ...]
    cols: Tuple[str, ...]
    cols_params: Tuple[object, ...]
    #: predicates compiled into SQL vs. left to query.matches().
    pushed: int
    residual: int

    @property
    def has_constraints(self) -> bool:
        return bool(self.physical or self.cols)

    def where_clause(
        self, include_null_branch: bool
    ) -> Tuple[str, Tuple[object, ...]]:
        """``(sql, params)`` for the WHERE body.

        *include_null_branch* keeps rows without a columnar payload in
        the candidate set; pass ``False`` only when the table is known to
        have no NULL ``cols`` (which is also what lets the expression
        indexes engage).
        """
        clauses = list(self.physical)
        params: List[object] = list(self.physical_params)
        if self.cols:
            joined = " AND ".join(self.cols)
            if include_null_branch:
                clauses.append(f"(cols IS NULL OR ({joined}))")
            else:
                clauses.append(f"({joined})")
            params.extend(self.cols_params)
        if not clauses:
            return "1", ()
        return " AND ".join(clauses), tuple(params)


def attr_expr(name: str) -> str:
    """The SQL expression reading attribute *name* from the payload."""
    return f"json_extract(cols, '$.a.{name}')"


def _bindable(value: object) -> Optional[object]:
    """*value* as a SQLite parameter, or ``None`` when unbindable/unsafe."""
    if isinstance(value, bool):
        # json_extract reads JSON booleans back as 0/1.
        return int(value)
    if isinstance(value, int):
        return value if _INT64_MIN <= value <= _INT64_MAX else None
    if isinstance(value, float):
        return value if value == value and value not in (
            float("inf"), float("-inf")
        ) else None
    if isinstance(value, str):
        return value
    return None


def _predicate_sql(
    predicate,
) -> Optional[Tuple[str, Tuple[object, ...]]]:
    """One attribute predicate as a superset-safe SQL clause, or ``None``.

    Safe because encoded payloads only hold str/int64/float/bool values
    (SQLite compares int64/REAL exactly and TEXT in code-point order, so
    same-type comparisons agree with Python), and cross-type comparisons
    in SQLite either agree with Python's (``==``/``!=`` across types) or
    err on the side of matching (type-ordered ``<``/``>``) — false
    positives the store's final ``query.matches`` filter removes.
    """
    if _JSON_PATH_RE.match(predicate.name) is None:
        return None
    expr = attr_expr(predicate.name)
    if predicate.op == "exists":
        return f"{expr} IS NOT NULL", ()
    if predicate.op == "absent":
        return f"{expr} IS NULL", ()
    if predicate.value is None:
        return None
    param = _bindable(predicate.value)
    if param is None:
        return None
    operator_sql = {
        "==": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    }.get(predicate.op)
    if operator_sql is None:
        return None
    return f"{expr} {operator_sql} ?", (param,)


def compile_query(query: RecordQuery) -> CompiledQuery:
    """Lower *query* into a :class:`CompiledQuery` under the superset rule.

    Every facet that compiles cleanly becomes SQL; everything else stays
    a residual count (the caller's ``query.matches`` handles it).
    """
    physical: List[str] = []
    physical_params: List[object] = []
    cols: List[str] = []
    cols_params: List[object] = []
    pushed = 0
    residual = 0
    if query.record_class is not None:
        physical.append("class = ?")
        physical_params.append(query.record_class.value)
    if query.app_id is not None:
        physical.append("appid = ?")
        physical_params.append(query.app_id)
    if query.entity_type is not None:
        if _SAFE_NAME_RE.match(query.entity_type) is not None:
            cols.append("etype = ?")
            cols_params.append(query.entity_type)
        else:
            residual += 1
    if query.since is not None:
        bound = _bindable(query.since)
        if isinstance(bound, int):
            cols.append("ts >= ?")
            cols_params.append(bound)
        else:
            residual += 1
    if query.until is not None:
        bound = _bindable(query.until)
        if isinstance(bound, int):
            cols.append("ts <= ?")
            cols_params.append(bound)
        else:
            residual += 1
    for predicate in query.predicates:
        clause = _predicate_sql(predicate)
        if clause is None:
            residual += 1
            continue
        sql, params = clause
        cols.append(sql)
        cols_params.extend(params)
        pushed += 1
    return CompiledQuery(
        physical=tuple(physical),
        physical_params=tuple(physical_params),
        cols=tuple(cols),
        cols_params=tuple(cols_params),
        pushed=pushed,
        residual=residual,
    )
