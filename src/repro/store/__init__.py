"""Provenance store.

The store keeps every provenance record in the paper's Table I row shape:
``(ID, CLASS, APPID, XML)``, where the XML column serializes the record's
entity type and attributes as elements under a ``ps:`` namespace.  The store
is append-only; correlation analytics and control deployment append new rows
rather than mutating existing ones.

The physical rows live behind a pluggable storage backend
(:mod:`repro.store.backends`): in-memory by default, SQLite (WAL, batched
transactions, lazy decoding) for durable stores that persist across runs.

Querying comes in the two styles of §II.A:

- :mod:`repro.store.query` — an on-demand query frontend (filter by class,
  APPID, entity type, attribute predicates, XPath-lite paths),
- :mod:`repro.store.continuous` — deployed queries that "emit results in
  real-time, feeding existing dashboard systems".
"""

from repro.store.xmlcodec import decode_row, encode_row, StoredRow
from repro.store.backends import (
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    StorageBackend,
    create_backend,
)
from repro.store.cursor import (
    VectorCursor,
    cursor_covers,
    cursor_from_wire,
    cursor_to_wire,
    cursor_total,
)
from repro.store.store import ProvenanceStore
from repro.store.index import StoreIndex
from repro.store.query import AttributePredicate, RecordQuery, xpath_lite
from repro.store.continuous import ContinuousQuery, Subscription

__all__ = [
    "AttributePredicate",
    "ContinuousQuery",
    "MemoryBackend",
    "ProvenanceStore",
    "RecordQuery",
    "ShardedBackend",
    "SQLiteBackend",
    "StorageBackend",
    "StoreIndex",
    "StoredRow",
    "Subscription",
    "VectorCursor",
    "create_backend",
    "cursor_covers",
    "cursor_from_wire",
    "cursor_to_wire",
    "cursor_total",
    "decode_row",
    "encode_row",
    "xpath_lite",
]
