"""Change-feed cursors: plain ints for single backends, vectors for shards.

A cursor names a position in a backend's change feed.  Single backends
use a bare ``int`` (the 1-based sequence of the last consumed row);
:class:`~repro.store.backends.sharded.ShardedBackend` uses a
:class:`VectorCursor` holding one such sequence per shard, because the
shards advance independently and there is no global total order to
number.

The two representations interoperate through the helpers in this module
so that pre-sharding snapshots (``int`` cursors) restore cleanly under
the composite code path: an ``int`` compares against a vector only when
the vector has one component (the N=1 degenerate case) or when one side
is at position zero.  Any other cross-shape comparison is *incompatible*
and :func:`cursor_covers` answers ``False`` — callers treat that as a
stale snapshot and re-materialize cold, which is always safe.
"""

from __future__ import annotations

from typing import List, Sequence, Union


class VectorCursor:
    """An immutable per-shard position vector.

    ``seqs[i]`` is the last consumed 1-based sequence in shard ``i``.
    Vectors order by componentwise comparison (a partial order); use
    :func:`cursor_covers` rather than ``<=`` when one side may be an
    ``int`` from a pre-sharding snapshot.
    """

    __slots__ = ("seqs",)

    def __init__(self, seqs: Sequence[int]):
        object.__setattr__(self, "seqs", tuple(int(s) for s in seqs))

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("VectorCursor is immutable")

    def total(self) -> int:
        """Total rows consumed across all shards."""
        return sum(self.seqs)

    def advance(self, shard: int) -> "VectorCursor":
        """A new cursor with shard ``shard`` advanced by one row."""
        seqs = list(self.seqs)
        seqs[shard] += 1
        return VectorCursor(seqs)

    def __len__(self) -> int:
        return len(self.seqs)

    def __eq__(self, other) -> bool:
        if isinstance(other, VectorCursor):
            return self.seqs == other.seqs
        if isinstance(other, int):
            # An int is comparable as the N=1 degenerate vector, or as
            # zero (the empty position) against any all-zero vector.
            if len(self.seqs) == 1:
                return self.seqs[0] == other
            return other == 0 and not any(self.seqs)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if len(self.seqs) == 1:
            return hash(self.seqs[0])  # match the degenerate int
        return hash(self.seqs)

    def __le__(self, other) -> bool:
        return cursor_covers(other, self)

    def __ge__(self, other) -> bool:
        return cursor_covers(self, other)

    def __repr__(self) -> str:
        return "VectorCursor(%r)" % (list(self.seqs),)

    def __str__(self) -> str:
        return "|".join(str(s) for s in self.seqs)


Cursor = Union[int, VectorCursor]


def cursor_total(cursor: Cursor) -> int:
    """Total rows consumed at ``cursor`` (sum over shards)."""
    if isinstance(cursor, VectorCursor):
        return cursor.total()
    return int(cursor)


def cursor_distance(a: Cursor, b: Cursor) -> int:
    """How many rows ``a`` is ahead of ``b``, by total position."""
    return cursor_total(a) - cursor_total(b)


def cursor_covers(a: Cursor, b: Cursor) -> bool:
    """True when position ``a`` has consumed every row that ``b`` has.

    Componentwise ``>=`` for same-shape vectors.  An ``int`` and a
    vector are comparable only in the degenerate cases (one component,
    or a zero side); incompatible shapes — a snapshot taken under a
    different shard count — answer ``False`` so callers fall back to a
    cold rebuild instead of replaying a feed that no longer lines up.
    """
    a_vec = isinstance(a, VectorCursor)
    b_vec = isinstance(b, VectorCursor)
    if a_vec and b_vec:
        if len(a.seqs) != len(b.seqs):
            return False
        return all(x >= y for x, y in zip(a.seqs, b.seqs))
    if not a_vec and not b_vec:
        return int(a) >= int(b)
    # Mixed shapes: normalize the int side where that is unambiguous.
    if a_vec:
        if len(a.seqs) == 1:
            return a.seqs[0] >= int(b)
        return int(b) == 0  # any position covers the empty one
    if len(b.seqs) == 1:
        return int(a) >= b.seqs[0]
    return not any(b.seqs)  # any valid position covers the empty one


def advance_cursor(cursor: Cursor, shard: int) -> Cursor:
    """Advance ``cursor`` by one row in shard ``shard``.

    Int cursors stay ints (they only ever describe shard 0).
    """
    if isinstance(cursor, VectorCursor):
        return cursor.advance(shard)
    if shard != 0:
        raise ValueError(
            "int cursor cannot advance shard %d; expected a VectorCursor"
            % shard
        )
    return int(cursor) + 1


def coerce_cursor(cursor: Cursor, shard_count: int) -> "VectorCursor":
    """Normalize ``cursor`` to a vector of length ``shard_count``.

    Accepts the zero int (empty position) for any shard count, any int
    for a single shard, and a matching-length vector.  Anything else is
    a cursor from a different sharding layout and raises ``ValueError``.
    """
    if isinstance(cursor, VectorCursor):
        if len(cursor.seqs) == shard_count:
            return cursor
        if not any(cursor.seqs):
            return VectorCursor([0] * shard_count)
        raise ValueError(
            "cursor %s has %d components; backend has %d shards"
            % (cursor, len(cursor.seqs), shard_count)
        )
    value = int(cursor)
    if value == 0:
        return VectorCursor([0] * shard_count)
    if shard_count == 1:
        return VectorCursor([value])
    raise ValueError(
        "int cursor %d is ambiguous for a %d-shard backend"
        % (value, shard_count)
    )


def cursor_to_wire(cursor: Cursor) -> Union[int, List[int]]:
    """JSON-serializable form: int stays int, vector becomes a list."""
    if isinstance(cursor, VectorCursor):
        return list(cursor.seqs)
    return int(cursor)


def cursor_from_wire(value) -> Cursor:
    """Inverse of :func:`cursor_to_wire` (also accepts tuples)."""
    if isinstance(value, (list, tuple)):
        return VectorCursor(value)
    return int(value)
