"""Advisory file locks guarding multi-process writes to SQLite shards.

SQLite serializes writers on its own, but under WAL a busy writer makes
concurrent committers spin on ``SQLITE_BUSY``.  Wrapping each shard's
flush transaction in an exclusive :class:`FileLock` turns that spin into
a fair blocking wait, and gives the sharded store one obvious artifact
per shard (``<shard>.lock``) to reason about.

On platforms without ``fcntl`` the lock degrades to a no-op — writers
then rely on SQLite's own busy timeout, which is correct but slower
under contention.
"""

from __future__ import annotations

import os

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


class FileLock:
    """An exclusive advisory lock on ``path``, used as a context manager.

    Re-entrant within a process is NOT supported (and not needed: the
    backend takes it only around one flush transaction at a time).
    """

    def __init__(self, path: str):
        self.path = path
        self._fd = None

    def acquire(self) -> None:
        if fcntl is None:
            return
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        fcntl.flock(self._fd, fcntl.LOCK_EX)

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class NullLock:
    """The do-nothing lock used when no cross-process guard is needed."""

    def __enter__(self) -> "NullLock":
        return self

    def __exit__(self, *exc) -> None:
        pass
