"""XML codec for provenance rows.

Table I stores "the content of the recorded provenance events as XML": each
row is ``(ID, CLASS, APPID, XML)`` and the XML column looks like::

    <ps:jobrequisition ps:id="PE3" ps:class="data">
      <ps:appid>App01</ps:appid>
      <ps:reqid>Req001</ps:reqid>
      <ps:timestamp value="86400"/>
      <ps:type>new</ps:type>
      ...
    </ps:jobrequisition>

The codec round-trips records through that exact shape.  Two implementations
coexist:

- the **ElementTree path** (:func:`encode_record_xml` / :func:`decode_row`)
  — the semantics oracle.  It builds/parses real element trees and is what
  defines the wire format,
- the **compiled fast path** (:class:`XmlCodec`) — per-(CLASS, record-type)
  encoder/decoder closures generated from the
  :class:`~repro.model.schema.ProvenanceDataModel`: direct string building
  on encode (ElementTree-identical escaping), single-pass regex extraction
  on decode (interned tag fragments, precomputed attribute coercers).  Any
  row whose XML does not match the canonical shape the encoder emits —
  foreign prefixes, nested elements, unknown entities, malformed markup —
  falls back to the ElementTree path, byte-for-byte and error-for-error
  identical (the differential fuzz suite asserts this).

Attribute typing on decode is delegated to the data model when one is
supplied; otherwise values decode as strings (which is what the physical
table knows).
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import CodecError
from repro.model.attributes import AttributeType, AttributeValue
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
    record_from_parts,
)
from repro.model.schema import ProvenanceDataModel

PS_NAMESPACE = "http://repro.example/provenance"
_PS = f"{{{PS_NAMESPACE}}}"

ET.register_namespace("ps", PS_NAMESPACE)

# Elements with reserved meaning inside the XML payload; everything else is
# an attribute of the record.
_RESERVED = ("appid", "timestamp", "source", "target")


@dataclass(frozen=True)
class StoredRow:
    """One physical row of the provenance table (Table I layout)."""

    record_id: str
    record_class: RecordClass
    app_id: str
    xml: str

    def as_tuple(self) -> tuple:
        """The ``(ID, CLASS, APPID, XML)`` tuple the paper prints."""
        return (self.record_id, self.record_class.value, self.app_id, self.xml)


def _attribute_to_wire(value: AttributeValue) -> str:
    if isinstance(value, bool):
        return AttributeType.BOOLEAN.to_wire(value)
    return str(value)


def encode_record_xml(record: ProvenanceRecord) -> str:
    """Serialize a record's payload into its XML column text."""
    root = ET.Element(f"{_PS}{record.entity_type}")
    root.set(f"{_PS}id", record.record_id)
    root.set(f"{_PS}class", record.record_class.value.lower())
    appid = ET.SubElement(root, f"{_PS}appid")
    appid.text = record.app_id
    timestamp = ET.SubElement(root, f"{_PS}timestamp")
    timestamp.set("value", str(record.timestamp))
    if isinstance(record, RelationRecord):
        source = ET.SubElement(root, f"{_PS}source")
        source.text = record.source_id
        target = ET.SubElement(root, f"{_PS}target")
        target.text = record.target_id
    for name, value in sorted(record.attributes.items()):
        element = ET.SubElement(root, f"{_PS}{name}")
        element.text = _attribute_to_wire(value)
    return ET.tostring(root, encoding="unicode")


def encode_row(record: ProvenanceRecord) -> StoredRow:
    """Turn a record into its physical Table I row."""
    return StoredRow(
        record_id=record.record_id,
        record_class=record.record_class,
        app_id=record.app_id,
        xml=encode_record_xml(record),
    )


def _local_name(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def decode_row(
    row: StoredRow, model: Optional[ProvenanceDataModel] = None
) -> ProvenanceRecord:
    """Materialize a record from a physical row.

    When *model* is given, attribute text is coerced to the types the node
    type declares; otherwise attributes come back as strings.  Raises
    :class:`CodecError` on malformed XML or on mismatches between the row
    columns and the embedded ``ps:id``/``ps:class`` markers, because such a
    mismatch means the table was corrupted.
    """
    try:
        root = ET.fromstring(row.xml)
    except ET.ParseError as exc:
        raise CodecError(f"row {row.record_id}: malformed XML") from exc

    entity_type = _local_name(root.tag)
    embedded_id = root.get(f"{_PS}id")
    if embedded_id is not None and embedded_id != row.record_id:
        raise CodecError(
            f"row {row.record_id}: embedded ps:id {embedded_id!r} disagrees"
        )
    embedded_class = root.get(f"{_PS}class")
    if (
        embedded_class is not None
        and embedded_class.lower() != row.record_class.value.lower()
    ):
        raise CodecError(
            f"row {row.record_id}: embedded ps:class {embedded_class!r} "
            f"disagrees with column {row.record_class.value!r}"
        )

    timestamp = 0
    source_id = ""
    target_id = ""
    raw: Dict[str, str] = {}
    for child in root:
        name = _local_name(child.tag)
        text = (child.text or "").strip()
        if name == "appid":
            if text != row.app_id:
                raise CodecError(
                    f"row {row.record_id}: embedded appid {text!r} disagrees"
                )
        elif name == "timestamp":
            value = child.get("value", text or "0")
            try:
                timestamp = int(value)
            except ValueError as exc:
                raise CodecError(
                    f"row {row.record_id}: bad timestamp {value!r}"
                ) from exc
        elif name == "source":
            source_id = text
        elif name == "target":
            target_id = text
        else:
            raw[name] = text

    attributes: Mapping[str, AttributeValue]
    if model is not None and row.record_class is not RecordClass.RELATION:
        attributes = model.coerce_attributes(entity_type, raw)
    else:
        attributes = raw

    try:
        return record_from_parts(
            record_class=row.record_class,
            record_id=row.record_id,
            app_id=row.app_id,
            entity_type=entity_type,
            timestamp=timestamp,
            attributes=attributes,
            source_id=source_id,
            target_id=target_id,
        )
    except Exception as exc:
        raise CodecError(f"row {row.record_id}: {exc}") from exc


# -- compiled fast path -------------------------------------------------------
#
# ElementTree spends most of an encode walking element objects and resolving
# qnames, and most of a decode building a tree it immediately discards.  The
# compiled codec skips both: the canonical row shape is flat (a root element,
# reserved children, one element per attribute, no nesting), so encoding is
# pure string assembly and decoding is one anchored regex walk.

# Exact replicas of ElementTree's _escape_cdata / _escape_attrib (the
# serializer the oracle path uses), so fast-encoded XML is byte-identical.


def _escape_text(text: str) -> str:
    if "&" in text:
        text = text.replace("&", "&amp;")
    if "<" in text:
        text = text.replace("<", "&lt;")
    if ">" in text:
        text = text.replace(">", "&gt;")
    return text


def _escape_attr(text: str) -> str:
    if "&" in text:
        text = text.replace("&", "&amp;")
    if "<" in text:
        text = text.replace("<", "&lt;")
    if ">" in text:
        text = text.replace(">", "&gt;")
    if '"' in text:
        text = text.replace('"', "&quot;")
    if "\r" in text:
        text = text.replace("\r", "&#13;")
    if "\n" in text:
        text = text.replace("\n", "&#10;")
    if "\t" in text:
        text = text.replace("\t", "&#09;")
    return text


class _Fallback(Exception):
    """Internal: this row's XML is not in canonical shape; use ElementTree."""


_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_ENTITY_RE = re.compile(r"&([a-zA-Z]+|#[0-9]+|#x[0-9a-fA-F]+);")


def _valid_xml_codepoint(code: int) -> bool:
    return (
        code in (0x9, 0xA, 0xD)
        or 0x20 <= code <= 0xD7FF
        or 0xE000 <= code <= 0xFFFD
        or 0x10000 <= code <= 0x10FFFF
    )


def _decode_text(raw: str) -> str:
    """What expat yields for literal element text: line-ending
    normalization (``\\r\\n``/``\\r`` → ``\\n``) first, then entities."""
    if "\r" in raw:
        raw = raw.replace("\r\n", "\n").replace("\r", "\n")
    return _unescape(raw)


def _decode_attr(raw: str) -> str:
    """What expat yields for a literal attribute value: line-ending then
    attribute-value normalization (literal whitespace → space) before
    entity expansion (character references survive as-is)."""
    if "\r" in raw:
        raw = raw.replace("\r\n", "\n").replace("\r", "\n")
    if "\n" in raw:
        raw = raw.replace("\n", " ")
    if "\t" in raw:
        raw = raw.replace("\t", " ")
    return _unescape(raw)


def _unescape(text: str) -> str:
    """Resolve the entities expat would; anything else punts to the oracle."""
    if "&" not in text:
        return text
    out = []
    pos = 0
    while True:
        amp = text.find("&", pos)
        if amp < 0:
            out.append(text[pos:])
            return "".join(out)
        match = _ENTITY_RE.match(text, amp)
        if match is None:
            raise _Fallback  # bare ampersand: expat would reject this
        body = match.group(1)
        if body.startswith("#x"):
            code = int(body[2:], 16)
        elif body.startswith("#"):
            code = int(body[1:])
        else:
            code = None
            replacement = _NAMED_ENTITIES.get(body)
            if replacement is None:
                raise _Fallback  # entity we cannot prove expat resolves
        if code is not None:
            if not _valid_xml_codepoint(code):
                raise _Fallback
            replacement = chr(code)
        out.append(text[pos:amp])
        out.append(replacement)
        pos = match.end()


# Tag names the fast path claims: a conservative ASCII subset of XML
# Names.  Anything outside it (unicode names, but also junk like a bare
# "&" that expat would reject) falls back to the oracle, which is the
# side that knows the real rules.
_NAME = r"[A-Za-z_][A-Za-z0-9._-]*"

# Root of a canonically encoded row:
#   <ps:TYPE xmlns:ps="..." ps:id="ID" ps:class="CLS">
_ROOT_RE = re.compile(
    rf"<ps:({_NAME})"
    r' xmlns:ps="http://repro\.example/provenance"'
    r' ps:id="([^"<]*)" ps:class="([^"<]*)">'
)

# One canonical child: an empty element (optionally with the timestamp's
# value attribute), or a flat text element with a matching close tag.
_CHILD_RE = re.compile(
    rf'<ps:({_NAME})(?: value="([^"<]*)")? />'
    rf"|<ps:({_NAME})>([^<]*)</ps:({_NAME})>"
)

# Characters XML 1.0 forbids outright; expat raises on them, so a document
# containing one must take the oracle path to get the oracle's error.
_INVALID_XML_CHAR_RE = re.compile(
    "[\x00-\x08\x0b\x0c\x0e-\x1f\ud800-\udfff\ufffe\uffff]"
)

Encoder = Callable[[ProvenanceRecord], str]
Decoder = Callable[..., ProvenanceRecord]


class XmlCodec:
    """Compiled per-(CLASS, record-type) codecs over one data model.

    One instance is meant to live as long as its store: encoder and decoder
    closures are generated on first use of each (record class, entity type)
    pair and reused for every subsequent row, so bulk ingestion never
    re-derives schema lookups, tag strings, or attribute coercers per row.

    The fast paths are exact: encoded XML is byte-identical to
    :func:`encode_record_xml`, and decoding matches :func:`decode_row`
    including error messages — rows outside the canonical shape are simply
    handed to the ElementTree oracle.
    """

    def __init__(self, model: Optional[ProvenanceDataModel] = None) -> None:
        self.model = model
        self._encoders: Dict[Tuple[RecordClass, str], Encoder] = {}
        self._decoders: Dict[Tuple[RecordClass, str], Decoder] = {}
        self._model_revision = self._revision()
        #: rows decoded by the compiled path vs. handed to ElementTree
        #: (regression metric: fallbacks on canonical rows mean a codec gap).
        self.fast_decodes = 0
        self.fallback_decodes = 0

    def _revision(self) -> int:
        if self.model is None:
            return 0
        return getattr(self.model, "revision", 0)

    def _check_revision(self) -> None:
        # A model that learned new types after codecs were compiled would
        # leave stale coercer tables behind; recompile lazily.
        current = self._revision()
        if current != self._model_revision:
            self._encoders.clear()
            self._decoders.clear()
            self._model_revision = current

    def prime(self) -> int:
        """Precompile codecs for every type the model declares.

        Recorder clients call this once before streaming events so the
        first record of each type does not pay compilation inside the
        ingest loop.  Returns the number of codecs compiled.
        """
        if self.model is None:
            return 0
        self._check_revision()
        compiled = 0
        for spec in self.model.node_types():
            key = (spec.record_class, spec.name)
            if key not in self._encoders:
                self._encoder_for(spec.record_class, spec.name)
                self._decoder_for(spec.record_class, spec.name)
                compiled += 1
        for rel in self.model.relation_types():
            key = (RecordClass.RELATION, rel.name)
            if key not in self._encoders:
                self._encoder_for(RecordClass.RELATION, rel.name)
                self._decoder_for(RecordClass.RELATION, rel.name)
                compiled += 1
        return compiled

    # -- encoding ------------------------------------------------------------

    def _encoder_for(
        self, record_class: RecordClass, entity_type: str
    ) -> Encoder:
        key = (record_class, entity_type)
        encoder = self._encoders.get(key)
        if encoder is None:
            encoder = self._compile_encoder(record_class, entity_type)
            self._encoders[key] = encoder
        return encoder

    def _compile_encoder(
        self, record_class: RecordClass, entity_type: str
    ) -> Encoder:
        # Static fragments shared by every row of this (class, type).
        prefix = (
            f"<ps:{entity_type} "
            f'xmlns:ps="{PS_NAMESPACE}" ps:id="'
        )
        mid = f'" ps:class="{record_class.value.lower()}"><ps:appid>'
        empty_app = f'" ps:class="{record_class.value.lower()}"><ps:appid />'
        ts_open = '<ps:timestamp value="'
        closing = f"</ps:{entity_type}>"
        is_relation = record_class is RecordClass.RELATION
        # Interned per-attribute tag fragments, grown lazily for attribute
        # names outside the schema.
        tags: Dict[str, Tuple[str, str, str]] = {}
        if self.model is not None and self.model.has_node_type(entity_type):
            for spec in self.model.node_type(entity_type).attributes:
                tags[spec.name] = (
                    f"<ps:{spec.name}>",
                    f"</ps:{spec.name}>",
                    f"<ps:{spec.name} />",
                )

        def encode(record: ProvenanceRecord) -> str:
            parts = [prefix, _escape_attr(record.record_id)]
            if record.app_id:
                parts.append(mid)
                parts.append(_escape_text(record.app_id))
                parts.append("</ps:appid>")
            else:  # pragma: no cover - records enforce non-empty app ids
                parts.append(empty_app)
            parts.append(ts_open)
            parts.append(str(record.timestamp))
            parts.append('" />')
            if is_relation:
                parts.append("<ps:source>")
                parts.append(_escape_text(record.source_id))
                parts.append("</ps:source><ps:target>")
                parts.append(_escape_text(record.target_id))
                parts.append("</ps:target>")
            for name, value in sorted(dict(record._attributes).items()):
                fragment = tags.get(name)
                if fragment is None:
                    fragment = (
                        f"<ps:{name}>",
                        f"</ps:{name}>",
                        f"<ps:{name} />",
                    )
                    tags[name] = fragment
                if value is True:
                    wire = "true"
                elif value is False:
                    wire = "false"
                else:
                    wire = str(value)
                if wire:
                    parts.append(fragment[0])
                    parts.append(_escape_text(wire))
                    parts.append(fragment[1])
                else:
                    parts.append(fragment[2])
            parts.append(closing)
            return "".join(parts)

        return encode

    def encode_record_xml(self, record: ProvenanceRecord) -> str:
        """Fast-path equivalent of :func:`encode_record_xml`."""
        self._check_revision()
        return self._encoder_for(record.record_class, record.entity_type)(
            record
        )

    def encode_row(self, record: ProvenanceRecord) -> StoredRow:
        """Fast-path equivalent of :func:`encode_row`."""
        return StoredRow(
            record_id=record.record_id,
            record_class=record.record_class,
            app_id=record.app_id,
            xml=self.encode_record_xml(record),
        )

    # -- decoding ------------------------------------------------------------

    def _decoder_for(
        self, record_class: RecordClass, entity_type: str
    ) -> Decoder:
        key = (record_class, entity_type)
        decoder = self._decoders.get(key)
        if decoder is None:
            decoder = self._compile_decoder(record_class, entity_type)
            self._decoders[key] = decoder
        return decoder

    def _compile_decoder(
        self, record_class: RecordClass, entity_type: str
    ) -> Decoder:
        closing = f"</ps:{entity_type}>"
        class_wire = record_class.value.lower()
        is_relation = record_class is RecordClass.RELATION
        # Precomputed attribute coercers: exactly what
        # ProvenanceDataModel.coerce_attributes would look up per row.
        coercers: Dict[str, Callable[[str], object]] = {}
        if (
            self.model is not None
            and not is_relation
            and self.model.has_node_type(entity_type)
        ):
            for spec in self.model.node_type(entity_type).attributes:
                coercers[spec.name] = spec.type.from_wire
        coerce = self.model is not None and not is_relation

        def decode(row: StoredRow, root_match: "re.Match") -> ProvenanceRecord:
            # Structural pass first: ElementTree parses the entire document
            # before any semantic check, so a row that is both corrupted
            # (mismatched embedded id) and malformed (broken tail) must
            # report "malformed XML" — never the semantic error.
            xml = row.xml
            end = len(xml) - len(closing)
            if end < 0 or not xml.endswith(closing):
                raise _Fallback
            children = []
            pos = root_match.end()
            while pos < end:
                child = _CHILD_RE.match(xml, pos)
                if child is None or child.end() > end:
                    raise _Fallback
                name = child.group(1)
                if name is not None:  # empty element, maybe value="..."
                    value_attr = child.group(2)
                    text = ""
                else:
                    name = child.group(3)
                    if child.group(5) != name:
                        raise _Fallback
                    value_attr = None
                    text = _decode_text(child.group(4)).strip()
                children.append((name, value_attr, text))
                pos = child.end()
            if pos != end:
                raise _Fallback

            embedded_id = _decode_attr(root_match.group(2))
            if embedded_id != row.record_id:
                raise CodecError(
                    f"row {row.record_id}: embedded ps:id "
                    f"{embedded_id!r} disagrees"
                )
            embedded_class = _decode_attr(root_match.group(3))
            if embedded_class.lower() != class_wire:
                raise CodecError(
                    f"row {row.record_id}: embedded ps:class "
                    f"{embedded_class!r} disagrees with column "
                    f"{row.record_class.value!r}"
                )
            timestamp = 0
            source_id = ""
            target_id = ""
            raw: Dict[str, str] = {}
            for name, value_attr, text in children:
                if name == "appid":
                    if text != row.app_id:
                        raise CodecError(
                            f"row {row.record_id}: embedded appid "
                            f"{text!r} disagrees"
                        )
                elif name == "timestamp":
                    if value_attr is not None:
                        value = _decode_attr(value_attr)
                    else:
                        value = text or "0"
                    try:
                        timestamp = int(value)
                    except ValueError as exc:
                        raise CodecError(
                            f"row {row.record_id}: bad timestamp {value!r}"
                        ) from exc
                elif name == "source":
                    source_id = text
                elif name == "target":
                    target_id = text
                else:
                    raw[name] = text

            attributes: Mapping[str, AttributeValue]
            if coerce:
                typed: Dict[str, AttributeValue] = {}
                for name, text in raw.items():
                    coercer = coercers.get(name)
                    typed[name] = text if coercer is None else coercer(text)
                attributes = typed
            else:
                attributes = raw

            try:
                return record_from_parts(
                    record_class=row.record_class,
                    record_id=row.record_id,
                    app_id=row.app_id,
                    entity_type=entity_type,
                    timestamp=timestamp,
                    attributes=attributes,
                    source_id=source_id,
                    target_id=target_id,
                )
            except CodecError:
                raise
            except Exception as exc:
                raise CodecError(f"row {row.record_id}: {exc}") from exc

        return decode

    def decode_row(self, row: StoredRow) -> ProvenanceRecord:
        """Fast-path equivalent of :func:`decode_row` (same model binding).

        Rows outside the canonical shape fall back to the ElementTree
        oracle, which also produces the identical errors for corrupted or
        malformed XML.
        """
        self._check_revision()
        root_match = _ROOT_RE.match(row.xml)
        if root_match is not None and not _INVALID_XML_CHAR_RE.search(row.xml):
            decoder = self._decoder_for(row.record_class, root_match.group(1))
            try:
                record = decoder(row, root_match)
                self.fast_decodes += 1
                return record
            except _Fallback:
                pass
        self.fallback_decodes += 1
        return decode_row(row, self.model)
