"""XML codec for provenance rows.

Table I stores "the content of the recorded provenance events as XML": each
row is ``(ID, CLASS, APPID, XML)`` and the XML column looks like::

    <ps:jobrequisition ps:id="PE3" ps:class="data">
      <ps:appid>App01</ps:appid>
      <ps:reqid>Req001</ps:reqid>
      <ps:timestamp value="86400"/>
      <ps:type>new</ps:type>
      ...
    </ps:jobrequisition>

The codec round-trips records through that exact shape using the standard
library's :mod:`xml.etree.ElementTree`.  Attribute typing on decode is
delegated to the data model when one is supplied; otherwise values decode as
strings (which is what the physical table knows).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import CodecError
from repro.model.attributes import AttributeType, AttributeValue
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
    record_from_parts,
)
from repro.model.schema import ProvenanceDataModel

PS_NAMESPACE = "http://repro.example/provenance"
_PS = f"{{{PS_NAMESPACE}}}"

ET.register_namespace("ps", PS_NAMESPACE)

# Elements with reserved meaning inside the XML payload; everything else is
# an attribute of the record.
_RESERVED = ("appid", "timestamp", "source", "target")


@dataclass(frozen=True)
class StoredRow:
    """One physical row of the provenance table (Table I layout)."""

    record_id: str
    record_class: RecordClass
    app_id: str
    xml: str

    def as_tuple(self) -> tuple:
        """The ``(ID, CLASS, APPID, XML)`` tuple the paper prints."""
        return (self.record_id, self.record_class.value, self.app_id, self.xml)


def _attribute_to_wire(value: AttributeValue) -> str:
    if isinstance(value, bool):
        return AttributeType.BOOLEAN.to_wire(value)
    return str(value)


def encode_record_xml(record: ProvenanceRecord) -> str:
    """Serialize a record's payload into its XML column text."""
    root = ET.Element(f"{_PS}{record.entity_type}")
    root.set(f"{_PS}id", record.record_id)
    root.set(f"{_PS}class", record.record_class.value.lower())
    appid = ET.SubElement(root, f"{_PS}appid")
    appid.text = record.app_id
    timestamp = ET.SubElement(root, f"{_PS}timestamp")
    timestamp.set("value", str(record.timestamp))
    if isinstance(record, RelationRecord):
        source = ET.SubElement(root, f"{_PS}source")
        source.text = record.source_id
        target = ET.SubElement(root, f"{_PS}target")
        target.text = record.target_id
    for name, value in sorted(record.attributes.items()):
        element = ET.SubElement(root, f"{_PS}{name}")
        element.text = _attribute_to_wire(value)
    return ET.tostring(root, encoding="unicode")


def encode_row(record: ProvenanceRecord) -> StoredRow:
    """Turn a record into its physical Table I row."""
    return StoredRow(
        record_id=record.record_id,
        record_class=record.record_class,
        app_id=record.app_id,
        xml=encode_record_xml(record),
    )


def _local_name(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def decode_row(
    row: StoredRow, model: Optional[ProvenanceDataModel] = None
) -> ProvenanceRecord:
    """Materialize a record from a physical row.

    When *model* is given, attribute text is coerced to the types the node
    type declares; otherwise attributes come back as strings.  Raises
    :class:`CodecError` on malformed XML or on mismatches between the row
    columns and the embedded ``ps:id``/``ps:class`` markers, because such a
    mismatch means the table was corrupted.
    """
    try:
        root = ET.fromstring(row.xml)
    except ET.ParseError as exc:
        raise CodecError(f"row {row.record_id}: malformed XML") from exc

    entity_type = _local_name(root.tag)
    embedded_id = root.get(f"{_PS}id")
    if embedded_id is not None and embedded_id != row.record_id:
        raise CodecError(
            f"row {row.record_id}: embedded ps:id {embedded_id!r} disagrees"
        )
    embedded_class = root.get(f"{_PS}class")
    if (
        embedded_class is not None
        and embedded_class.lower() != row.record_class.value.lower()
    ):
        raise CodecError(
            f"row {row.record_id}: embedded ps:class {embedded_class!r} "
            f"disagrees with column {row.record_class.value!r}"
        )

    timestamp = 0
    source_id = ""
    target_id = ""
    raw: Dict[str, str] = {}
    for child in root:
        name = _local_name(child.tag)
        text = (child.text or "").strip()
        if name == "appid":
            if text != row.app_id:
                raise CodecError(
                    f"row {row.record_id}: embedded appid {text!r} disagrees"
                )
        elif name == "timestamp":
            value = child.get("value", text or "0")
            try:
                timestamp = int(value)
            except ValueError as exc:
                raise CodecError(
                    f"row {row.record_id}: bad timestamp {value!r}"
                ) from exc
        elif name == "source":
            source_id = text
        elif name == "target":
            target_id = text
        else:
            raw[name] = text

    attributes: Mapping[str, AttributeValue]
    if model is not None and row.record_class is not RecordClass.RELATION:
        attributes = model.coerce_attributes(entity_type, raw)
    else:
        attributes = raw

    try:
        return record_from_parts(
            record_class=row.record_class,
            record_id=row.record_id,
            app_id=row.app_id,
            entity_type=entity_type,
            timestamp=timestamp,
            attributes=attributes,
            source_id=source_id,
            target_id=target_id,
        )
    except Exception as exc:
        raise CodecError(f"row {row.record_id}: {exc}") from exc
