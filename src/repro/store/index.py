"""Secondary indexes for the provenance store.

The physical table only groups rows by position; the queries the control
evaluator issues ("the Data records of type ``jobrequisition`` in trace
``App01``", "relations whose source is PE3") need faster access paths.  The
index maintains hash maps over class, APPID, entity type, relation
endpoints, and — optionally — individual attribute values.

Indexing is an optimization layer: the store works with indexes disabled
(every query falls back to a scan), which experiment E8 uses to quantify the
speedup.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.model.attributes import AttributeValue
from repro.model.records import ProvenanceRecord, RecordClass, RelationRecord


class StoreIndex:
    """Hash indexes over the records of one store.

    Attributes:
        indexed_attributes: attribute names to maintain value indexes for.
            Attribute indexes cover ``(entity_type, name, value)`` triples.
    """

    def __init__(self, indexed_attributes: Optional[Set[str]] = None) -> None:
        self.indexed_attributes: Set[str] = set(indexed_attributes or ())
        self._by_class: Dict[RecordClass, List[str]] = defaultdict(list)
        self._by_app: Dict[str, List[str]] = defaultdict(list)
        self._by_type: Dict[str, List[str]] = defaultdict(list)
        self._by_app_class: Dict[Tuple[str, RecordClass], List[str]] = (
            defaultdict(list)
        )
        self._by_source: Dict[str, List[str]] = defaultdict(list)
        self._by_target: Dict[str, List[str]] = defaultdict(list)
        self._by_attribute: Dict[
            Tuple[str, str, AttributeValue], List[str]
        ] = defaultdict(list)

    def rebuild(self, records: "Iterable[ProvenanceRecord]") -> int:
        """Re-index from scratch over *records* (in append order).

        Used when a store opens over a storage backend that already holds
        rows — e.g. a SQLite file written by an earlier run — so that the
        hydrated indexes are indistinguishable from freshly-built ones.
        Returns the number of records indexed.
        """
        self._by_class.clear()
        self._by_app.clear()
        self._by_type.clear()
        self._by_app_class.clear()
        self._by_source.clear()
        self._by_target.clear()
        self._by_attribute.clear()
        count = 0
        for record in records:
            self.add(record)
            count += 1
        return count

    def add(self, record: ProvenanceRecord) -> None:
        """Index one appended record."""
        rid = record.record_id
        self._by_class[record.record_class].append(rid)
        self._by_app[record.app_id].append(rid)
        self._by_type[record.entity_type].append(rid)
        self._by_app_class[(record.app_id, record.record_class)].append(rid)
        if isinstance(record, RelationRecord):
            self._by_source[record.source_id].append(rid)
            self._by_target[record.target_id].append(rid)
        for name in self.indexed_attributes:
            value = record.get(name)
            if value is not None:
                key = (record.entity_type, name, value)
                self._by_attribute[key].append(rid)

    # -- lookups (each returns ids in append order) --------------------------

    def by_class(self, record_class: RecordClass) -> List[str]:
        return list(self._by_class.get(record_class, ()))

    def by_app(self, app_id: str) -> List[str]:
        return list(self._by_app.get(app_id, ()))

    def by_type(self, entity_type: str) -> List[str]:
        return list(self._by_type.get(entity_type, ()))

    def by_app_class(
        self, app_id: str, record_class: RecordClass
    ) -> List[str]:
        return list(self._by_app_class.get((app_id, record_class), ()))

    def relations_from(self, source_id: str) -> List[str]:
        return list(self._by_source.get(source_id, ()))

    def relations_to(self, target_id: str) -> List[str]:
        return list(self._by_target.get(target_id, ()))

    def by_attribute(
        self, entity_type: str, name: str, value: AttributeValue
    ) -> Optional[List[str]]:
        """Ids with ``record.get(name) == value``; None when not indexed."""
        if name not in self.indexed_attributes:
            return None
        return list(self._by_attribute.get((entity_type, name, value), ()))

    def app_ids(self) -> List[str]:
        """All distinct application ids, in first-seen order."""
        return list(self._by_app.keys())
