"""Event capture: from application events to provenance records.

§II.A of the paper: "The trace of a business process is obtained by using
recording clients which process application events and transform them into
provenance events. […] The recorder client processes application events,
transforms them into provenance events and records them in the provenance
store."  This package implements that pipeline:

- :mod:`repro.capture.events` — the raw, heterogeneous application events IT
  systems produce (log lines, document saves, mail, workflow steps),
- :mod:`repro.capture.mapping` — declarative rules typing application events
  into provenance records per the data model,
- :mod:`repro.capture.filters` — relevance filtering and sensitive-data
  scrubbing ("to avoid redundancy and possible exposure of sensitive data,
  recorder clients do not copy all application data"),
- :mod:`repro.capture.recorder` — the recorder client itself,
- :mod:`repro.capture.correlation` — the data correlation and enrichment
  analytics that "link and enrich the collected data to produce the
  provenance graph".
"""

from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.filters import (
    AttributeAllowList,
    EventFilter,
    RelevanceFilter,
    SensitiveDataScrubber,
)
from repro.capture.mapping import EventMapping, MappingRule
from repro.capture.recorder import RecorderClient
from repro.capture.correlation import (
    CorrelationAnalytics,
    CorrelationRule,
    SequenceRule,
    attribute_join,
    co_trace,
)

__all__ = [
    "ApplicationEvent",
    "AttributeAllowList",
    "CorrelationAnalytics",
    "CorrelationRule",
    "EventFilter",
    "EventMapping",
    "EventSource",
    "MappingRule",
    "RecorderClient",
    "RelevanceFilter",
    "SequenceRule",
    "SensitiveDataScrubber",
    "attribute_join",
    "co_trace",
]
