"""Mapping application events to typed provenance records.

"The captured data is then typed according to the proposed data model by
using the specifications of the business and stored" (§II.A).  A
:class:`MappingRule` declares, for one event kind, which provenance node
type it produces and how payload fields become attributes.  The
:class:`EventMapping` is the ordered rule set a recorder client runs.

Rules are pure data + small functions, so a business scope's capture
configuration reads declaratively::

    mapping = EventMapping(model)
    mapping.rule(
        kind="requisition.submitted",
        record_class=RecordClass.DATA,
        entity_type="jobrequisition",
        fields={"reqid": "reqid", "type": "position_type"},
        key="reqid",
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.capture.events import ApplicationEvent
from repro.errors import MappingError
from repro.model.records import ProvenanceRecord, RecordClass, record_from_parts
from repro.model.schema import ProvenanceDataModel


@dataclass(frozen=True)
class MappingRule:
    """How one event kind becomes a provenance record.

    Attributes:
        kind: the application event kind this rule claims.
        record_class: the provenance class of the produced record.
        entity_type: the node type in the data model.
        fields: mapping from attribute name → payload field name.  Fields
            missing from the payload are simply omitted (partial capture is
            normal in partially managed processes).
        key: payload field contributing to the record id, making re-captures
            of the same artifact idempotent per trace; defaults to the event
            id.
        when: optional guard — the rule applies only when it returns True.
    """

    kind: str
    record_class: RecordClass
    entity_type: str
    fields: Mapping[str, str] = field(default_factory=dict)
    key: str = ""
    when: Optional[Callable[[ApplicationEvent], bool]] = None

    def applies_to(self, event: ApplicationEvent) -> bool:
        if event.kind != self.kind:
            return False
        if self.when is not None and not self.when(event):
            return False
        return True

    def record_id_for(self, event: ApplicationEvent) -> str:
        """Deterministic record id: trace-scoped artifact key or event id."""
        if self.key:
            key_value = event.get(self.key)
            if key_value:
                return f"{event.app_id or 'noapp'}:{self.entity_type}:{key_value}"
        return f"evt:{event.event_id}"

    def build_record(
        self, event: ApplicationEvent, model: Optional[ProvenanceDataModel]
    ) -> ProvenanceRecord:
        """Produce the typed record for *event*."""
        raw: Dict[str, str] = {}
        for attribute, payload_field in self.fields.items():
            if payload_field in event.payload:
                raw[attribute] = event.payload[payload_field]
        if model is not None:
            attributes = model.coerce_attributes(self.entity_type, raw)
        else:
            attributes = dict(raw)
        return record_from_parts(
            record_class=self.record_class,
            record_id=self.record_id_for(event),
            app_id=event.app_id or "unattributed",
            entity_type=self.entity_type,
            timestamp=event.timestamp,
            attributes=attributes,
        )


class EventMapping:
    """The ordered set of mapping rules for one business scope."""

    def __init__(self, model: Optional[ProvenanceDataModel] = None) -> None:
        self.model = model
        self._rules: List[MappingRule] = []

    def add(self, rule: MappingRule) -> "EventMapping":
        self._rules.append(rule)
        return self

    def rule(
        self,
        kind: str,
        record_class: RecordClass,
        entity_type: str,
        fields: Optional[Mapping[str, str]] = None,
        key: str = "",
        when: Optional[Callable[[ApplicationEvent], bool]] = None,
    ) -> "EventMapping":
        """Declare a rule inline; returns self for chaining."""
        return self.add(
            MappingRule(
                kind=kind,
                record_class=record_class,
                entity_type=entity_type,
                fields=fields or {},
                key=key,
                when=when,
            )
        )

    def kinds(self) -> List[str]:
        """All event kinds some rule claims (drives relevance filtering)."""
        seen: List[str] = []
        for rule in self._rules:
            if rule.kind not in seen:
                seen.append(rule.kind)
        return seen

    def match(self, event: ApplicationEvent) -> Optional[MappingRule]:
        """First rule that applies to *event*, or None."""
        for rule in self._rules:
            if rule.applies_to(event):
                return rule
        return None

    def map(self, event: ApplicationEvent) -> ProvenanceRecord:
        """Map *event*; raises :class:`MappingError` when no rule claims it."""
        rule = self.match(event)
        if rule is None:
            raise MappingError(
                f"no mapping rule for event kind {event.kind!r}"
            )
        return rule.build_record(event, self.model)
