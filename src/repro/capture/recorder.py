"""The recorder client.

Pipeline per §II.A: application event → relevance filter → sensitive-data
scrubbing → typing per the data model → append to the provenance store.

The recorder is also where *idempotent capture* happens: the same business
artifact observed twice (a document saved, then re-opened by an auditor)
maps to the same record id, and the recorder skips the duplicate rather
than failing — recording clients on different systems routinely overlap.

Since the service refactor the client is **transport-pluggable**: built
with a *store* it runs the whole pipeline locally (the original embedded
mode); built with a *transport* (:mod:`repro.service.transport`) it runs
only the client-side stages — relevance and scrubbing, which must happen
before anything leaves the emitting system — and ships the surviving
events to a :class:`~repro.service.runtime.ComplianceRuntime`, which owns
typing, dedup, and correlation.  Either way :meth:`process` returns the
same per-event :class:`~repro.capture.events.EventEnvelope` dispositions
and :attr:`stats` accumulates the same counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.capture.events import ApplicationEvent, EventEnvelope
from repro.capture.filters import RelevanceFilter, SensitiveDataScrubber
from repro.capture.mapping import EventMapping
from repro.errors import CaptureError, MappingError
from repro.store.cursor import Cursor, cursor_to_wire
from repro.store.store import ProvenanceStore

#: server-side disposition reasons a remote recorder folds into its stats.
_REASON_DUPLICATE = "duplicate artifact"
_REASON_UNMAPPED_PREFIX = "no mapping rule"


@dataclass
class RecorderStats:
    """Capture statistics exposed for monitoring the recorder itself."""

    seen: int = 0
    recorded: int = 0
    dropped_irrelevant: int = 0
    dropped_unmapped: int = 0
    duplicates: int = 0
    scrubbed_fields: int = 0
    #: Store change-feed position after the last append — the checkpoint an
    #: incremental consumer (``changes_since``) resumes from.  An int for
    #: plain stores, a per-shard vector cursor for sharded ones.
    last_seq: Cursor = 0

    def as_dict(self) -> dict:
        return {
            "seen": self.seen,
            "recorded": self.recorded,
            "dropped_irrelevant": self.dropped_irrelevant,
            "dropped_unmapped": self.dropped_unmapped,
            "duplicates": self.duplicates,
            "scrubbed_fields": self.scrubbed_fields,
            "last_seq": cursor_to_wire(self.last_seq),
        }

    @classmethod
    def aggregate(
        cls, parts: Iterable["RecorderStats"], last_seq: Cursor = 0
    ) -> "RecorderStats":
        """Sum counters across recorders (one per ingest lane).

        ``last_seq`` is caller-provided: per-lane recorders each track
        their own shard's cursor, and only the caller knows the combined
        store position the aggregate should report.
        """
        total = cls(last_seq=last_seq)
        for part in parts:
            total.seen += part.seen
            total.recorded += part.recorded
            total.dropped_irrelevant += part.dropped_irrelevant
            total.dropped_unmapped += part.dropped_unmapped
            total.duplicates += part.duplicates
            total.scrubbed_fields += part.scrubbed_fields
        return total


class RecorderClient:
    """Transforms application events into provenance records.

    Exactly one of *store* / *transport* selects the mode:

    - **embedded** (*store* + *mapping*): the full §II.A pipeline runs
      in-process and appends to the store directly,
    - **remote** (*transport*): relevance and scrubbing run here, the
      surviving events ship over the transport, and the served runtime's
      dispositions fold back into :attr:`stats`.

    Args:
        store: the provenance store appended to (embedded mode).
        mapping: the event mapping (typing rules) of the business scope.
            Required with *store*; optional with *transport*, where it
            only seeds the default relevance filter — typing itself is
            the server's job.
        relevance: optional relevance filter; defaults to "kinds some
            mapping rule claims" — anything unmappable is irrelevant.
            With a transport and no mapping, everything is shipped.
        scrubber: optional sensitive-data scrubber.  Always client-side:
            scrubbed fields never reach the store *or* the wire.
        strict: when True, an event passing relevance but matching no
            mapping rule raises instead of being dropped (useful in
            tests).  Honoured in both modes — remote dispositions citing
            a missing mapping rule raise the same :class:`MappingError`.
        transport: a runtime transport (remote mode) — e.g.
            :class:`~repro.service.transport.HTTPTransport` against a
            ``repro serve`` endpoint, or
            :class:`~repro.service.transport.InProcessTransport` for an
            embedded runtime.
    """

    def __init__(
        self,
        store: Optional[ProvenanceStore] = None,
        mapping: Optional[EventMapping] = None,
        relevance: Optional[RelevanceFilter] = None,
        scrubber: Optional[SensitiveDataScrubber] = None,
        strict: bool = False,
        transport=None,
    ) -> None:
        if (store is None) == (transport is None):
            raise CaptureError(
                "RecorderClient takes exactly one of store= or transport="
            )
        if store is not None and mapping is None:
            raise CaptureError(
                "a store-backed RecorderClient requires an event mapping"
            )
        self.store = store
        self.transport = transport
        self.mapping = mapping
        if relevance is not None:
            self.relevance = relevance
        elif mapping is not None:
            self.relevance = RelevanceFilter(mapping.kinds())
        else:
            self.relevance = RelevanceFilter()
        self.scrubber = scrubber
        self.strict = strict
        self.stats = RecorderStats()
        # Compile the store's per-type XML codecs up front: the first event
        # of each record type should not pay codec generation inside the
        # ingest loop, and every subsequent append reuses the compiled
        # encoder instead of re-deriving schema lookups per row.
        codec = getattr(store, "codec", None)
        if codec is not None:
            codec.prime()

    # -- client-side stages (both modes) -------------------------------------

    def _admit(
        self, event: ApplicationEvent
    ) -> Tuple[Optional[ApplicationEvent], int, Optional[EventEnvelope]]:
        """Relevance + scrubbing.

        Returns ``(event to keep, fields scrubbed, drop envelope)`` —
        the envelope is set (and the event ``None``) when relevance
        rejected it.
        """
        self.stats.seen += 1
        admitted, reason = self.relevance.admit(event)
        if not admitted:
            self.stats.dropped_irrelevant += 1
            return None, 0, EventEnvelope(
                event, recorded=False, dropped_reason=reason
            )
        scrubbed_count = 0
        if self.scrubber is not None:
            event, scrubbed_count = self.scrubber.scrub(event)
            self.stats.scrubbed_fields += scrubbed_count
        return event, scrubbed_count, None

    # -- embedded mode --------------------------------------------------------

    def _process_local(self, event: ApplicationEvent) -> EventEnvelope:
        event, scrubbed_count, dropped = self._admit(event)
        if dropped is not None:
            return dropped

        rule = self.mapping.match(event)
        if rule is None:
            if self.strict:
                raise MappingError(
                    f"no mapping rule for event kind {event.kind!r}"
                )
            self.stats.dropped_unmapped += 1
            return EventEnvelope(
                event,
                recorded=False,
                dropped_reason=f"no mapping rule for {event.kind!r}",
                scrubbed_fields=scrubbed_count,
            )

        record = rule.build_record(event, self.mapping.model)
        if record.record_id in self.store:
            self.stats.duplicates += 1
            return EventEnvelope(
                event,
                recorded=False,
                dropped_reason=_REASON_DUPLICATE,
                scrubbed_fields=scrubbed_count,
            )

        self.store.append(record)
        self.stats.recorded += 1
        self.stats.last_seq = self.store.last_seq()
        return EventEnvelope(
            event, recorded=True, scrubbed_fields=scrubbed_count
        )

    # -- remote mode -----------------------------------------------------------

    def _fold_disposition(
        self,
        event: ApplicationEvent,
        recorded: bool,
        reason: str,
        scrubbed_count: int,
    ) -> EventEnvelope:
        """One server disposition → local stats + envelope."""
        if recorded:
            self.stats.recorded += 1
        elif reason == _REASON_DUPLICATE:
            self.stats.duplicates += 1
        elif reason.startswith(_REASON_UNMAPPED_PREFIX):
            if self.strict:
                raise MappingError(reason)
            self.stats.dropped_unmapped += 1
        else:
            # The server's own relevance stage (normally redundant with
            # the client's) or any future drop reason.
            self.stats.dropped_irrelevant += 1
        return EventEnvelope(
            event,
            recorded=recorded,
            dropped_reason=reason,
            scrubbed_fields=scrubbed_count,
        )

    def _process_all_remote(
        self, events: Iterable[ApplicationEvent]
    ) -> List[EventEnvelope]:
        envelopes: List[Optional[EventEnvelope]] = []
        shipped: List[ApplicationEvent] = []
        shipped_slots: List[int] = []
        shipped_scrubbed: List[int] = []
        for event in events:
            kept, scrubbed_count, dropped = self._admit(event)
            if dropped is not None:
                envelopes.append(dropped)
            else:
                shipped_slots.append(len(envelopes))
                envelopes.append(None)
                shipped.append(kept)
                shipped_scrubbed.append(scrubbed_count)
        if shipped:
            reply = self.transport.ingest(shipped)
            dispositions = reply.dispositions
            if len(dispositions) != len(shipped):
                raise CaptureError(
                    f"transport returned {len(dispositions)} dispositions "
                    f"for {len(shipped)} events"
                )
            for slot, event, scrubbed_count, (recorded, reason) in zip(
                shipped_slots, shipped, shipped_scrubbed, dispositions
            ):
                envelopes[slot] = self._fold_disposition(
                    event, recorded, reason, scrubbed_count
                )
            self.stats.last_seq = reply.last_seq
        return list(envelopes)

    # -- public API ------------------------------------------------------------

    def process(self, event: ApplicationEvent) -> EventEnvelope:
        """Process one event; returns its disposition envelope."""
        if self.transport is not None:
            return self._process_all_remote([event])[0]
        return self._process_local(event)

    def process_all(
        self, events: Iterable[ApplicationEvent]
    ) -> List[EventEnvelope]:
        """Process many events, in order; returns all envelopes.

        Embedded mode runs the stream inside one
        :meth:`ProvenanceStore.bulk` section, so storage backends with
        write batching (SQLite) commit the burst in wide transactions
        instead of one per record.  Remote mode ships all surviving
        events as **one** transport call — the batching that makes a
        networked recorder viable.  Filter, scrub, duplicate and observer
        semantics are per-event regardless.
        """
        if self.transport is not None:
            return self._process_all_remote(events)
        with self.store.bulk():
            return [self._process_local(event) for event in events]
