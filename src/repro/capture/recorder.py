"""The recorder client.

Pipeline per §II.A: application event → relevance filter → sensitive-data
scrubbing → typing per the data model → append to the provenance store.

The recorder is also where *idempotent capture* happens: the same business
artifact observed twice (a document saved, then re-opened by an auditor)
maps to the same record id, and the recorder skips the duplicate rather
than failing — recording clients on different systems routinely overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.capture.events import ApplicationEvent, EventEnvelope
from repro.capture.filters import RelevanceFilter, SensitiveDataScrubber
from repro.capture.mapping import EventMapping
from repro.store.cursor import Cursor, cursor_to_wire
from repro.store.store import ProvenanceStore


@dataclass
class RecorderStats:
    """Capture statistics exposed for monitoring the recorder itself."""

    seen: int = 0
    recorded: int = 0
    dropped_irrelevant: int = 0
    dropped_unmapped: int = 0
    duplicates: int = 0
    scrubbed_fields: int = 0
    #: Store change-feed position after the last append — the checkpoint an
    #: incremental consumer (``changes_since``) resumes from.  An int for
    #: plain stores, a per-shard vector cursor for sharded ones.
    last_seq: Cursor = 0

    def as_dict(self) -> dict:
        return {
            "seen": self.seen,
            "recorded": self.recorded,
            "dropped_irrelevant": self.dropped_irrelevant,
            "dropped_unmapped": self.dropped_unmapped,
            "duplicates": self.duplicates,
            "scrubbed_fields": self.scrubbed_fields,
            "last_seq": cursor_to_wire(self.last_seq),
        }


class RecorderClient:
    """Transforms application events into provenance records in a store.

    Args:
        store: the provenance store appended to.
        mapping: the event mapping (typing rules) of the business scope.
        relevance: optional relevance filter; defaults to "kinds some
            mapping rule claims" — anything unmappable is irrelevant.
        scrubber: optional sensitive-data scrubber.
        strict: when True, an event passing relevance but matching no
            mapping rule raises instead of being dropped (useful in tests).
    """

    def __init__(
        self,
        store: ProvenanceStore,
        mapping: EventMapping,
        relevance: Optional[RelevanceFilter] = None,
        scrubber: Optional[SensitiveDataScrubber] = None,
        strict: bool = False,
    ) -> None:
        self.store = store
        self.mapping = mapping
        self.relevance = relevance or RelevanceFilter(mapping.kinds())
        self.scrubber = scrubber
        self.strict = strict
        self.stats = RecorderStats()
        # Compile the store's per-type XML codecs up front: the first event
        # of each record type should not pay codec generation inside the
        # ingest loop, and every subsequent append reuses the compiled
        # encoder instead of re-deriving schema lookups per row.
        codec = getattr(store, "codec", None)
        if codec is not None:
            codec.prime()

    def process(self, event: ApplicationEvent) -> EventEnvelope:
        """Process one event; returns its disposition envelope."""
        self.stats.seen += 1

        admitted, reason = self.relevance.admit(event)
        if not admitted:
            self.stats.dropped_irrelevant += 1
            return EventEnvelope(event, recorded=False, dropped_reason=reason)

        scrubbed_count = 0
        if self.scrubber is not None:
            event, scrubbed_count = self.scrubber.scrub(event)
            self.stats.scrubbed_fields += scrubbed_count

        rule = self.mapping.match(event)
        if rule is None:
            if self.strict:
                from repro.errors import MappingError

                raise MappingError(
                    f"no mapping rule for event kind {event.kind!r}"
                )
            self.stats.dropped_unmapped += 1
            return EventEnvelope(
                event,
                recorded=False,
                dropped_reason=f"no mapping rule for {event.kind!r}",
                scrubbed_fields=scrubbed_count,
            )

        record = rule.build_record(event, self.mapping.model)
        if record.record_id in self.store:
            self.stats.duplicates += 1
            return EventEnvelope(
                event,
                recorded=False,
                dropped_reason="duplicate artifact",
                scrubbed_fields=scrubbed_count,
            )

        self.store.append(record)
        self.stats.recorded += 1
        self.stats.last_seq = self.store.last_seq()
        return EventEnvelope(event, recorded=True, scrubbed_fields=scrubbed_count)

    def process_all(
        self, events: Iterable[ApplicationEvent]
    ) -> List[EventEnvelope]:
        """Process many events, in order; returns all envelopes.

        The whole stream runs inside one :meth:`ProvenanceStore.bulk`
        section, so storage backends with write batching (SQLite) commit
        the burst in wide transactions instead of one per record.  Filter,
        scrub, duplicate and observer semantics are per-event regardless.
        """
        with self.store.bulk():
            return [self.process(event) for event in events]
