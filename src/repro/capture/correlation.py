"""Correlation and enrichment analytics.

"Once the provenance data is stored, relations among the entities are
established by running analytics.  The data correlation and enrichment
component links and enriches the collected data to produce the provenance
graph" (§II.A).  A :class:`CorrelationRule` examines pairs of records (or
single records, for enrichment) and emits :class:`RelationRecord` rows.

"Some relations are rather basic on the IT level, like the read and write
between tasks and data.  Other relations are derived from the context"
(§II.B) — the two built-in rule factories reflect that split:

- :func:`attribute_join` — link records whose attributes agree (a Resource
  whose ``email`` equals a Task's ``actor_email`` gets an ``actor`` edge),
- :func:`co_trace` — link records of given types within the same trace
  (e.g. every approval in a trace relates to the trace's requisition).

Execution is driven by a small **planner** (:func:`plan_rule`): instead of
scanning the cartesian product of source × target selections per trace,

- :func:`attribute_join` rules run as *hash joins* — a dict keyed on the
  join attribute is built over the smaller side and probed with the larger,
- :func:`co_trace` rules run as *type-bucket products* over one per-trace
  record fetch,
- rules with opaque predicates fall back to the pairwise scan.

All plans emit relations in exactly the order the naive nested loop would
(relation ids are allocated in emission order, so the plans are
byte-identical to the fallback — the differential tests assert this), and a
:class:`CorrelationStats` report makes the work visible: pairs considered
vs. emitted, and how many rules fell back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import CaptureError
from repro.ids import IdFactory
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
)
from repro.model.schema import ProvenanceDataModel
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore

PairPredicate = Callable[[ProvenanceRecord, ProvenanceRecord], bool]


@dataclass(frozen=True)
class CorrelationRule:
    """Declarative pairwise correlation within one trace.

    For every trace (APPID), the rule considers the cartesian product of
    records matching *source_query* × *target_query*, keeps the pairs the
    *predicate* accepts, and emits one relation of *relation_type* per pair.

    Attributes:
        name: rule name (appears in relation record attributes for audit).
        relation_type: the relation type emitted (must exist in the model).
        source_query: selects candidate edge sources.
        target_query: selects candidate edge targets.
        predicate: pairwise condition; None accepts all pairs.
        join_on: optional ``(source_attribute, target_attribute)`` declaring
            that *predicate* is equality on those attributes (with a non-None
            source value) — set by :func:`attribute_join` so the planner can
            run the rule as a hash join.  A rule constructed with ``join_on``
            promises its predicate is exactly that equality.
    """

    name: str
    relation_type: str
    source_query: RecordQuery
    target_query: RecordQuery
    predicate: Optional[PairPredicate] = None
    join_on: Optional[Tuple[str, str]] = None

    def accepts(
        self,
        source: ProvenanceRecord,
        target: ProvenanceRecord,
        skip_self_check: bool = False,
    ) -> bool:
        """Whether the rule links *source* → *target*.

        A record never correlates with itself; *skip_self_check* lets the
        planner drop that guard when it has proved the source and target
        queries disjoint (no record can appear on both sides), saving one
        comparison per pair.
        """
        if not skip_self_check and source.record_id == target.record_id:
            return False
        if self.predicate is None:
            return True
        return self.predicate(source, target)


def attribute_join(
    name: str,
    relation_type: str,
    source_query: RecordQuery,
    target_query: RecordQuery,
    source_attribute: str,
    target_attribute: str,
) -> CorrelationRule:
    """Rule linking records whose named attributes are equal and present."""

    def predicate(source: ProvenanceRecord, target: ProvenanceRecord) -> bool:
        left = source.get(source_attribute)
        right = target.get(target_attribute)
        return left is not None and left == right

    return CorrelationRule(
        name=name,
        relation_type=relation_type,
        source_query=source_query,
        target_query=target_query,
        predicate=predicate,
        join_on=(source_attribute, target_attribute),
    )


def co_trace(
    name: str,
    relation_type: str,
    source_query: RecordQuery,
    target_query: RecordQuery,
) -> CorrelationRule:
    """Rule linking all matching source/target pairs within each trace."""
    return CorrelationRule(
        name=name,
        relation_type=relation_type,
        source_query=source_query,
        target_query=target_query,
    )


@dataclass(frozen=True)
class SequenceRule:
    """Derive control-flow edges: each record to its immediate successor.

    The paper's §II.C relation inventory includes ``next task`` — an edge
    the IT level does not emit; it is "derived from the context" by
    ordering a trace's task records in time and linking neighbours.  A
    SequenceRule does that for any record query: per trace, matching
    records are sorted by (timestamp, record id) and each is linked to the
    next one.

    Attributes:
        name: rule name (kept on the emitted relations for audit).
        relation_type: the emitted relation (e.g. ``nextTask``).
        query: which records participate in the sequence.
    """

    name: str
    relation_type: str
    query: RecordQuery

    def ordered_pairs(self, records):
        """Consecutive (predecessor, successor) pairs in time order."""
        ordered = sorted(records, key=lambda r: (r.timestamp, r.record_id))
        return list(zip(ordered, ordered[1:]))


# -- planning -----------------------------------------------------------------

#: plan kinds (``RulePlan.kind``)
PLAN_HASH_JOIN = "hash_join"
PLAN_BUCKET_PRODUCT = "bucket_product"
PLAN_PAIRWISE = "pairwise"
PLAN_SEQUENCE = "sequence"


@dataclass(frozen=True)
class RulePlan:
    """How the analytics will execute one rule.

    Attributes:
        rule: the planned :class:`CorrelationRule` or :class:`SequenceRule`.
        kind: one of :data:`PLAN_HASH_JOIN`, :data:`PLAN_BUCKET_PRODUCT`,
            :data:`PLAN_PAIRWISE`, :data:`PLAN_SEQUENCE`.
        disjoint: source and target queries are provably disjoint, so the
            per-pair self-correlation guard is skipped.
    """

    rule: object
    kind: str
    disjoint: bool = False


def queries_provably_disjoint(a: RecordQuery, b: RecordQuery) -> bool:
    """Whether no record can match both *a* and *b*.

    A conservative structural proof: both queries pin the entity type (or
    the record class) to different constants.  A record has exactly one
    type and one class, so differing constants cannot both match.  ``False``
    means "not proven", not "overlapping".
    """
    if (
        a.entity_type is not None
        and b.entity_type is not None
        and a.entity_type != b.entity_type
    ):
        return True
    if (
        a.record_class is not None
        and b.record_class is not None
        and a.record_class is not b.record_class
    ):
        return True
    return False


def plan_rule(rule) -> RulePlan:
    """Classify one rule into its execution plan."""
    if isinstance(rule, SequenceRule):
        return RulePlan(rule, PLAN_SEQUENCE)
    disjoint = queries_provably_disjoint(
        rule.source_query, rule.target_query
    )
    if rule.join_on is not None:
        return RulePlan(rule, PLAN_HASH_JOIN, disjoint)
    if rule.predicate is None:
        return RulePlan(rule, PLAN_BUCKET_PRODUCT, disjoint)
    return RulePlan(rule, PLAN_PAIRWISE, disjoint)


@dataclass
class CorrelationStats:
    """Work accounting for one analytics run.

    Attributes:
        rules_hash_join / rules_bucket / rules_pairwise / rules_sequence:
            rule counts per plan kind (classification, once per run).
        hash_fallbacks: hash-join executions that degraded to the pairwise
            scan at runtime (unhashable join values).
        pairs_naive: pairs the cartesian product would have scanned.
        pairs_considered: pairs the plans actually examined.
        pairs_emitted: relations appended.
        self_checks_skipped: pair examinations where the planner's
            disjointness proof elided the self-correlation guard.
    """

    rules_hash_join: int = 0
    rules_bucket: int = 0
    rules_pairwise: int = 0
    rules_sequence: int = 0
    hash_fallbacks: int = 0
    pairs_naive: int = 0
    pairs_considered: int = 0
    pairs_emitted: int = 0
    self_checks_skipped: int = 0

    @property
    def pairs_reduction(self) -> float:
        """pairs_considered / pairs_naive (1.0 when nothing was scanned)."""
        if not self.pairs_naive:
            return 1.0
        return self.pairs_considered / self.pairs_naive

    def as_dict(self) -> dict:
        return {
            "rules_hash_join": self.rules_hash_join,
            "rules_bucket": self.rules_bucket,
            "rules_pairwise": self.rules_pairwise,
            "rules_sequence": self.rules_sequence,
            "hash_fallbacks": self.hash_fallbacks,
            "pairs_naive": self.pairs_naive,
            "pairs_considered": self.pairs_considered,
            "pairs_emitted": self.pairs_emitted,
            "self_checks_skipped": self.self_checks_skipped,
            "pairs_reduction": self.pairs_reduction,
        }


class _TraceBuckets:
    """One trace's records bucketed by entity type and record class.

    Built from a single per-trace fetch (append order); candidate lists for
    a scoped query come from the narrowest bucket, re-filtered with
    :meth:`RecordQuery.matches` — exactly what ``store.select`` would
    return, without re-touching the store per (rule, side).  Relations the
    run emits are folded in so later rules see them, matching the
    fallback's per-rule re-select.
    """

    def __init__(self, records: Iterable[ProvenanceRecord]) -> None:
        self.records: List[ProvenanceRecord] = list(records)
        self.by_type: Dict[str, List[ProvenanceRecord]] = {}
        self.by_class: Dict[RecordClass, List[ProvenanceRecord]] = {}
        for record in self.records:
            self._bucket(record)

    def _bucket(self, record: ProvenanceRecord) -> None:
        self.by_type.setdefault(record.entity_type, []).append(record)
        self.by_class.setdefault(record.record_class, []).append(record)

    def add(self, record: ProvenanceRecord) -> None:
        self.records.append(record)
        self._bucket(record)

    def candidates(self, query: RecordQuery) -> List[ProvenanceRecord]:
        if query.entity_type is not None:
            base = self.by_type.get(query.entity_type, ())
        elif query.record_class is not None:
            base = self.by_class.get(query.record_class, ())
        else:
            base = self.records
        return [record for record in base if query.matches(record)]


class CorrelationAnalytics:
    """Runs correlation rules over a store and appends relation records.

    The analytics are idempotent per run: an edge (type, source, target) that
    already exists in the store is not emitted again, so re-running after new
    events arrive only adds the genuinely new links.

    Args:
        store: the provenance store read from and appended to.
        model: data model for endpoint validation (defaults to the store's).
        ids: relation id factory.
        use_planner: execute rules via their plans (hash joins, bucket
            products).  ``False`` forces the naive per-rule cartesian scan —
            the planner's differential baseline; outputs are byte-identical
            either way.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        model: Optional[ProvenanceDataModel] = None,
        ids: Optional[IdFactory] = None,
        use_planner: bool = True,
        track_edges: bool = False,
    ) -> None:
        self.store = store
        self.model = model if model is not None else store.model
        self.ids = ids or IdFactory()
        self.use_planner = use_planner
        self._rules: List[CorrelationRule] = []
        #: stats of the most recent :meth:`run` (None before the first run).
        self.stats: Optional[CorrelationStats] = None
        # With track_edges the existing-edge set is seeded once and then
        # maintained by a store observer, so repeated run() calls skip the
        # full-store relation scan (the per-batch cost on a long-lived
        # runtime).  Outputs are byte-identical either way.
        self._edge_cache: Optional[set] = None
        if track_edges:
            self._edge_cache = self._existing_edges()
            self.store.subscribe(self._note_relation)

    def add_rule(self, rule) -> "CorrelationAnalytics":
        """Register a :class:`CorrelationRule` or :class:`SequenceRule`."""
        if self.model is not None and not self.model.has_relation_type(
            rule.relation_type
        ):
            raise CaptureError(
                f"correlation rule {rule.name!r} emits undeclared relation "
                f"type {rule.relation_type!r}"
            )
        self._rules.append(rule)
        return self

    @property
    def rules(self) -> List:
        return list(self._rules)

    def plan(self) -> List[RulePlan]:
        """The execution plan for every registered rule, in rule order."""
        return [plan_rule(rule) for rule in self._rules]

    def _existing_edges(self) -> set:
        return {
            (r.entity_type, r.source_id, r.target_id)
            for r in self.store.records()
            if isinstance(r, RelationRecord)
        }

    def _note_relation(self, record: ProvenanceRecord) -> None:
        """Store observer: fold appended/synced relations into the cache."""
        if self._edge_cache is not None and isinstance(record, RelationRecord):
            self._edge_cache.add(
                (record.entity_type, record.source_id, record.target_id)
            )

    def run(
        self, app_ids: Optional[Iterable[str]] = None
    ) -> List[RelationRecord]:
        """Run all rules over the given traces (default: all); returns the
        newly created relation records (already appended to the store)."""
        traces = list(app_ids) if app_ids is not None else self.store.app_ids()
        existing = (
            self._edge_cache
            if self._edge_cache is not None
            else self._existing_edges()
        )
        stats = CorrelationStats()
        self.stats = stats
        created: List[RelationRecord] = []
        if not self.use_planner:
            for app_id in traces:
                for rule in self._rules:
                    if isinstance(rule, SequenceRule):
                        created.extend(
                            self._run_sequence_on_trace(
                                rule, app_id, existing, stats
                            )
                        )
                    else:
                        created.extend(
                            self._run_rule_on_trace(
                                rule, app_id, existing, stats
                            )
                        )
            return created

        plans = self.plan()
        for plan in plans:
            if plan.kind == PLAN_HASH_JOIN:
                stats.rules_hash_join += 1
            elif plan.kind == PLAN_BUCKET_PRODUCT:
                stats.rules_bucket += 1
            elif plan.kind == PLAN_PAIRWISE:
                stats.rules_pairwise += 1
            else:
                stats.rules_sequence += 1
        for app_id in traces:
            # One fetch per trace; every rule's candidates come from these
            # buckets instead of a store select per (rule, side).
            buckets = _TraceBuckets(
                self.store.select(RecordQuery(app_id=app_id))
            )
            for plan in plans:
                if plan.kind == PLAN_SEQUENCE:
                    emitted = self._run_sequence_planned(
                        plan.rule, app_id, buckets, existing, stats
                    )
                elif plan.kind == PLAN_HASH_JOIN:
                    emitted = self._run_hash_join(
                        plan, app_id, buckets, existing, stats
                    )
                else:
                    emitted = self._run_product(
                        plan, app_id, buckets, existing, stats
                    )
                for relation in emitted:
                    buckets.add(relation)
                created.extend(emitted)
        return created

    # -- emission (shared by every plan) ------------------------------------

    def _emit(
        self,
        rule,
        app_id: str,
        source: ProvenanceRecord,
        target: ProvenanceRecord,
        existing: set,
        stats: CorrelationStats,
    ) -> Optional[RelationRecord]:
        """Append one relation for an accepted pair (None when it exists)."""
        key = (rule.relation_type, source.record_id, target.record_id)
        if key in existing:
            return None
        existing.add(key)
        record_id = self.ids.next("REL")
        while record_id in self.store:
            # A fresh analytics instance over a pre-populated store
            # restarts its counter; skip ids already taken.
            record_id = self.ids.next("REL")
        relation = RelationRecord.create(
            record_id=record_id,
            app_id=app_id,
            entity_type=rule.relation_type,
            source_id=source.record_id,
            target_id=target.record_id,
            timestamp=max(source.timestamp, target.timestamp),
            attributes={"rule": rule.name},
        )
        if self.model is not None:
            self.model.validate_relation_endpoints(relation, source, target)
        self.store.append(relation)
        stats.pairs_emitted += 1
        return relation

    # -- planned execution ---------------------------------------------------

    def _run_hash_join(
        self,
        plan: RulePlan,
        app_id: str,
        buckets: _TraceBuckets,
        existing: set,
        stats: CorrelationStats,
    ) -> List[RelationRecord]:
        """Equality join via a hash table built on the smaller side.

        Emission order is the nested loop's (sources outer in append
        order, targets inner in append order): probing sources against a
        target-side table yields that order directly; a source-side table
        collects (source position, target position) matches and sorts.
        """
        rule = plan.rule
        sources = buckets.candidates(_scope(rule.source_query, app_id))
        targets = buckets.candidates(_scope(rule.target_query, app_id))
        stats.pairs_naive += len(sources) * len(targets)
        source_attr, target_attr = rule.join_on
        created: List[RelationRecord] = []
        skip_self = plan.disjoint

        def matched_pair(source, target):
            stats.pairs_considered += 1
            if skip_self:
                stats.self_checks_skipped += 1
            elif source.record_id == target.record_id:
                return
            relation = self._emit(
                rule, app_id, source, target, existing, stats
            )
            if relation is not None:
                created.append(relation)

        try:
            if len(targets) <= len(sources):
                table: Dict[object, list] = {}
                for target in targets:
                    value = target.get(target_attr)
                    if value is not None:
                        table.setdefault(value, []).append(target)
                for source in sources:
                    value = source.get(source_attr)
                    if value is None:
                        continue
                    for target in table.get(value, ()):
                        matched_pair(source, target)
            else:
                table = {}
                for position, source in enumerate(sources):
                    value = source.get(source_attr)
                    if value is not None:
                        table.setdefault(value, []).append(
                            (position, source)
                        )
                matches = []
                for position, target in enumerate(targets):
                    value = target.get(target_attr)
                    if value is None:
                        continue
                    for source_position, source in table.get(value, ()):
                        matches.append(
                            (source_position, position, source, target)
                        )
                matches.sort(key=lambda m: (m[0], m[1]))
                for __, __, source, target in matches:
                    matched_pair(source, target)
        except TypeError:
            # Unhashable join value: degrade this (rule, trace) to the
            # pairwise scan.  Nothing was emitted yet (hashing happens
            # before any probe), so the scan starts clean.
            stats.hash_fallbacks += 1
            return self._scan_pairs(
                plan, app_id, sources, targets, existing, stats,
                count_naive=False,
            )
        return created

    def _run_product(
        self,
        plan: RulePlan,
        app_id: str,
        buckets: _TraceBuckets,
        existing: set,
        stats: CorrelationStats,
    ) -> List[RelationRecord]:
        """Bucket product (no predicate) or pairwise scan (opaque one)."""
        rule = plan.rule
        sources = buckets.candidates(_scope(rule.source_query, app_id))
        targets = buckets.candidates(_scope(rule.target_query, app_id))
        return self._scan_pairs(
            plan, app_id, sources, targets, existing, stats
        )

    def _scan_pairs(
        self,
        plan: RulePlan,
        app_id: str,
        sources: List[ProvenanceRecord],
        targets: List[ProvenanceRecord],
        existing: set,
        stats: CorrelationStats,
        count_naive: bool = True,
    ) -> List[RelationRecord]:
        rule = plan.rule
        pairs = len(sources) * len(targets)
        if count_naive:
            stats.pairs_naive += pairs
        stats.pairs_considered += pairs
        if plan.disjoint:
            stats.self_checks_skipped += pairs
        created: List[RelationRecord] = []
        for source in sources:
            for target in targets:
                if not rule.accepts(
                    source, target, skip_self_check=plan.disjoint
                ):
                    continue
                relation = self._emit(
                    rule, app_id, source, target, existing, stats
                )
                if relation is not None:
                    created.append(relation)
        return created

    def _run_sequence_planned(
        self,
        rule: SequenceRule,
        app_id: str,
        buckets: _TraceBuckets,
        existing: set,
        stats: CorrelationStats,
    ) -> List[RelationRecord]:
        records = buckets.candidates(_scope(rule.query, app_id))
        created: List[RelationRecord] = []
        for source, target in rule.ordered_pairs(records):
            stats.pairs_considered += 1
            stats.pairs_naive += 1
            relation = self._emit(
                rule, app_id, source, target, existing, stats
            )
            if relation is not None:
                created.append(relation)
        return created

    # -- naive execution (the planner's differential baseline) ---------------

    def _run_sequence_on_trace(
        self,
        rule: SequenceRule,
        app_id: str,
        existing: set,
        stats: CorrelationStats,
    ) -> List[RelationRecord]:
        records = self.store.select(_scope(rule.query, app_id))
        created: List[RelationRecord] = []
        for source, target in rule.ordered_pairs(records):
            stats.pairs_considered += 1
            stats.pairs_naive += 1
            relation = self._emit(
                rule, app_id, source, target, existing, stats
            )
            if relation is not None:
                created.append(relation)
        return created

    def _run_rule_on_trace(
        self,
        rule: CorrelationRule,
        app_id: str,
        existing: set,
        stats: CorrelationStats,
    ) -> List[RelationRecord]:
        source_query = _scope(rule.source_query, app_id)
        target_query = _scope(rule.target_query, app_id)
        sources = self.store.select(source_query)
        targets = self.store.select(target_query)
        pairs = len(sources) * len(targets)
        stats.pairs_naive += pairs
        stats.pairs_considered += pairs
        created: List[RelationRecord] = []
        for source in sources:
            for target in targets:
                if not rule.accepts(source, target):
                    continue
                relation = self._emit(
                    rule, app_id, source, target, existing, stats
                )
                if relation is not None:
                    created.append(relation)
        return created


def _scope(query: RecordQuery, app_id: str) -> RecordQuery:
    """Restrict *query* to one trace."""
    return RecordQuery(
        record_class=query.record_class,
        app_id=app_id,
        entity_type=query.entity_type,
        predicates=query.predicates,
        since=query.since,
        until=query.until,
    )
