"""Correlation and enrichment analytics.

"Once the provenance data is stored, relations among the entities are
established by running analytics.  The data correlation and enrichment
component links and enriches the collected data to produce the provenance
graph" (§II.A).  A :class:`CorrelationRule` examines pairs of records (or
single records, for enrichment) and emits :class:`RelationRecord` rows.

"Some relations are rather basic on the IT level, like the read and write
between tasks and data.  Other relations are derived from the context"
(§II.B) — the two built-in rule factories reflect that split:

- :func:`attribute_join` — link records whose attributes agree (a Resource
  whose ``email`` equals a Task's ``actor_email`` gets an ``actor`` edge),
- :func:`co_trace` — link records of given types within the same trace
  (e.g. every approval in a trace relates to the trace's requisition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.errors import CaptureError
from repro.ids import IdFactory
from repro.model.records import ProvenanceRecord, RelationRecord
from repro.model.schema import ProvenanceDataModel
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore

PairPredicate = Callable[[ProvenanceRecord, ProvenanceRecord], bool]


@dataclass(frozen=True)
class CorrelationRule:
    """Declarative pairwise correlation within one trace.

    For every trace (APPID), the rule considers the cartesian product of
    records matching *source_query* × *target_query*, keeps the pairs the
    *predicate* accepts, and emits one relation of *relation_type* per pair.

    Attributes:
        name: rule name (appears in relation record attributes for audit).
        relation_type: the relation type emitted (must exist in the model).
        source_query: selects candidate edge sources.
        target_query: selects candidate edge targets.
        predicate: pairwise condition; None accepts all pairs.
    """

    name: str
    relation_type: str
    source_query: RecordQuery
    target_query: RecordQuery
    predicate: Optional[PairPredicate] = None

    def accepts(
        self, source: ProvenanceRecord, target: ProvenanceRecord
    ) -> bool:
        if source.record_id == target.record_id:
            return False
        if self.predicate is None:
            return True
        return self.predicate(source, target)


def attribute_join(
    name: str,
    relation_type: str,
    source_query: RecordQuery,
    target_query: RecordQuery,
    source_attribute: str,
    target_attribute: str,
) -> CorrelationRule:
    """Rule linking records whose named attributes are equal and present."""

    def predicate(source: ProvenanceRecord, target: ProvenanceRecord) -> bool:
        left = source.get(source_attribute)
        right = target.get(target_attribute)
        return left is not None and left == right

    return CorrelationRule(
        name=name,
        relation_type=relation_type,
        source_query=source_query,
        target_query=target_query,
        predicate=predicate,
    )


def co_trace(
    name: str,
    relation_type: str,
    source_query: RecordQuery,
    target_query: RecordQuery,
) -> CorrelationRule:
    """Rule linking all matching source/target pairs within each trace."""
    return CorrelationRule(
        name=name,
        relation_type=relation_type,
        source_query=source_query,
        target_query=target_query,
    )


@dataclass(frozen=True)
class SequenceRule:
    """Derive control-flow edges: each record to its immediate successor.

    The paper's §II.C relation inventory includes ``next task`` — an edge
    the IT level does not emit; it is "derived from the context" by
    ordering a trace's task records in time and linking neighbours.  A
    SequenceRule does that for any record query: per trace, matching
    records are sorted by (timestamp, record id) and each is linked to the
    next one.

    Attributes:
        name: rule name (kept on the emitted relations for audit).
        relation_type: the emitted relation (e.g. ``nextTask``).
        query: which records participate in the sequence.
    """

    name: str
    relation_type: str
    query: RecordQuery

    def ordered_pairs(self, records):
        """Consecutive (predecessor, successor) pairs in time order."""
        ordered = sorted(records, key=lambda r: (r.timestamp, r.record_id))
        return list(zip(ordered, ordered[1:]))


class CorrelationAnalytics:
    """Runs correlation rules over a store and appends relation records.

    The analytics are idempotent per run: an edge (type, source, target) that
    already exists in the store is not emitted again, so re-running after new
    events arrive only adds the genuinely new links.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        model: Optional[ProvenanceDataModel] = None,
        ids: Optional[IdFactory] = None,
    ) -> None:
        self.store = store
        self.model = model if model is not None else store.model
        self.ids = ids or IdFactory()
        self._rules: List[CorrelationRule] = []

    def add_rule(self, rule) -> "CorrelationAnalytics":
        """Register a :class:`CorrelationRule` or :class:`SequenceRule`."""
        if self.model is not None and not self.model.has_relation_type(
            rule.relation_type
        ):
            raise CaptureError(
                f"correlation rule {rule.name!r} emits undeclared relation "
                f"type {rule.relation_type!r}"
            )
        self._rules.append(rule)
        return self

    @property
    def rules(self) -> List:
        return list(self._rules)

    def _existing_edges(self) -> set:
        return {
            (r.entity_type, r.source_id, r.target_id)
            for r in self.store.records()
            if isinstance(r, RelationRecord)
        }

    def run(
        self, app_ids: Optional[Iterable[str]] = None
    ) -> List[RelationRecord]:
        """Run all rules over the given traces (default: all); returns the
        newly created relation records (already appended to the store)."""
        traces = list(app_ids) if app_ids is not None else self.store.app_ids()
        existing = self._existing_edges()
        created: List[RelationRecord] = []
        for app_id in traces:
            for rule in self._rules:
                if isinstance(rule, SequenceRule):
                    created.extend(
                        self._run_sequence_on_trace(rule, app_id, existing)
                    )
                else:
                    created.extend(
                        self._run_rule_on_trace(rule, app_id, existing)
                    )
        return created

    def _run_sequence_on_trace(
        self,
        rule: SequenceRule,
        app_id: str,
        existing: set,
    ) -> List[RelationRecord]:
        records = self.store.select(_scope(rule.query, app_id))
        created: List[RelationRecord] = []
        for source, target in rule.ordered_pairs(records):
            key = (rule.relation_type, source.record_id, target.record_id)
            if key in existing:
                continue
            existing.add(key)
            record_id = self.ids.next("REL")
            while record_id in self.store:
                record_id = self.ids.next("REL")
            relation = RelationRecord.create(
                record_id=record_id,
                app_id=app_id,
                entity_type=rule.relation_type,
                source_id=source.record_id,
                target_id=target.record_id,
                timestamp=max(source.timestamp, target.timestamp),
                attributes={"rule": rule.name},
            )
            if self.model is not None:
                self.model.validate_relation_endpoints(
                    relation, source, target
                )
            self.store.append(relation)
            created.append(relation)
        return created

    def _run_rule_on_trace(
        self,
        rule: CorrelationRule,
        app_id: str,
        existing: set,
    ) -> List[RelationRecord]:
        source_query = _scope(rule.source_query, app_id)
        target_query = _scope(rule.target_query, app_id)
        sources = self.store.select(source_query)
        targets = self.store.select(target_query)
        created: List[RelationRecord] = []
        for source in sources:
            for target in targets:
                if not rule.accepts(source, target):
                    continue
                key = (rule.relation_type, source.record_id, target.record_id)
                if key in existing:
                    continue
                existing.add(key)
                record_id = self.ids.next("REL")
                while record_id in self.store:
                    # A fresh analytics instance over a pre-populated store
                    # restarts its counter; skip ids already taken.
                    record_id = self.ids.next("REL")
                relation = RelationRecord.create(
                    record_id=record_id,
                    app_id=app_id,
                    entity_type=rule.relation_type,
                    source_id=source.record_id,
                    target_id=target.record_id,
                    timestamp=max(source.timestamp, target.timestamp),
                    attributes={"rule": rule.name},
                )
                if self.model is not None:
                    self.model.validate_relation_endpoints(
                        relation, source, target
                    )
                self.store.append(relation)
                created.append(relation)
        return created


def _scope(query: RecordQuery, app_id: str) -> RecordQuery:
    """Restrict *query* to one trace."""
    return RecordQuery(
        record_class=query.record_class,
        app_id=app_id,
        entity_type=query.entity_type,
        predicates=query.predicates,
        since=query.since,
        until=query.until,
    )
