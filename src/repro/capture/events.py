"""Application events.

"Business activities span across systems and organizations integrating
legacy and newly developed applications" (§I): the raw material of business
provenance is whatever heterogeneous IT systems emit — workflow engine
steps, document repository saves, e-mails, database writes.  An
:class:`ApplicationEvent` is the least common denominator: a source system,
an event kind, a payload of raw string fields, and the trace (application)
id when the emitting system knows one.

Events deliberately carry *more* than the provenance store should keep
(including sensitive fields like salary bands); the recorder client's
filters decide what survives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class EventSource(enum.Enum):
    """The class of IT system an event originated from."""

    WORKFLOW = "workflow"  # a (partially) managed process engine
    DOCUMENT = "document"  # document repository / shared drive
    EMAIL = "email"  # mail system
    DATABASE = "database"  # application database change capture
    DIRECTORY = "directory"  # HR/LDAP-style master data
    MANUAL = "manual"  # human-entered evidence (e.g. scanned forms)


@dataclass(frozen=True)
class ApplicationEvent:
    """One raw event produced by an IT system.

    Attributes:
        event_id: unique id assigned by the emitting system.
        source: which class of system produced it.
        kind: source-specific event name, e.g. ``task.completed``,
            ``document.saved``, ``mail.sent``.
        timestamp: simulated occurrence time.
        app_id: the trace/application id when the system knows one; empty for
            systems (mail, documents) that are not trace-aware — correlation
            analytics later attribute those by content.
        payload: raw string fields.  Everything the system knows, including
            fields the provenance store must never keep.
    """

    event_id: str
    source: EventSource
    kind: str
    timestamp: int = 0
    app_id: str = ""
    payload: Dict[str, str] = field(default_factory=dict)

    def get(self, name: str, default: str = "") -> str:
        """Payload field *name*, or *default*."""
        return self.payload.get(name, default)

    def with_payload(self, **extra: str) -> "ApplicationEvent":
        """A copy with additional payload fields (events stay immutable)."""
        merged = dict(self.payload)
        merged.update(extra)
        return ApplicationEvent(
            event_id=self.event_id,
            source=self.source,
            kind=self.kind,
            timestamp=self.timestamp,
            app_id=self.app_id,
            payload=merged,
        )


def event_to_wire(event: ApplicationEvent) -> Dict:
    """JSON-serializable form of an event; round-trips via
    :func:`event_from_wire`.

    This is the interchange format recorder clients ship to a served
    :class:`~repro.service.runtime.ComplianceRuntime` — deliberately the
    event's raw fields, nothing typed: typing per the data model happens
    server-side, where the mapping lives.
    """
    return {
        "event_id": event.event_id,
        "source": event.source.value,
        "kind": event.kind,
        "timestamp": event.timestamp,
        "app_id": event.app_id,
        "payload": dict(event.payload),
    }


def event_from_wire(payload: Dict) -> ApplicationEvent:
    """Rebuild an event dumped by :func:`event_to_wire`."""
    return ApplicationEvent(
        event_id=str(payload["event_id"]),
        source=EventSource(payload["source"]),
        kind=str(payload["kind"]),
        timestamp=int(payload.get("timestamp", 0)),
        app_id=str(payload.get("app_id", "")),
        payload={
            str(k): str(v)
            for k, v in (payload.get("payload") or {}).items()
        },
    )


@dataclass(frozen=True)
class EventEnvelope:
    """An event together with recorder-side disposition metadata.

    The recorder wraps each processed event so that capture statistics
    (dropped-by-relevance, scrubbed fields) are observable without logging
    the sensitive content itself.
    """

    event: ApplicationEvent
    recorded: bool
    dropped_reason: str = ""
    scrubbed_fields: int = 0
