"""Relevance filtering and sensitive-data scrubbing.

"The captured data must be relevant and specific to the business operation
under consideration. […] To avoid redundancy and possible exposure of
sensitive data, recorder clients do not copy all application data" (§II.A).

Two filter stages run inside the recorder client:

- a :class:`RelevanceFilter` decides whether an event is recorded at all
  (events whose kind no mapping rule claims are irrelevant by definition;
  additional predicates can narrow further),
- a :class:`SensitiveDataScrubber` removes or masks payload fields before
  anything reaches the provenance store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.capture.events import ApplicationEvent

EventPredicate = Callable[[ApplicationEvent], bool]


class EventFilter:
    """Base interface: decide whether an event passes, with a reason."""

    def admit(self, event: ApplicationEvent) -> Tuple[bool, str]:
        """Return ``(passes, reason_if_dropped)``."""
        raise NotImplementedError


class RelevanceFilter(EventFilter):
    """Admits only events relevant to the business scope.

    Args:
        relevant_kinds: event kinds the scope cares about; empty means all.
        predicate: optional extra predicate (e.g. only events of a given
            department).
    """

    def __init__(
        self,
        relevant_kinds: Optional[Iterable[str]] = None,
        predicate: Optional[EventPredicate] = None,
    ) -> None:
        self.relevant_kinds: FrozenSet[str] = frozenset(relevant_kinds or ())
        self.predicate = predicate

    def admit(self, event: ApplicationEvent) -> Tuple[bool, str]:
        if self.relevant_kinds and event.kind not in self.relevant_kinds:
            return False, f"kind {event.kind!r} not relevant to scope"
        if self.predicate is not None and not self.predicate(event):
            return False, "predicate rejected event"
        return True, ""


@dataclass(frozen=True)
class AttributeAllowList:
    """Per event kind, the payload fields allowed into provenance.

    An allow list (rather than a block list) implements the paper's "do not
    copy all application data": only fields the data model needs survive.
    """

    allowed: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, **kind_fields: Iterable[str]) -> "AttributeAllowList":
        """Build from ``kind=("field", ...)`` keyword pairs.

        Event kinds use dots (``task.completed``); since dots cannot appear
        in Python keywords, use ``__`` in their place:
        ``task__completed=("actor", "start")``.
        """
        return cls(
            {
                kind.replace("__", "."): frozenset(fields)
                for kind, fields in kind_fields.items()
            }
        )

    def fields_for(self, kind: str) -> Optional[FrozenSet[str]]:
        """Allowed fields for *kind*; None means no restriction declared."""
        return self.allowed.get(kind)


class SensitiveDataScrubber:
    """Removes sensitive or disallowed payload fields before recording.

    Two mechanisms compose:

    - *sensitive_fields* are always removed, whatever the event kind
      (salary, SSN, medical notes, …),
    - an :class:`AttributeAllowList` keeps only declared fields per kind.
    """

    def __init__(
        self,
        sensitive_fields: Optional[Iterable[str]] = None,
        allow_list: Optional[AttributeAllowList] = None,
    ) -> None:
        self.sensitive_fields: Set[str] = set(sensitive_fields or ())
        self.allow_list = allow_list

    def scrub(self, event: ApplicationEvent) -> Tuple[ApplicationEvent, int]:
        """Return ``(scrubbed_event, removed_field_count)``."""
        allowed = (
            self.allow_list.fields_for(event.kind)
            if self.allow_list is not None
            else None
        )
        kept: Dict[str, str] = {}
        removed = 0
        for name, value in event.payload.items():
            if name in self.sensitive_fields:
                removed += 1
                continue
            if allowed is not None and name not in allowed:
                removed += 1
                continue
            kept[name] = value
        if not removed:
            return event, 0
        scrubbed = ApplicationEvent(
            event_id=event.event_id,
            source=event.source,
            kind=event.kind,
            timestamp=event.timestamp,
            app_id=event.app_id,
            payload=kept,
        )
        return scrubbed, removed
