"""Business Rule Management System (BRMS).

This package reimplements the slice of ILOG JRules the paper relies on
(§II.D, §III), over the provenance data model instead of Java:

- :mod:`repro.brms.xom` — the *executable object model* (XOM): runtime
  classes generated from the provenance data model, whose instances wrap
  provenance-graph nodes ("the nodes and the edges of the graph and their
  attributes are directly linked to XOM java objects through getters and
  setters").
- :mod:`repro.brms.bom` — the *business object model* (BOM) and the
  BOM-to-XOM mapping: concepts, members, and how each member executes.
- :mod:`repro.brms.verbalization` — generating the BOM from the XOM with
  navigation/action phrases ("class attributes are verbalized as navigation
  phrases and the methods are verbalized as action phrases").
- :mod:`repro.brms.vocabulary` — the vocabulary: "the set of terms and
  phrases attached to the elements of the BOM", with the lookups a rule
  editor's drop-down menus need.
- :mod:`repro.brms.bal` — the Business Action Language: definitions /
  if / then / else rules written in that vocabulary.
- :mod:`repro.brms.engine` — rule execution against a trace graph.
- :mod:`repro.brms.repository` — rule artifacts and deployment lifecycle.
"""

from repro.brms.xom import ExecutableObjectModel, XomClass, XomObject
from repro.brms.bom import (
    BomClass,
    BomMember,
    BusinessObjectModel,
    MemberKind,
)
from repro.brms.verbalization import Verbalizer
from repro.brms.vocabulary import Vocabulary
from repro.brms.engine import RuleContext, RuleEngine, RuleOutcome, RuleVerdict
from repro.brms.repository import RuleArtifact, RuleRepository, RuleState
from repro.brms.profiles import (
    DEFAULT_PROFILE,
    VerbalizationProfile,
    profile_from_translations,
    verbalize_with_profile,
)

__all__ = [
    "BomClass",
    "DEFAULT_PROFILE",
    "VerbalizationProfile",
    "profile_from_translations",
    "verbalize_with_profile",
    "BomMember",
    "BusinessObjectModel",
    "ExecutableObjectModel",
    "MemberKind",
    "RuleArtifact",
    "RuleContext",
    "RuleEngine",
    "RuleOutcome",
    "RuleRepository",
    "RuleState",
    "RuleVerdict",
    "Verbalizer",
    "Vocabulary",
    "XomClass",
    "XomObject",
]
