"""The business vocabulary.

"In short, the vocabulary is the set of terms and phrases attached to the
elements of the BOM" (§II.D).  The :class:`Vocabulary` wraps a BOM with the
lookups rule parsing, compilation, and editing need:

- resolve a concept label ("Job Requisition") to its BOM class,
- resolve a phrase ("general manager") to a member, given the owning
  concept — or across all concepts when the owner is not yet known (the
  compiler infers owners where it can; the engine resolves dynamically by
  the runtime object's concept),
- list everything, for the editor's "drop down menus [that] contain the
  associated vocabulary for every graph node and its attributes" (§III).

Phrase lookup is the hottest path of rule evaluation; the vocabulary caches
``(concept, phrase) → member`` resolutions.  The cache can be disabled for
the E8 ablation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.brms.bom import BomClass, BomMember, BusinessObjectModel
from repro.errors import VocabularyError


class Vocabulary:
    """Phrase/term lookups over a BOM, with optional caching."""

    def __init__(self, bom: BusinessObjectModel, cache: bool = True) -> None:
        self.bom = bom
        self.cache_enabled = cache
        self._cache: Dict[Tuple[str, str], Optional[BomMember]] = {}
        self.lookups = 0  # total member lookups (ablation metric)
        self.cache_hits = 0

    # -- concepts ------------------------------------------------------------

    def concept(self, label: str) -> BomClass:
        """The BOM class for a concept label; raises when unknown."""
        if not self.bom.has_concept(label):
            raise VocabularyError(f"unknown concept {label!r}")
        return self.bom.concept(label)

    def has_concept(self, label: str) -> bool:
        return self.bom.has_concept(label)

    def concept_labels(self) -> List[str]:
        return [c.concept for c in self.bom.classes()]

    def match_concept_prefix(self, words: List[str]) -> Optional[Tuple[str, int]]:
        """Longest concept label matching a prefix of *words*.

        Returns ``(label, word_count)`` or None.  The BAL parser uses this
        to consume multi-word concept names like "job requisition".
        """
        best: Optional[Tuple[str, int]] = None
        lowered = [w.lower() for w in words]
        for label in self.concept_labels():
            parts = label.lower().split()
            if len(parts) <= len(lowered) and lowered[: len(parts)] == parts:
                if best is None or len(parts) > best[1]:
                    best = (label, len(parts))
        return best

    # -- members -------------------------------------------------------------

    def member(self, concept: str, phrase: str) -> BomMember:
        """The member verbalized as *phrase* on *concept*; raises if absent."""
        found = self.find_member(concept, phrase)
        if found is None:
            raise VocabularyError(
                f"concept {concept!r} has no phrase {phrase!r}"
            )
        return found

    def find_member(self, concept: str, phrase: str) -> Optional[BomMember]:
        """Like :meth:`member` but returns None instead of raising."""
        self.lookups += 1
        key = (concept.strip().lower(), phrase.strip().lower())
        if self.cache_enabled and key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        bom_class = (
            self.bom.concept(concept) if self.bom.has_concept(concept) else None
        )
        member = (
            bom_class.member_by_phrase(phrase) if bom_class is not None else None
        )
        if self.cache_enabled:
            self._cache[key] = member
        return member

    def find_member_for_type(
        self, node_type: str, phrase: str
    ) -> Optional[BomMember]:
        """Resolve *phrase* on the concept that verbalizes *node_type*.

        Rule evaluation resolves this way (by the runtime object's node
        type) rather than by concept label, so vocabularies whose profile
        renamed the concepts still execute correctly.
        """
        self.lookups += 1
        key = (f"type:{node_type}", phrase.strip().lower())
        if self.cache_enabled and key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        member: Optional[BomMember] = None
        if self.bom.has_node_type(node_type):
            member = self.bom.for_node_type(node_type).member_by_phrase(
                phrase
            )
        if self.cache_enabled:
            self._cache[key] = member
        return member

    def concepts_with_phrase(self, phrase: str) -> List[str]:
        """All concept labels that verbalize *phrase* (ambiguity check)."""
        wanted = phrase.strip().lower()
        return [
            bom_class.concept
            for bom_class in self.bom.classes()
            if bom_class.member_by_phrase(wanted) is not None
        ]

    def match_phrase_prefix(self, words: List[str]) -> Optional[Tuple[str, int]]:
        """Longest phrase (on any concept) matching a prefix of *words*."""
        best: Optional[Tuple[str, int]] = None
        lowered = [w.lower() for w in words]
        for bom_class in self.bom.classes():
            for member in bom_class.members:
                parts = member.phrase.lower().split()
                if (
                    len(parts) <= len(lowered)
                    and lowered[: len(parts)] == parts
                ):
                    if best is None or len(parts) > best[1]:
                        best = (member.phrase, len(parts))
        return best

    # -- editor support --------------------------------------------------------

    def dropdown_entries(self) -> Dict[str, List[str]]:
        """Concept → rendered phrases, as the rule editor's menus show them.

        Rendered in the "the <phrase> of <the concept>" surface form the
        paper's Fig. 3 illustrates ("the general manager of the job
        requisition").
        """
        entries: Dict[str, List[str]] = {}
        for bom_class in self.bom.classes():
            rendered = [
                f"the {member.phrase} of the {bom_class.concept.lower()}"
                for member in bom_class.members
            ]
            entries[bom_class.concept] = rendered
        return entries

    def complete(self, prefix: str, limit: int = 10) -> List[str]:
        """Editor autocomplete: phrases starting with *prefix*.

        Matches across all concepts (the editor narrows by the expression's
        concept once known), case-insensitively, returning the rendered
        ``the <phrase> of …`` surface forms, deduplicated and sorted.
        """
        wanted = prefix.strip().lower()
        matches = set()
        for bom_class in self.bom.classes():
            for member in bom_class.members:
                if member.phrase.lower().startswith(wanted):
                    matches.add(f"the {member.phrase} of")
        return sorted(matches)[:limit]

    def invalidate_cache(self) -> None:
        """Drop cached resolutions (after BOM edits)."""
        self._cache.clear()
