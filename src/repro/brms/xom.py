"""The executable object model (XOM).

"The first step of the solution is to generate an executable java object
model (XOM) from the provenance data model.  This way the nodes and the
edges of the graph and their attributes are directly linked to XOM java
objects through getters and setters methods" (§II.D).

Here the XOM is a set of :class:`XomClass` descriptors generated from a
:class:`~repro.model.schema.ProvenanceDataModel`, one per node type, each
naming its getters.  At runtime an :class:`XomObject` pairs a provenance
record with the trace graph it lives in, so attribute getters read record
attributes and relation getters traverse graph edges — exactly the paper's
"directly linked […] through getters and setters".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import XomError
from repro.graph.graph import ProvenanceGraph
from repro.model.attributes import AttributeValue
from repro.model.records import ProvenanceRecord
from repro.model.schema import NodeTypeSpec, ProvenanceDataModel


def _getter_name(attribute: str) -> str:
    """Java-bean getter name: ``managergen`` → ``getManagergen``."""
    return "get" + attribute[:1].upper() + attribute[1:]


@dataclass(frozen=True)
class XomRelationAccessor:
    """A generated relation getter on a XOM class.

    Attributes:
        relation_type: the provenance relation traversed.
        direction: ``"in"`` (edges pointing at this node) or ``"out"``.
        many: whether the getter yields a list or a single object.
    """

    name: str
    relation_type: str
    direction: str
    many: bool = False


@dataclass(frozen=True)
class XomClass:
    """A generated runtime class for one node type.

    Attributes:
        qualified_name: package-qualified name, e.g.
            ``mycompany.jobrequisition`` (the paper's example package).
        node_type: the data-model node type this class executes.
        getters: attribute name → generated getter name.
        relations: generated relation accessors.
    """

    qualified_name: str
    node_type: NodeTypeSpec
    getters: Dict[str, str] = field(default_factory=dict)
    relations: Tuple[XomRelationAccessor, ...] = field(default_factory=tuple)

    @property
    def simple_name(self) -> str:
        return self.qualified_name.rsplit(".", 1)[-1]


class XomObject:
    """A runtime XOM instance: a graph node viewed through its XOM class.

    Attribute getters read the wrapped record; relation getters traverse the
    trace graph.  Virtual members (the paper's ``getManagergen`` hashtable
    example) are provided by the BOM layer, not here.
    """

    def __init__(
        self,
        xom_class: XomClass,
        record: ProvenanceRecord,
        graph: ProvenanceGraph,
        xom: "ExecutableObjectModel",
    ) -> None:
        self.xom_class = xom_class
        self.record = record
        self.graph = graph
        self._xom = xom

    def __repr__(self) -> str:
        return (
            f"<XomObject {self.xom_class.simple_name} "
            f"{self.record.record_id}>"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XomObject)
            and other.record.record_id == self.record.record_id
        )

    def __hash__(self) -> int:
        return hash(self.record.record_id)

    def get(self, attribute: str) -> Optional[AttributeValue]:
        """Attribute getter; None when the record lacks the attribute."""
        return self.record.get(attribute)

    def follow(
        self, relation_type: str, direction: str = "in"
    ) -> List["XomObject"]:
        """Relation getter: XOM objects connected over *relation_type*.

        ``direction="in"`` returns sources of edges targeting this node
        (e.g. the submitter of a requisition over ``submitterOf``);
        ``"out"`` returns targets of edges leaving it.
        """
        if direction == "in":
            relations = self.graph.edges_to(self.record.record_id, relation_type)
            ids = [r.source_id for r in relations]
        elif direction == "out":
            relations = self.graph.edges_from(
                self.record.record_id, relation_type
            )
            ids = [r.target_id for r in relations]
        else:
            raise XomError(f"direction must be 'in' or 'out': {direction!r}")
        return [self._xom.wrap(self.graph.node(i), self.graph) for i in ids]

    def follow_one(
        self, relation_type: str, direction: str = "in"
    ) -> Optional["XomObject"]:
        """Like :meth:`follow` but expects at most one; None when absent."""
        objects = self.follow(relation_type, direction)
        if len(objects) > 1:
            raise XomError(
                f"{self.record.record_id}: multiple {relation_type!r} "
                f"({direction}) edges where one was expected"
            )
        return objects[0] if objects else None


class ExecutableObjectModel:
    """The XOM: generated classes for every node type of a data model."""

    def __init__(
        self, model: ProvenanceDataModel, package: str = "mycompany"
    ) -> None:
        self.model = model
        self.package = package
        self._classes: Dict[str, XomClass] = {}
        for spec in model.node_types():
            self._classes[spec.name] = self._generate_class(spec)

    def _generate_class(self, spec: NodeTypeSpec) -> XomClass:
        getters = {
            attribute.name: _getter_name(attribute.name)
            for attribute in spec.attributes
        }
        accessors = []
        for relation in self.model.relation_types():
            # A node type participates in a relation when its record class
            # matches either endpoint class; generate the accessor for the
            # role(s) it can play.
            if spec.record_class is relation.target_class:
                accessors.append(
                    XomRelationAccessor(
                        name=_getter_name(relation.name) + "Source",
                        relation_type=relation.name,
                        direction="in",
                    )
                )
            if spec.record_class is relation.source_class:
                accessors.append(
                    XomRelationAccessor(
                        name=_getter_name(relation.name) + "Target",
                        relation_type=relation.name,
                        direction="out",
                    )
                )
        return XomClass(
            qualified_name=f"{self.package}.{spec.name}",
            node_type=spec,
            getters=getters,
            relations=tuple(accessors),
        )

    def xom_class(self, node_type: str) -> XomClass:
        """The generated class for *node_type*."""
        try:
            return self._classes[node_type]
        except KeyError:
            raise XomError(f"no XOM class for node type {node_type!r}") from None

    def classes(self) -> List[XomClass]:
        return list(self._classes.values())

    def wrap(
        self, record: ProvenanceRecord, graph: ProvenanceGraph
    ) -> XomObject:
        """Instantiate the XOM object for a graph node record."""
        if record.entity_type in self._classes:
            xom_class = self._classes[record.entity_type]
        else:
            # Custom records (control points, alerts) have no declared type;
            # give them an anonymous class so traversal still works.
            xom_class = XomClass(
                qualified_name=f"{self.package}.{record.entity_type}",
                node_type=NodeTypeSpec(
                    name=record.entity_type,
                    record_class=record.record_class,
                ),
            )
        return XomObject(xom_class, record, graph, self)

    def instances(
        self, graph: ProvenanceGraph, node_type: str
    ) -> List[XomObject]:
        """All XOM instances of *node_type* in *graph*."""
        return [
            self.wrap(record, graph)
            for record in graph.nodes(entity_type=node_type)
        ]

    def render_class_source(self, node_type: str) -> str:
        """Render the Java-like class source the paper shows for PE3.

        Purely presentational — used by the Figure 3 benchmark to regenerate
        the paper's ``public class jobrequisition`` listing.
        """
        xom_class = self.xom_class(node_type)
        spec = xom_class.node_type
        lines = [
            f"package {self.package};",
            f"public class {spec.name} {{",
            f'    public String class = "{spec.record_class.value.lower()}";',
        ]
        for attribute in spec.attributes:
            lines.append(f"    public String {attribute.name};")
        for attribute in spec.attributes:
            getter = xom_class.getters[attribute.name]
            lines.append(
                f"    public String {getter}() {{ "
                f"return this.{attribute.name}; }}"
            )
        lines.append("}")
        return "\n".join(lines)
