"""The rule execution engine.

Runs compiled BAL rules against trace graphs and produces
:class:`RuleOutcome` objects.  Two execution back ends share one
semantics:

- ``compiled`` (the default) lowers each rule once into Python closures
  (:mod:`repro.brms.bal.codegen`) and thereafter evaluates by direct
  function calls — the hot path for sweeps and deployed re-checks.  Rules
  the closure compiler cannot cover fall back per-rule to the interpreter
  automatically (``codegen_gaps`` records why).
- ``interpret`` walks the AST every evaluation
  (:mod:`repro.brms.bal.evaluate`) — the reference semantics and the
  differential-testing oracle.

Verdicts are one of four:

- ``SATISFIED`` / ``NOT_SATISFIED`` — the paper's two explicit outcomes,
- ``NOT_APPLICABLE`` — the rule's anchor (its first instance binding, e.g.
  "the current job request") does not bind in this trace: the control is
  about artifacts the trace does not contain,
- ``UNDETERMINED`` — the rule references a concept whose artifacts are
  *known to be unobservable* under the current capture configuration, so a
  verdict would be evidence-free.  This refinement matters for partially
  managed processes (experiment E4); pass ``observable_types=None`` to get
  the paper's plain two-outcome behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.brms.bal import ast
from repro.brms.bal.compiler import CompiledRule
from repro.brms.bal.codegen import ClosureProgram, CodegenGap, compile_rule
from repro.brms.bal.evaluate import (
    EvalContext,
    TraceFrame,
    evaluate_condition,
    evaluate_definition,
    evaluate_expression,
)
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel, XomObject
from repro.errors import RuleEngineError
from repro.graph.graph import ProvenanceGraph


class RuleVerdict(enum.Enum):
    SATISFIED = "satisfied"
    NOT_SATISFIED = "not_satisfied"
    NOT_APPLICABLE = "not_applicable"
    UNDETERMINED = "undetermined"


@dataclass
class RuleOutcome:
    """The result of evaluating one rule against one trace."""

    rule_name: str
    trace_id: str
    verdict: RuleVerdict
    condition_value: Optional[bool] = None
    alerts: List[str] = field(default_factory=list)
    bindings: Dict[str, Optional[str]] = field(default_factory=dict)
    env_values: Dict[str, object] = field(default_factory=dict)
    touched_nodes: List[str] = field(default_factory=list)

    @property
    def bound_node_ids(self) -> List[str]:
        """Record ids of all graph nodes the rule's definitions bound.

        Control deployment turns these into edges from the control's custom
        node to the data nodes — the paper's "connected to the three data
        nodes defined by the constraints".
        """
        return [rid for rid in self.bindings.values() if rid is not None]


# alias kept for the public API surface
RuleContext = EvalContext


EXECUTION_MODES = ("compiled", "interpret")


class RuleEngine:
    """Evaluates compiled rules against trace graphs.

    Args:
        execution_mode: ``"compiled"`` (closure codegen, the default) or
            ``"interpret"`` (AST walking).  Compiled mode falls back to the
            interpreter per rule on codegen gaps.
    """

    def __init__(
        self,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
        execution_mode: str = "compiled",
    ) -> None:
        if execution_mode not in EXECUTION_MODES:
            raise RuleEngineError(
                f"unknown execution mode {execution_mode!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        self.xom = xom
        self.vocabulary = vocabulary
        self.execution_mode = execution_mode
        # id(compiled) → (compiled, program-or-None).  The strong reference
        # to the CompiledRule pins its id; None records a codegen gap so the
        # fallback decision is made once per rule, not per evaluation.
        self._programs: Dict[
            int, "Tuple[CompiledRule, Optional[ClosureProgram]]"
        ] = {}
        self.codegen_gaps: Dict[str, str] = {}  # rule name → gap reason

    def program_for(
        self, compiled: CompiledRule
    ) -> Optional[ClosureProgram]:
        """The rule's closure program, compiled on first use.

        Returns None when the closure compiler cannot cover the rule; the
        gap reason is recorded in :attr:`codegen_gaps`.
        """
        entry = self._programs.get(id(compiled))
        if entry is not None and entry[0] is compiled:
            return entry[1]
        try:
            program: Optional[ClosureProgram] = compile_rule(compiled)
        except CodegenGap as gap:
            program = None
            self.codegen_gaps[compiled.name] = str(gap)
        self._programs[id(compiled)] = (compiled, program)
        return program

    def clear_program_cache(self) -> None:
        """Drop compiled closures (after vocabulary/BOM edits)."""
        self._programs.clear()
        self.codegen_gaps.clear()

    def _unobservable_concepts(
        self, compiled: CompiledRule, observable_types: Optional[Set[str]]
    ) -> List[str]:
        if observable_types is None:
            return []
        missing = []
        for concept in compiled.concepts:
            bom_class = self.vocabulary.concept(concept)
            if bom_class.node_type not in observable_types:
                missing.append(concept)
        return missing

    def evaluate(
        self,
        compiled: CompiledRule,
        graph: ProvenanceGraph,
        parameters: Optional[Dict[str, object]] = None,
        observable_types: Optional[Set[str]] = None,
        frame: Optional[TraceFrame] = None,
    ) -> RuleOutcome:
        """Evaluate *compiled* against one trace *graph*.

        Args:
            frame: optional shared per-trace state (memoized XOM instance
                wraps).  Callers evaluating several rules against the same
                graph should build one :class:`TraceFrame` and pass it to
                every evaluation.
        """
        trace_id = graph.name
        if self._unobservable_concepts(compiled, observable_types):
            return RuleOutcome(
                rule_name=compiled.name,
                trace_id=trace_id,
                verdict=RuleVerdict.UNDETERMINED,
            )

        context = EvalContext(
            graph=graph,
            xom=self.xom,
            vocabulary=self.vocabulary,
            parameters=dict(parameters or {}),
            frame=frame,
        )

        if self.execution_mode == "compiled":
            program = self.program_for(compiled)
            if program is not None:
                return self._evaluate_program(
                    program, compiled, trace_id, context
                )
        return self._evaluate_interpreted(compiled, trace_id, context)

    def _evaluate_interpreted(
        self,
        compiled: CompiledRule,
        trace_id: str,
        context: EvalContext,
    ) -> RuleOutcome:
        anchor = compiled.anchor_variable
        for definition in compiled.rule.definitions:
            value = evaluate_definition(definition, context)
            if definition.var == anchor and value is None:
                return self._outcome_from(
                    compiled, trace_id, RuleVerdict.NOT_APPLICABLE, context
                )

        condition_value = evaluate_condition(compiled.rule.condition, context)
        actions = (
            compiled.rule.then_actions
            if condition_value
            else compiled.rule.else_actions
        )
        default = (
            RuleVerdict.SATISFIED
            if condition_value
            else RuleVerdict.NOT_SATISFIED
        )

        outcome = self._outcome_from(compiled, trace_id, default, context)
        outcome.condition_value = condition_value
        for action in actions:
            self._execute_action(action, context, outcome)
        # Re-capture bindings: Assign actions may have added variables.
        self._capture_bindings(context, outcome)
        return outcome

    def _evaluate_program(
        self,
        program: ClosureProgram,
        compiled: CompiledRule,
        trace_id: str,
        context: EvalContext,
    ) -> RuleOutcome:
        """The compiled fast path; step-for-step twin of the interpreter."""
        anchor = program.anchor
        env = context.env
        for var, fn in program.definitions:
            value = fn(context)
            env[var] = value
            if var == anchor and value is None:
                return self._outcome_from(
                    compiled, trace_id, RuleVerdict.NOT_APPLICABLE, context
                )

        condition_value = program.condition(context)
        actions = (
            program.then_actions
            if condition_value
            else program.else_actions
        )
        default = (
            RuleVerdict.SATISFIED
            if condition_value
            else RuleVerdict.NOT_SATISFIED
        )

        outcome = self._outcome_from(compiled, trace_id, default, context)
        outcome.condition_value = condition_value
        for action in actions:
            action(context, outcome)
        self._capture_bindings(context, outcome)
        return outcome

    def evaluate_many(
        self,
        compiled: CompiledRule,
        graphs: Sequence[ProvenanceGraph],
        parameters: Optional[Dict[str, object]] = None,
        observable_types: Optional[Set[str]] = None,
        frames: Optional[Sequence[TraceFrame]] = None,
    ) -> List[RuleOutcome]:
        """Evaluate one rule across many trace graphs.

        Pass *frames* (one per graph, e.g. shared with other rules) to
        reuse XOM instance wraps; otherwise each graph gets a fresh frame
        so at least the rule's own quantifiers share wrapping.
        """
        if frames is None:
            frames = [TraceFrame(graph) for graph in graphs]
        return [
            self.evaluate(
                compiled, graph, parameters, observable_types, frame=frame
            )
            for graph, frame in zip(graphs, frames)
        ]

    # -- helpers -------------------------------------------------------------

    def _outcome_from(
        self,
        compiled: CompiledRule,
        trace_id: str,
        verdict: RuleVerdict,
        context: EvalContext,
    ) -> RuleOutcome:
        outcome = RuleOutcome(
            rule_name=compiled.name, trace_id=trace_id, verdict=verdict
        )
        self._capture_bindings(context, outcome)
        return outcome

    @staticmethod
    def _capture_bindings(context: EvalContext, outcome: RuleOutcome) -> None:
        for var, value in context.env.items():
            if isinstance(value, XomObject):
                outcome.bindings[var] = value.record.record_id
            else:
                outcome.bindings[var] = None
                outcome.env_values[var] = value
        outcome.touched_nodes = sorted(context.touched)

    @staticmethod
    def _execute_action(
        action: ast.Node, context: EvalContext, outcome: RuleOutcome
    ) -> None:
        if isinstance(action, ast.SetStatus):
            outcome.verdict = (
                RuleVerdict.SATISFIED
                if action.satisfied
                else RuleVerdict.NOT_SATISFIED
            )
            return
        if isinstance(action, ast.Alert):
            outcome.alerts.append(action.message)
            return
        if isinstance(action, ast.Assign):
            context.env[action.var] = evaluate_expression(
                action.expr, context
            )
            return
        raise RuleEngineError(
            f"unknown action node {type(action).__name__}"
        )
