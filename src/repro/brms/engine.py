"""The rule execution engine.

Runs compiled BAL rules against trace graphs and produces
:class:`RuleOutcome` objects with one of four verdicts:

- ``SATISFIED`` / ``NOT_SATISFIED`` — the paper's two explicit outcomes,
- ``NOT_APPLICABLE`` — the rule's anchor (its first instance binding, e.g.
  "the current job request") does not bind in this trace: the control is
  about artifacts the trace does not contain,
- ``UNDETERMINED`` — the rule references a concept whose artifacts are
  *known to be unobservable* under the current capture configuration, so a
  verdict would be evidence-free.  This refinement matters for partially
  managed processes (experiment E4); pass ``observable_types=None`` to get
  the paper's plain two-outcome behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.brms.bal import ast
from repro.brms.bal.compiler import CompiledRule
from repro.brms.bal.evaluate import (
    EvalContext,
    evaluate_condition,
    evaluate_definition,
    evaluate_expression,
)
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel, XomObject
from repro.errors import RuleEngineError
from repro.graph.graph import ProvenanceGraph


class RuleVerdict(enum.Enum):
    SATISFIED = "satisfied"
    NOT_SATISFIED = "not_satisfied"
    NOT_APPLICABLE = "not_applicable"
    UNDETERMINED = "undetermined"


@dataclass
class RuleOutcome:
    """The result of evaluating one rule against one trace."""

    rule_name: str
    trace_id: str
    verdict: RuleVerdict
    condition_value: Optional[bool] = None
    alerts: List[str] = field(default_factory=list)
    bindings: Dict[str, Optional[str]] = field(default_factory=dict)
    env_values: Dict[str, object] = field(default_factory=dict)
    touched_nodes: List[str] = field(default_factory=list)

    @property
    def bound_node_ids(self) -> List[str]:
        """Record ids of all graph nodes the rule's definitions bound.

        Control deployment turns these into edges from the control's custom
        node to the data nodes — the paper's "connected to the three data
        nodes defined by the constraints".
        """
        return [rid for rid in self.bindings.values() if rid is not None]


# alias kept for the public API surface
RuleContext = EvalContext


class RuleEngine:
    """Evaluates compiled rules against trace graphs."""

    def __init__(
        self,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
    ) -> None:
        self.xom = xom
        self.vocabulary = vocabulary

    def _unobservable_concepts(
        self, compiled: CompiledRule, observable_types: Optional[Set[str]]
    ) -> List[str]:
        if observable_types is None:
            return []
        missing = []
        for concept in compiled.concepts:
            bom_class = self.vocabulary.concept(concept)
            if bom_class.node_type not in observable_types:
                missing.append(concept)
        return missing

    def evaluate(
        self,
        compiled: CompiledRule,
        graph: ProvenanceGraph,
        parameters: Optional[Dict[str, object]] = None,
        observable_types: Optional[Set[str]] = None,
    ) -> RuleOutcome:
        """Evaluate *compiled* against one trace *graph*."""
        trace_id = graph.name
        if self._unobservable_concepts(compiled, observable_types):
            return RuleOutcome(
                rule_name=compiled.name,
                trace_id=trace_id,
                verdict=RuleVerdict.UNDETERMINED,
            )

        context = EvalContext(
            graph=graph,
            xom=self.xom,
            vocabulary=self.vocabulary,
            parameters=dict(parameters or {}),
        )

        anchor = compiled.anchor_variable
        for definition in compiled.rule.definitions:
            value = evaluate_definition(definition, context)
            if definition.var == anchor and value is None:
                return self._outcome_from(
                    compiled, trace_id, RuleVerdict.NOT_APPLICABLE, context
                )

        condition_value = evaluate_condition(compiled.rule.condition, context)
        actions = (
            compiled.rule.then_actions
            if condition_value
            else compiled.rule.else_actions
        )
        default = (
            RuleVerdict.SATISFIED
            if condition_value
            else RuleVerdict.NOT_SATISFIED
        )

        outcome = self._outcome_from(compiled, trace_id, default, context)
        outcome.condition_value = condition_value
        for action in actions:
            self._execute_action(action, context, outcome)
        # Re-capture bindings: Assign actions may have added variables.
        self._capture_bindings(context, outcome)
        return outcome

    def evaluate_many(
        self,
        compiled: CompiledRule,
        graphs: Sequence[ProvenanceGraph],
        parameters: Optional[Dict[str, object]] = None,
        observable_types: Optional[Set[str]] = None,
    ) -> List[RuleOutcome]:
        """Evaluate one rule across many trace graphs."""
        return [
            self.evaluate(compiled, graph, parameters, observable_types)
            for graph in graphs
        ]

    # -- helpers -------------------------------------------------------------

    def _outcome_from(
        self,
        compiled: CompiledRule,
        trace_id: str,
        verdict: RuleVerdict,
        context: EvalContext,
    ) -> RuleOutcome:
        outcome = RuleOutcome(
            rule_name=compiled.name, trace_id=trace_id, verdict=verdict
        )
        self._capture_bindings(context, outcome)
        return outcome

    @staticmethod
    def _capture_bindings(context: EvalContext, outcome: RuleOutcome) -> None:
        for var, value in context.env.items():
            if isinstance(value, XomObject):
                outcome.bindings[var] = value.record.record_id
            else:
                outcome.bindings[var] = None
                outcome.env_values[var] = value
        outcome.touched_nodes = sorted(context.touched)

    @staticmethod
    def _execute_action(
        action: ast.Node, context: EvalContext, outcome: RuleOutcome
    ) -> None:
        if isinstance(action, ast.SetStatus):
            outcome.verdict = (
                RuleVerdict.SATISFIED
                if action.satisfied
                else RuleVerdict.NOT_SATISFIED
            )
            return
        if isinstance(action, ast.Alert):
            outcome.alerts.append(action.message)
            return
        if isinstance(action, ast.Assign):
            context.env[action.var] = evaluate_expression(
                action.expr, context
            )
            return
        raise RuleEngineError(
            f"unknown action node {type(action).__name__}"
        )
