"""Verbalization: generating the BOM from the XOM.

"When the BOM is created from the execution model, class attributes are
verbalized as navigation phrases and the methods are verbalized as action
phrases" (§II.D).  The :class:`Verbalizer` performs that generation:

- every XOM class becomes a BOM concept whose label comes from the data
  model (``jobrequisition`` → ``Job Requisition``),
- every attribute becomes a navigation-phrase member (``managergen`` with
  ``verbalized="general manager"`` → phrase ``general manager``, rendered
  as "the general manager of {this}"),
- every relation role becomes a navigation-phrase member using the relation
  type's label (``submitterOf`` with label ``the submitter of`` → phrase
  ``submitter`` on the target concept).

Crucially — and this is the paper's applicability argument for unmanaged
processes — verbalization consumes only the data model and XOM, never
application code: "verbalization can be done over the execution trace
without changing the application code" (§IV).
"""

from __future__ import annotations

from typing import Optional

from repro.brms.bom import BomClass, BomMember, BusinessObjectModel, MemberKind
from repro.brms.xom import ExecutableObjectModel
from repro.model.schema import RelationTypeSpec


def _phrase_from_relation_label(spec: RelationTypeSpec) -> str:
    """Extract the phrase core from a relation label.

    ``the submitter of`` → ``submitter``; a bare label like ``actor`` stays
    as is.
    """
    words = spec.label.strip().split()
    if words and words[0].lower() in ("the", "a", "an"):
        words = words[1:]
    if words and words[-1].lower() == "of":
        words = words[:-1]
    return " ".join(words) if words else spec.name


class Verbalizer:
    """Generates a BOM (and so a vocabulary) from a XOM."""

    def __init__(self, xom: ExecutableObjectModel) -> None:
        self.xom = xom

    def verbalize(self, bom_name: Optional[str] = None) -> BusinessObjectModel:
        """Produce the BOM for the whole XOM."""
        model = self.xom.model
        bom = BusinessObjectModel(bom_name or f"{model.name}-bom")

        for xom_class in self.xom.classes():
            spec = xom_class.node_type
            bom_class = BomClass(
                concept=spec.label,
                node_type=spec.name,
                qualified_name=xom_class.qualified_name,
            )
            for attribute in spec.attributes:
                bom_class.add_member(
                    BomMember(
                        name=attribute.name,
                        phrase=attribute.verbalized,
                        kind=MemberKind.ATTRIBUTE,
                        attribute=attribute.name,
                    )
                )
            # Every record carries a capture timestamp; verbalize it as a
            # built-in so temporal controls ("the approval must precede the
            # candidate search") need no per-type declaration.  Declared
            # attributes named "timestamp" win over the built-in.
            if bom_class.member_by_phrase("timestamp") is None:
                bom_class.add_member(
                    BomMember(
                        name="__timestamp__",
                        phrase="timestamp",
                        kind=MemberKind.VIRTUAL,
                        phrase_kind="navigation",
                        getter=lambda obj: obj.record.timestamp,
                    )
                )
            bom.add_class(bom_class)

        # Relation roles: a relation Resource --submitterOf--> Data gives the
        # *target* concept a "submitter" member traversing the edge backwards,
        # and the *source* concept nothing by default (an explicit inverse
        # label can be modelled as a second relation type).
        for relation in model.relation_types():
            phrase = _phrase_from_relation_label(relation)
            for spec in model.node_types(relation.target_class):
                bom_class = bom.for_node_type(spec.name)
                if bom_class.member_by_phrase(phrase) is not None:
                    continue  # attribute verbalizations win over relations
                source_types = model.node_types(relation.source_class)
                result_concept = (
                    source_types[0].label if len(source_types) == 1 else None
                )
                bom_class.add_member(
                    BomMember(
                        name=relation.name,
                        phrase=phrase,
                        kind=MemberKind.RELATION,
                        relation_type=relation.name,
                        direction="in",
                        result_concept=result_concept,
                    )
                )
        return bom
