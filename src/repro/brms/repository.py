"""Rule repository and deployment lifecycle.

"Often implementation of internal control points depends on IT departments
in creating, testing and deployment of internal controls by business
people" (§II.C) — the repository is the artifact store that lets business
people own that lifecycle instead.  Rules move through DRAFT → DEPLOYED →
RETIRED; every edit of a deployed rule produces a new version, the old one
is retained for audit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.brms.bal.compiler import BalCompiler, CompiledRule
from repro.errors import DeploymentError


class RuleState(enum.Enum):
    DRAFT = "draft"
    DEPLOYED = "deployed"
    RETIRED = "retired"


@dataclass(frozen=True)
class RuleArtifact:
    """One version of one rule in the repository."""

    name: str
    version: int
    state: RuleState
    compiled: CompiledRule

    @property
    def source(self) -> str:
        return self.compiled.source


class RuleRepository:
    """Versioned storage of BAL rules with a deployment lifecycle."""

    def __init__(self, compiler: BalCompiler) -> None:
        self.compiler = compiler
        self._versions: Dict[str, List[RuleArtifact]] = {}

    # -- authoring -------------------------------------------------------------

    def author(self, name: str, text: str) -> RuleArtifact:
        """Create a new draft (version 1) or a new draft version of *name*.

        Compilation runs immediately: authoring errors surface at save
        time, exactly as a rule editor validates against the vocabulary.
        """
        compiled = self.compiler.compile(name, text)
        versions = self._versions.setdefault(name, [])
        artifact = RuleArtifact(
            name=name,
            version=len(versions) + 1,
            state=RuleState.DRAFT,
            compiled=compiled,
        )
        versions.append(artifact)
        return artifact

    # -- lifecycle ---------------------------------------------------------------

    def deploy(self, name: str, version: Optional[int] = None) -> RuleArtifact:
        """Deploy a draft; any previously deployed version retires."""
        artifact = self._get(name, version)
        if artifact.state is RuleState.RETIRED:
            raise DeploymentError(
                f"rule {name!r} v{artifact.version} is retired"
            )
        versions = self._versions[name]
        for index, existing in enumerate(versions):
            if (
                existing.state is RuleState.DEPLOYED
                and existing.version != artifact.version
            ):
                versions[index] = replace(existing, state=RuleState.RETIRED)
        index = artifact.version - 1
        versions[index] = replace(artifact, state=RuleState.DEPLOYED)
        return versions[index]

    def retire(self, name: str) -> RuleArtifact:
        """Retire the deployed version of *name*."""
        deployed = self.deployed(name)
        if deployed is None:
            raise DeploymentError(f"rule {name!r} has no deployed version")
        versions = self._versions[name]
        index = deployed.version - 1
        versions[index] = replace(deployed, state=RuleState.RETIRED)
        return versions[index]

    # -- queries -------------------------------------------------------------------

    def _get(self, name: str, version: Optional[int]) -> RuleArtifact:
        versions = self._versions.get(name)
        if not versions:
            raise DeploymentError(f"unknown rule {name!r}")
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise DeploymentError(
                f"rule {name!r} has no version {version}"
            )
        return versions[version - 1]

    def get(self, name: str, version: Optional[int] = None) -> RuleArtifact:
        """Latest (or a specific) version of a rule."""
        return self._get(name, version)

    def deployed(self, name: str) -> Optional[RuleArtifact]:
        """The deployed version of *name*, or None."""
        for artifact in self._versions.get(name, ()):
            if artifact.state is RuleState.DEPLOYED:
                return artifact
        return None

    def all_deployed(self) -> List[RuleArtifact]:
        """Every deployed rule, in authoring order."""
        result = []
        for versions in self._versions.values():
            for artifact in versions:
                if artifact.state is RuleState.DEPLOYED:
                    result.append(artifact)
        return result

    def names(self) -> List[str]:
        return list(self._versions.keys())

    def history(self, name: str) -> List[RuleArtifact]:
        """All versions of *name*, oldest first."""
        if name not in self._versions:
            raise DeploymentError(f"unknown rule {name!r}")
        return list(self._versions[name])
