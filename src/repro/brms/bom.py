"""The business object model (BOM) and BOM-to-XOM mapping.

"In order to enable editing internal controls by using business vocabulary,
the next step is to map XOM to business vocabulary by using so-called
Business Object Model (BOM). […] A BOM in a rule management system contains
the classes and methods that the artifacts of internal controls act on"
(§II.D).

A :class:`BomClass` is a business *concept* (label ``Job Requisition``); its
:class:`BomMember` entries carry a navigation or action phrase plus the
*execution* of that phrase against a XOM object — attribute read, relation
traversal, or a virtual Python callable (the paper's ``getManagergen``
hashtable example).  The member's ``verbalization_entry`` renders the
``mycompany.jobrequisition.managergen#phrase.navigation = {general manager}
of {this}`` lines the paper lists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.brms.xom import XomObject
from repro.errors import BomError

VirtualGetter = Callable[[XomObject], object]


class MemberKind(enum.Enum):
    """How a BOM member executes against the XOM."""

    ATTRIBUTE = "attribute"  # read a record attribute
    RELATION = "relation"  # traverse a graph relation
    VIRTUAL = "virtual"  # call a registered Python function


@dataclass(frozen=True)
class BomMember:
    """One member of a BOM class.

    Attributes:
        name: member name in the BOM (attribute name, relation name, or
            virtual method name).
        phrase: the business phrase verbalizing the member, e.g.
            ``general manager`` — used in rules as
            "the general manager of <expr>".
        kind: attribute / relation / virtual.
        phrase_kind: ``navigation`` or ``action`` (the paper distinguishes
            navigation phrases for attributes and action phrases for
            methods).
        attribute: record attribute read (ATTRIBUTE kind).
        relation_type / direction / many: traversal spec (RELATION kind).
        getter: Python callable (VIRTUAL kind).
        result_concept: the concept label of the member's result, when it is
            itself a business object (relation members); None for scalars.
    """

    name: str
    phrase: str
    kind: MemberKind
    phrase_kind: str = "navigation"
    attribute: str = ""
    relation_type: str = ""
    direction: str = "in"
    many: bool = False
    getter: Optional[VirtualGetter] = None
    result_concept: Optional[str] = None

    def execute(self, target: XomObject) -> object:
        """Evaluate this member on a XOM object.

        Returns a scalar (ATTRIBUTE), a XomObject or list thereof
        (RELATION), or whatever the virtual getter yields.  Missing
        attributes and absent relations yield None (the rule language's
        ``null``).
        """
        if self.kind is MemberKind.ATTRIBUTE:
            return target.get(self.attribute)
        if self.kind is MemberKind.RELATION:
            if self.many:
                return target.follow(self.relation_type, self.direction)
            return target.follow_one(self.relation_type, self.direction)
        if self.kind is MemberKind.VIRTUAL:
            if self.getter is None:
                raise BomError(f"virtual member {self.name!r} has no getter")
            return self.getter(target)
        raise BomError(f"unknown member kind {self.kind!r}")

    def verbalization_entry(self, owner_qualified_name: str) -> str:
        """The paper-style BOM entry line for this member."""
        return (
            f"{owner_qualified_name}.{self.name}"
            f"#phrase.{self.phrase_kind} = {{{self.phrase}}} of {{this}}"
        )


@dataclass
class BomClass:
    """A business concept: label, XOM linkage, and members."""

    concept: str  # business label, e.g. "Job Requisition"
    node_type: str  # XOM/data-model node type, e.g. "jobrequisition"
    qualified_name: str  # e.g. "mycompany.jobrequisition"
    members: List[BomMember] = field(default_factory=list)

    def member_by_phrase(self, phrase: str) -> Optional[BomMember]:
        wanted = phrase.strip().lower()
        for member in self.members:
            if member.phrase.lower() == wanted:
                return member
        return None

    def member_by_name(self, name: str) -> Optional[BomMember]:
        for member in self.members:
            if member.name == name:
                return member
        return None

    def add_member(self, member: BomMember) -> BomMember:
        if self.member_by_phrase(member.phrase) is not None:
            raise BomError(
                f"concept {self.concept!r} already verbalizes "
                f"{member.phrase!r}"
            )
        self.members.append(member)
        return member

    def concept_label_entry(self) -> str:
        """The paper-style ``#concept.label`` line."""
        return f"{self.qualified_name}#concept.label = {self.concept}"


class BusinessObjectModel:
    """The BOM: all concepts of one business scope, keyed both ways."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._by_concept: Dict[str, BomClass] = {}
        self._by_node_type: Dict[str, BomClass] = {}

    def add_class(self, bom_class: BomClass) -> BomClass:
        key = bom_class.concept.lower()
        if key in self._by_concept:
            raise BomError(f"concept {bom_class.concept!r} already defined")
        if bom_class.node_type in self._by_node_type:
            raise BomError(
                f"node type {bom_class.node_type!r} already has a concept"
            )
        self._by_concept[key] = bom_class
        self._by_node_type[bom_class.node_type] = bom_class
        return bom_class

    def concept(self, label: str) -> BomClass:
        try:
            return self._by_concept[label.strip().lower()]
        except KeyError:
            raise BomError(f"unknown concept {label!r}") from None

    def has_concept(self, label: str) -> bool:
        return label.strip().lower() in self._by_concept

    def for_node_type(self, node_type: str) -> BomClass:
        try:
            return self._by_node_type[node_type]
        except KeyError:
            raise BomError(
                f"node type {node_type!r} has no BOM concept"
            ) from None

    def has_node_type(self, node_type: str) -> bool:
        return node_type in self._by_node_type

    def classes(self) -> List[BomClass]:
        return list(self._by_concept.values())

    def register_virtual(
        self,
        concept: str,
        name: str,
        phrase: str,
        getter: VirtualGetter,
        result_concept: Optional[str] = None,
    ) -> BomMember:
        """Attach a virtual (action-phrase) member to a concept.

        This implements the paper's ``getManagergen`` pattern: a method on
        the business object backed by arbitrary code (there, a hashtable of
        department → general manager), verbalized as an action phrase.
        """
        member = BomMember(
            name=name,
            phrase=phrase,
            kind=MemberKind.VIRTUAL,
            phrase_kind="action",
            getter=getter,
            result_concept=result_concept,
        )
        return self.concept(concept).add_member(member)

    def dump_entries(self) -> List[str]:
        """All paper-style BOM entry lines, class by class (Figure 3)."""
        lines: List[str] = []
        for bom_class in self._by_concept.values():
            lines.append(bom_class.concept_label_entry())
            for member in bom_class.members:
                lines.append(
                    member.verbalization_entry(bom_class.qualified_name)
                )
        return lines
