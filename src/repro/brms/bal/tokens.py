"""BAL lexer.

Token kinds:

- ``WORD`` — bare identifiers and keywords (keywords are recognized by the
  parser, not the lexer, because phrases may contain words like ``of``),
- ``STRING`` — double-quoted literals,
- ``NUMBER`` — integer or decimal literals,
- ``VARIABLE`` — single-quoted variable names,
- ``PARAMETER`` — ``<…>`` rule parameters,
- ``PUNCT`` — ``; : , - ( ) + * /`` (``-`` doubles as the bullet marker;
  the parser disambiguates from subtraction by position).

The lexer tracks line/column for error reporting in the authoring tool.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import BalSyntaxError


class TokenType(enum.Enum):
    WORD = "word"
    STRING = "string"
    NUMBER = "number"
    VARIABLE = "variable"
    PARAMETER = "parameter"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_word(self, *words: str) -> bool:
        """Case-insensitive keyword check."""
        return self.type is TokenType.WORD and self.value.lower() in tuple(
            w.lower() for w in words
        )

    def is_punct(self, *symbols: str) -> bool:
        return self.type is TokenType.PUNCT and self.value in symbols


_PUNCT = set(";:,-()+*/")


def tokenize(text: str) -> List[Token]:
    """Tokenize BAL *text*; raises :class:`BalSyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(text)

    def error(message: str) -> BalSyntaxError:
        return BalSyntaxError(message, line=line, column=column)

    while i < length:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        start_line, start_column = line, column
        if ch == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise error("unterminated string literal")
            value = text[i + 1 : j]
            if "\n" in value:
                raise error("string literal spans lines")
            tokens.append(
                Token(TokenType.STRING, value, start_line, start_column)
            )
            column += j - i + 1
            i = j + 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise error("unterminated variable name")
            value = text[i + 1 : j].strip()
            if not value:
                raise error("empty variable name")
            if "\n" in value:
                raise error("variable name spans lines")
            tokens.append(
                Token(TokenType.VARIABLE, value, start_line, start_column)
            )
            column += j - i + 1
            i = j + 1
            continue
        if ch == "<":
            j = text.find(">", i + 1)
            if j < 0:
                raise error("unterminated parameter")
            value = text[i + 1 : j].strip()
            if not value:
                raise error("empty parameter")
            tokens.append(
                Token(TokenType.PARAMETER, value, start_line, start_column)
            )
            column += j - i + 1
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < length and (text[j].isdigit() or text[j] == "."):
                if text[j] == ".":
                    if seen_dot:
                        break
                    # A trailing dot (end of sentence) is not part of the
                    # number.
                    if j + 1 >= length or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            value = text[i:j]
            tokens.append(
                Token(TokenType.NUMBER, value, start_line, start_column)
            )
            column += j - i
            i = j
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, start_line, start_column))
            column += 1
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] in "_"):
                j += 1
            value = text[i:j]
            tokens.append(
                Token(TokenType.WORD, value, start_line, start_column)
            )
            column += j - i
            i = j
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
