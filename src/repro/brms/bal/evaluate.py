"""BAL evaluation.

Interprets a parsed rule against an :class:`EvalContext` (trace graph + XOM
+ vocabulary + parameters).  This tree-walking interpreter is the language's
*reference semantics*: the closure compiler
(:mod:`repro.brms.bal.codegen`) must agree with it outcome-for-outcome, and
the differential fuzz suite enforces that.  Value domain:

- ``None`` is the rule language's ``null``,
- scalars (str/int/float/bool) come from record attributes and literals,
- :class:`~repro.brms.xom.XomObject` values come from instance bindings and
  relation navigation; lists of them from plural relations.

Null handling follows the paper's worked example ("Approval from the
general manager of the request **is not null**"): navigation over null
yields null; ordered comparisons with null are false; ``is null`` /
``is not null`` test presence.  Equality of two XOM objects compares graph
identity (record id).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.brms.bal import ast
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel, XomObject
from repro.errors import RuleEngineError
from repro.graph.graph import ProvenanceGraph


class TraceFrame:
    """Shared per-trace evaluation state: one graph, XOM wraps built once.

    Wrapping every graph node into an :class:`XomObject` and sorting the
    instance lists is pure function of the graph, yet a sweep that runs C
    controls against T traces used to redo it C×T times.  A frame memoizes
    the instance lists (and the trace's last timestamp) so every control —
    and every quantifier inside every rule — evaluated against the same
    trace shares one wrapping.  Frames are read-shared: callers must never
    mutate the returned lists, and a frame must be dropped when its trace
    gains records (the :class:`~repro.controls.evaluator.ComplianceEvaluator`
    invalidates via store subscription).
    """

    __slots__ = ("graph", "_instances", "_checked_at")

    def __init__(self, graph: ProvenanceGraph) -> None:
        self.graph = graph
        self._instances: Dict[str, List[XomObject]] = {}
        self._checked_at: Optional[int] = None

    def instances_of(
        self, xom: ExecutableObjectModel, node_type: str
    ) -> List[XomObject]:
        """Sorted XOM instances of *node_type*, wrapped at most once."""
        cached = self._instances.get(node_type)
        if cached is None:
            cached = xom.instances(self.graph, node_type)
            cached.sort(key=lambda o: o.record.record_id)
            self._instances[node_type] = cached
        return cached

    @property
    def checked_at(self) -> int:
        """The trace's newest record timestamp (compliance-row metadata)."""
        if self._checked_at is None:
            self._checked_at = max(
                (record.timestamp for record in self.graph.nodes()),
                default=0,
            )
        return self._checked_at


@dataclass
class EvalContext:
    """Everything a rule evaluation needs.

    Attributes:
        graph: the trace graph the rule runs against.
        xom: the executable object model wrapping graph nodes.
        vocabulary: phrase → member resolution.
        parameters: values for ``<param>`` references.
        env: definitions-variable environment (filled during evaluation).
        this_stack: candidate stack for ``this`` inside where-clauses.
        frame: optional shared per-trace state (memoized XOM instance
            lists); per-evaluation state (env, touched) stays here.
    """

    graph: ProvenanceGraph
    xom: ExecutableObjectModel
    vocabulary: Vocabulary
    parameters: Dict[str, object] = field(default_factory=dict)
    env: Dict[str, object] = field(default_factory=dict)
    this_stack: List[XomObject] = field(default_factory=list)
    touched: "set" = field(default_factory=set)
    frame: Optional[TraceFrame] = None

    def touch(self, value: object) -> object:
        """Record graph nodes a rule actually examined.

        Control binding uses the touched set to wire the control point to
        every data node its constraints reached — the paper's "connected to
        the three data nodes defined by the constraints" — not only the
        nodes the definitions named.
        """
        if isinstance(value, XomObject):
            self.touched.add(value.record.record_id)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self.touch(item)
        return value

    def instances_of(self, concept: str) -> List[XomObject]:
        """All trace-graph instances of a business concept, ordered by id.

        With a shared :class:`TraceFrame` the returned list is memoized and
        must be treated as read-only.
        """
        bom_class = self.vocabulary.concept(concept)
        if self.frame is not None:
            return self.frame.instances_of(self.xom, bom_class.node_type)
        objects = self.xom.instances(self.graph, bom_class.node_type)
        objects.sort(key=lambda o: o.record.record_id)
        return objects


def _is_null(value: object) -> bool:
    if value is None:
        return True
    if isinstance(value, (list, tuple)) and not value:
        return True
    return False


def _equals(left: object, right: object) -> bool:
    if isinstance(left, XomObject) or isinstance(right, XomObject):
        if isinstance(left, XomObject) and isinstance(right, XomObject):
            return left.record.record_id == right.record.record_id
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right if isinstance(right, bool) else False
    return left == right


def _ordered(op: str, left: object, right: object) -> bool:
    if _is_null(left) or _is_null(right):
        return False
    try:
        if op == "lt":
            return left < right
        if op == "le":
            return left <= right
        if op == "gt":
            return left > right
        if op == "ge":
            return left >= right
    except TypeError:
        return False
    raise RuleEngineError(f"unknown ordered comparison {op!r}")


def evaluate_expression(node: ast.Node, context: EvalContext) -> object:
    """Evaluate an expression node to a value."""
    if isinstance(node, ast.Literal):
        return node.value
    if isinstance(node, ast.VarRef):
        if node.name not in context.env:
            raise RuleEngineError(f"undefined variable '{node.name}'")
        return context.env[node.name]
    if isinstance(node, ast.ParamRef):
        if node.name not in context.parameters:
            raise RuleEngineError(f"unbound parameter <{node.name}>")
        return context.parameters[node.name]
    if isinstance(node, ast.ThisRef):
        if not context.this_stack:
            raise RuleEngineError("'this' used outside a where-clause")
        return context.this_stack[-1]
    if isinstance(node, ast.Navigation):
        return _evaluate_navigation(node, context)
    if isinstance(node, ast.CountOf):
        value = evaluate_expression(node.target, context)
        if value is None:
            return 0
        if isinstance(value, (list, tuple)):
            return len(value)
        return 1
    if isinstance(node, ast.Arith):
        return _evaluate_arith(node, context)
    if isinstance(
        node,
        (ast.Comparison, ast.And, ast.Or, ast.Not, ast.Exists,
         ast.Quantified),
    ):
        # Conditions are valid boolean-valued expressions.
        return evaluate_condition(node, context)
    raise RuleEngineError(f"cannot evaluate node {type(node).__name__}")


def _evaluate_navigation(node: ast.Navigation, context: EvalContext) -> object:
    target = evaluate_expression(node.target, context)
    if target is None:
        return None
    if isinstance(target, (list, tuple)):
        raise RuleEngineError(
            f"cannot navigate {node.phrase!r} over a collection; "
            f"bind a single object first"
        )
    if not isinstance(target, XomObject):
        raise RuleEngineError(
            f"cannot navigate {node.phrase!r} over scalar {target!r}"
        )
    node_type = target.record.entity_type
    member = context.vocabulary.find_member_for_type(node_type, node.phrase)
    if member is None:
        concept = target.xom_class.node_type.label
        raise RuleEngineError(
            f"concept {concept!r} has no phrase {node.phrase!r}"
        )
    return context.touch(member.execute(target))


def _evaluate_arith(node: ast.Arith, context: EvalContext) -> object:
    left = evaluate_expression(node.left, context)
    right = evaluate_expression(node.right, context)
    if left is None or right is None:
        return None
    if node.op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if not isinstance(left, (int, float)) or not isinstance(
        right, (int, float)
    ):
        raise RuleEngineError(
            f"arithmetic {node.op!r} needs numbers, got "
            f"{type(left).__name__} and {type(right).__name__}"
        )
    if node.op == "+":
        return left + right
    if node.op == "-":
        return left - right
    if node.op == "*":
        return left * right
    if node.op == "/":
        if right == 0:
            raise RuleEngineError("division by zero in rule")
        return left / right
    raise RuleEngineError(f"unknown arithmetic operator {node.op!r}")


def evaluate_condition(node: ast.Node, context: EvalContext) -> bool:
    """Evaluate a condition node to a boolean."""
    if isinstance(node, ast.And):
        return all(evaluate_condition(c, context) for c in node.conditions)
    if isinstance(node, ast.Or):
        return any(evaluate_condition(c, context) for c in node.conditions)
    if isinstance(node, ast.Not):
        return not evaluate_condition(node.condition, context)
    if isinstance(node, ast.Exists):
        found = _find_instances(node.concept, node.where, context)
        context.touch(found)  # the matches are the control's evidence
        return not found if node.negated else bool(found)
    if isinstance(node, ast.Quantified):
        found = _find_instances(node.concept, node.where, context)
        context.touch(found)
        if node.op == "ge":
            return len(found) >= node.count
        if node.op == "le":
            return len(found) <= node.count
        return len(found) == node.count
    if isinstance(node, ast.Comparison):
        return _evaluate_comparison(node, context)
    # A bare expression in condition position tests truthiness.
    value = evaluate_expression(node, context)
    return bool(value) and not _is_null(value)


def _evaluate_comparison(node: ast.Comparison, context: EvalContext) -> bool:
    left = evaluate_expression(node.left, context)
    if node.op == "is_null":
        return _is_null(left)
    if node.op == "not_null":
        return not _is_null(left)
    if node.op == "truthy":
        return bool(left) and not _is_null(left)
    if node.op == "one_of":
        options = [evaluate_expression(o, context) for o in node.right]
        return any(_equals(left, option) for option in options)
    right = evaluate_expression(node.right, context)
    if node.op == "eq":
        return _equals(left, right)
    if node.op == "ne":
        return not _equals(left, right)
    return _ordered(node.op, left, right)


def _find_instances(
    concept: str, where: Optional[ast.Node], context: EvalContext
) -> List[XomObject]:
    """Concept instances in the trace graph satisfying a where-clause."""
    matches: List[XomObject] = []
    for candidate in context.instances_of(concept):
        if where is None:
            matches.append(candidate)
            continue
        context.this_stack.append(candidate)
        touched_before = set(context.touched)
        try:
            accepted = evaluate_condition(where, context)
        finally:
            context.this_stack.pop()
        if accepted:
            matches.append(candidate)
        else:
            # Nodes examined only while *rejecting* a candidate are not part
            # of the control's subgraph.
            context.touched = touched_before
    return matches


def evaluate_definition(
    definition: ast.Definition, context: EvalContext
) -> object:
    """Evaluate one definition; stores and returns the bound value."""
    binder = definition.binder
    if isinstance(binder, ast.InstanceBinding):
        matches = _find_instances(binder.concept, binder.where, context)
        value: object = matches[0] if matches else None
        context.touch(value)
    else:
        value = evaluate_expression(binder, context)
    context.env[definition.var] = value
    return value
