"""BAL closure compilation: the compiled execution back end.

The tree-walking interpreter (:mod:`repro.brms.bal.evaluate`) re-dispatches
on AST node classes every time a rule runs — thousands of ``isinstance``
chains per sweep for the *same* rule.  This module lowers a
:class:`~repro.brms.bal.compiler.CompiledRule` **once** into a nest of
plain Python closures — one closure per AST node, specialized on the node's
operator and operands at compile time — packaged as a
:class:`ClosureProgram`.  Thereafter a rule evaluation is direct function
calls: no AST walks, no operator-string comparisons, and navigation
phrases resolve against the vocabulary once per runtime node type (the
resolution is memoized inside the navigation closure, the JRules-style
"rule compiled against the object model" move).

Semantics are *defined* by the interpreter; the closures must match it
outcome-for-outcome — same values, same null propagation, same touched-node
sets, same :class:`~repro.errors.RuleEngineError` messages.  The
differential fuzz suite (``tests/test_bal_fuzz.py``) holds the two back
ends to that contract.

An AST shape this compiler does not cover raises :class:`CodegenGap` at
compile time; the engine catches it and falls back to the interpreter for
that rule, so new AST nodes degrade to interpreted speed instead of
breaking evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.brms.bal import ast
from repro.brms.bal.compiler import CompiledRule
from repro.brms.bal.evaluate import EvalContext, _equals, _is_null, _ordered
from repro.brms.xom import XomObject
from repro.errors import RuleEngineError

ExprFn = Callable[[EvalContext], object]
CondFn = Callable[[EvalContext], bool]
# Actions additionally mutate the engine's RuleOutcome (typed as object to
# keep this module import-free of the engine).
ActionFn = Callable[[EvalContext, object], None]

_MISSING = object()  # sentinel: "no cached member yet" vs "cached None"

_CONDITION_NODES = (
    ast.Comparison,
    ast.And,
    ast.Or,
    ast.Not,
    ast.Exists,
    ast.Quantified,
)


class CodegenGap(Exception):
    """An AST shape the closure compiler does not cover.

    Raised at compile time only; the engine falls back to the interpreter
    for the whole rule, so evaluation semantics never depend on codegen
    coverage.
    """


@dataclass(frozen=True)
class ClosureProgram:
    """A rule lowered to closures, ready for direct-call evaluation.

    Attributes:
        name: the rule name (diagnostics).
        anchor: the anchor variable (NOT_APPLICABLE detection), mirroring
            :attr:`CompiledRule.anchor_variable`.
        definitions: ``(variable, closure)`` pairs in source order; the
            driver stores each closure's value into ``context.env``.
        condition: the if-part closure.
        then_actions / else_actions: action closures taking
            ``(context, outcome)``.
    """

    name: str
    anchor: Optional[str]
    definitions: Tuple[Tuple[str, ExprFn], ...]
    condition: CondFn
    then_actions: Tuple[ActionFn, ...]
    else_actions: Tuple[ActionFn, ...]


# -- expressions --------------------------------------------------------------


def compile_expression(node: ast.Node) -> ExprFn:
    """Lower an expression node to a closure ``context -> value``."""
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda context: value

    if isinstance(node, ast.VarRef):
        name = node.name

        def var_ref(context: EvalContext) -> object:
            try:
                return context.env[name]
            except KeyError:
                raise RuleEngineError(
                    f"undefined variable '{name}'"
                ) from None

        return var_ref

    if isinstance(node, ast.ParamRef):
        name = node.name

        def param_ref(context: EvalContext) -> object:
            try:
                return context.parameters[name]
            except KeyError:
                raise RuleEngineError(
                    f"unbound parameter <{name}>"
                ) from None

        return param_ref

    if isinstance(node, ast.ThisRef):

        def this_ref(context: EvalContext) -> object:
            if not context.this_stack:
                raise RuleEngineError("'this' used outside a where-clause")
            return context.this_stack[-1]

        return this_ref

    if isinstance(node, ast.Navigation):
        return _compile_navigation(node)

    if isinstance(node, ast.CountOf):
        target_fn = compile_expression(node.target)

        def count_of(context: EvalContext) -> object:
            value = target_fn(context)
            if value is None:
                return 0
            if isinstance(value, (list, tuple)):
                return len(value)
            return 1

        return count_of

    if isinstance(node, ast.Arith):
        return _compile_arith(node)

    if isinstance(node, _CONDITION_NODES):
        # Conditions are valid boolean-valued expressions.
        return compile_condition(node)

    raise CodegenGap(f"cannot compile node {type(node).__name__}")


def _compile_navigation(node: ast.Navigation) -> ExprFn:
    target_fn = compile_expression(node.target)
    phrase = node.phrase
    # phrase → member, memoized per runtime node type.  The cache lives in
    # the closure: valid because the engine caches one program per
    # (engine, rule) and an engine's vocabulary is fixed.
    members: Dict[str, object] = {}

    def navigation(context: EvalContext) -> object:
        target = target_fn(context)
        if target is None:
            return None
        if isinstance(target, (list, tuple)):
            raise RuleEngineError(
                f"cannot navigate {phrase!r} over a collection; "
                f"bind a single object first"
            )
        if not isinstance(target, XomObject):
            raise RuleEngineError(
                f"cannot navigate {phrase!r} over scalar {target!r}"
            )
        node_type = target.record.entity_type
        member = members.get(node_type, _MISSING)
        if member is _MISSING:
            member = context.vocabulary.find_member_for_type(
                node_type, phrase
            )
            members[node_type] = member
        if member is None:
            concept = target.xom_class.node_type.label
            raise RuleEngineError(
                f"concept {concept!r} has no phrase {phrase!r}"
            )
        return context.touch(member.execute(target))

    return navigation


def _compile_arith(node: ast.Arith) -> ExprFn:
    left_fn = compile_expression(node.left)
    right_fn = compile_expression(node.right)
    op = node.op
    if op not in ("+", "-", "*", "/"):
        raise CodegenGap(f"unknown arithmetic operator {op!r}")

    def arith(context: EvalContext) -> object:
        left = left_fn(context)
        right = right_fn(context)
        if left is None or right is None:
            return None
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if not isinstance(left, (int, float)) or not isinstance(
            right, (int, float)
        ):
            raise RuleEngineError(
                f"arithmetic {op!r} needs numbers, got "
                f"{type(left).__name__} and {type(right).__name__}"
            )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise RuleEngineError("division by zero in rule")
        return left / right

    return arith


# -- conditions ---------------------------------------------------------------


def compile_condition(node: ast.Node) -> CondFn:
    """Lower a condition node to a closure ``context -> bool``."""
    if isinstance(node, ast.And):
        fns = tuple(compile_condition(c) for c in node.conditions)

        def conj(context: EvalContext) -> bool:
            return all(fn(context) for fn in fns)

        return conj

    if isinstance(node, ast.Or):
        fns = tuple(compile_condition(c) for c in node.conditions)

        def disj(context: EvalContext) -> bool:
            return any(fn(context) for fn in fns)

        return disj

    if isinstance(node, ast.Not):
        inner = compile_condition(node.condition)
        return lambda context: not inner(context)

    if isinstance(node, ast.Exists):
        find = _compile_find(node.concept, node.where)
        negated = node.negated

        def exists(context: EvalContext) -> bool:
            found = find(context)
            context.touch(found)  # the matches are the control's evidence
            return not found if negated else bool(found)

        return exists

    if isinstance(node, ast.Quantified):
        if node.op not in ("ge", "le", "eq"):
            raise CodegenGap(f"unknown quantifier op {node.op!r}")
        find = _compile_find(node.concept, node.where)
        op = node.op
        count = node.count

        def quantified(context: EvalContext) -> bool:
            found = find(context)
            context.touch(found)
            if op == "ge":
                return len(found) >= count
            if op == "le":
                return len(found) <= count
            return len(found) == count

        return quantified

    if isinstance(node, ast.Comparison):
        return _compile_comparison(node)

    # A bare expression in condition position tests truthiness.
    value_fn = compile_expression(node)

    def truthy(context: EvalContext) -> bool:
        value = value_fn(context)
        return bool(value) and not _is_null(value)

    return truthy


def _compile_comparison(node: ast.Comparison) -> CondFn:
    left_fn = compile_expression(node.left)
    op = node.op

    if op == "is_null":
        return lambda context: _is_null(left_fn(context))
    if op == "not_null":
        return lambda context: not _is_null(left_fn(context))
    if op == "truthy":

        def truthy(context: EvalContext) -> bool:
            left = left_fn(context)
            return bool(left) and not _is_null(left)

        return truthy
    if op == "one_of":
        option_fns = tuple(compile_expression(o) for o in node.right)

        def one_of(context: EvalContext) -> bool:
            left = left_fn(context)
            # All options evaluate eagerly (matching the interpreter's
            # side-effect order) before the lazy equality scan.
            options = [fn(context) for fn in option_fns]
            return any(_equals(left, option) for option in options)

        return one_of

    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        right_fn = compile_expression(node.right)
        if op == "eq":
            return lambda context: _equals(
                left_fn(context), right_fn(context)
            )
        if op == "ne":
            return lambda context: not _equals(
                left_fn(context), right_fn(context)
            )
        return lambda context: _ordered(
            op, left_fn(context), right_fn(context)
        )

    raise CodegenGap(f"unknown comparison op {op!r}")


def _compile_find(concept: str, where: Optional[ast.Node]) -> ExprFn:
    """Closure over 'instances of *concept* satisfying *where*'."""
    where_fn = compile_condition(where) if where is not None else None
    # concept → node type resolves once (memoized after the first success;
    # failures re-raise identically on every call, like the interpreter).
    node_type_slot: list = []

    def instances(context: EvalContext) -> list:
        if not node_type_slot:
            node_type_slot.append(
                context.vocabulary.concept(concept).node_type
            )
        node_type = node_type_slot[0]
        frame = context.frame
        if frame is not None:
            return frame.instances_of(context.xom, node_type)
        objects = context.xom.instances(context.graph, node_type)
        objects.sort(key=lambda o: o.record.record_id)
        return objects

    def find(context: EvalContext) -> list:
        if where_fn is None:
            # Copy: the context's instance list may be frame-shared.
            return list(instances(context))
        matches = []
        for candidate in instances(context):
            context.this_stack.append(candidate)
            touched_before = set(context.touched)
            try:
                accepted = where_fn(context)
            finally:
                context.this_stack.pop()
            if accepted:
                matches.append(candidate)
            else:
                # Nodes examined only while *rejecting* a candidate are not
                # part of the control's subgraph.
                context.touched = touched_before
        return matches

    return find


# -- definitions and actions --------------------------------------------------


def compile_definition(definition: ast.Definition) -> Tuple[str, ExprFn]:
    """Lower one definition to ``(variable, closure)``; the engine stores
    the closure's value into the environment."""
    binder = definition.binder
    if isinstance(binder, ast.InstanceBinding):
        find = _compile_find(binder.concept, binder.where)

        def bind(context: EvalContext) -> object:
            matches = find(context)
            value = matches[0] if matches else None
            context.touch(value)
            return value

        return definition.var, bind
    return definition.var, compile_expression(binder)


def compile_action(node: ast.Node) -> ActionFn:
    """Lower one action node to a closure ``(context, outcome) -> None``."""
    if isinstance(node, ast.SetStatus):
        # Deferred import: the engine imports this module.
        from repro.brms.engine import RuleVerdict

        verdict = (
            RuleVerdict.SATISFIED
            if node.satisfied
            else RuleVerdict.NOT_SATISFIED
        )

        def set_status(context: EvalContext, outcome: object) -> None:
            outcome.verdict = verdict

        return set_status

    if isinstance(node, ast.Alert):
        message = node.message

        def alert(context: EvalContext, outcome: object) -> None:
            outcome.alerts.append(message)

        return alert

    if isinstance(node, ast.Assign):
        var = node.var
        expr_fn = compile_expression(node.expr)

        def assign(context: EvalContext, outcome: object) -> None:
            context.env[var] = expr_fn(context)

        return assign

    raise CodegenGap(f"unknown action node {type(node).__name__}")


def compile_rule(compiled: CompiledRule) -> ClosureProgram:
    """Lower a whole compiled rule into a :class:`ClosureProgram`.

    Raises :class:`CodegenGap` when any node is outside the compiler's
    coverage; the caller should fall back to the interpreter.
    """
    rule = compiled.rule
    return ClosureProgram(
        name=compiled.name,
        anchor=compiled.anchor_variable,
        definitions=tuple(
            compile_definition(definition) for definition in rule.definitions
        ),
        condition=compile_condition(rule.condition),
        then_actions=tuple(
            compile_action(action) for action in rule.then_actions
        ),
        else_actions=tuple(
            compile_action(action) for action in rule.else_actions
        ),
    )
