"""The Business Action Language (BAL).

"Internal controls can be created by using Business Action Language (BAL)
and the vocabulary created for the provenance graph items.  BAL consists of
predefined constructs to build business rules and the operators that can be
used in rule statements to perform arithmetic operations, associate or
negate conditions, and compare expressions" (§III).

The implemented subset covers everything the paper exhibits.  A rule has
"four parts; definitions, if, then and else"::

    definitions
      set 'the current job request' to a Job Requisition
          where the requisition ID of this Job Requisition is <string ID> ;
      set 'the hiring manager' to the submitter of 'the current job request' ;
      set 'the general manager' to the manager of 'the hiring manager' ;
    if
      all of the following conditions are true :
        - the position type of 'the current job request' is "new" ,
        - the approval of 'the current job request' is not null
    then
      the internal control is satisfied
    else
      the internal control is not satisfied ;
      alert "missing general manager approval"

Grammar summary (case-insensitive keywords):

- *variables* are single-quoted: ``'the current job request'``,
- *parameters* are angle-bracketed: ``<string ID>`` — bound at evaluation,
- *navigation* is ``the <phrase> of <expr>`` where ``<phrase>`` comes from
  the vocabulary,
- *instance bindings* are ``a/an <Concept> [where <condition>]``; inside the
  ``where``, ``this [Concept]`` denotes the candidate,
- *conditions* compose with ``and`` / ``or`` / ``not``, the block forms
  ``all/any of the following conditions are true:`` with ``-`` bullets, the
  existence forms ``there is a/no <Concept> [where …]``, and comparisons
  ``is``, ``is not``, ``is null``, ``is not null``, ``is one of (…)``,
  ``is at least/at most/more than/less than``, ``equals``,
- *arithmetic* uses ``+ - * /`` and ``the number of <expr>`` for counts,
- *actions* are ``the internal control is [not] satisfied``,
  ``alert "<message>"`` and ``set '<var>' to <expr>``.
"""

from repro.brms.bal.tokens import Token, TokenType, tokenize
from repro.brms.bal.parser import parse_rule
from repro.brms.bal.compiler import BalCompiler, CompiledRule
from repro.brms.bal.codegen import ClosureProgram, CodegenGap, compile_rule
from repro.brms.bal import ast

__all__ = [
    "BalCompiler",
    "ClosureProgram",
    "CodegenGap",
    "CompiledRule",
    "Token",
    "TokenType",
    "ast",
    "compile_rule",
    "parse_rule",
    "tokenize",
]
