"""BAL abstract syntax tree.

Plain frozen dataclasses; the compiler resolves phrases against the
vocabulary and the evaluator (:mod:`repro.brms.bal.evaluate`) interprets
nodes against a rule context.  Every node renders back to readable BAL via
``render()``, which the authoring-cost experiment (E6) and the tests'
parse/render round-trips rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


class Node:
    """Base class for all AST nodes."""

    def render(self) -> str:
        raise NotImplementedError


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Node):
    """A string/number/boolean/null literal."""

    value: object

    def render(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Node):
    """Reference to a definitions-section variable: ``'the request'``."""

    name: str

    def render(self) -> str:
        return f"'{self.name}'"


@dataclass(frozen=True)
class ParamRef(Node):
    """A rule parameter bound at evaluation time: ``<string ID>``."""

    name: str

    def render(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class ThisRef(Node):
    """The candidate inside an instance binding's where-clause."""

    concept: Optional[str] = None

    def render(self) -> str:
        return f"this {self.concept}" if self.concept else "this"


@dataclass(frozen=True)
class Navigation(Node):
    """``the <phrase> of <target>`` — a vocabulary member applied to a value."""

    phrase: str
    target: Node

    def render(self) -> str:
        return f"the {self.phrase} of {self.target.render()}"


@dataclass(frozen=True)
class CountOf(Node):
    """``the number of <expr>`` — size of a collection (or 0/1 for scalars)."""

    target: Node

    def render(self) -> str:
        return f"the number of {self.target.render()}"


@dataclass(frozen=True)
class Arith(Node):
    """Binary arithmetic: ``+ - * /``."""

    op: str
    left: Node
    right: Node

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


# -- conditions ---------------------------------------------------------------


@dataclass(frozen=True)
class Comparison(Node):
    """A comparison condition.

    ``op`` is one of ``eq ne lt le gt ge is_null not_null one_of truthy``.
    For ``one_of``, ``right`` is a tuple of expressions; for ``is_null`` /
    ``not_null`` / ``truthy`` it is None.
    """

    op: str
    left: Node
    right: Union[None, Node, Tuple[Node, ...]] = None

    _RENDERINGS = {
        "eq": "is",
        "ne": "is not",
        "lt": "is less than",
        "le": "is at most",
        "gt": "is more than",
        "ge": "is at least",
    }

    def render(self) -> str:
        if self.op == "is_null":
            return f"{self.left.render()} is null"
        if self.op == "not_null":
            return f"{self.left.render()} is not null"
        if self.op == "truthy":
            return self.left.render()
        if self.op == "one_of":
            options = ", ".join(n.render() for n in self.right)
            return f"{self.left.render()} is one of ({options})"
        keyword = self._RENDERINGS[self.op]
        return f"{self.left.render()} {keyword} {self.right.render()}"


def _render_bullet(condition: "Node") -> str:
    """Render one bullet of a condition block.

    A nested block must be parenthesized: bullet lists carry no
    indentation, so an unparenthesized inner block would greedily swallow
    the outer block's remaining bullets on re-parse.
    """
    rendered = condition.render()
    if isinstance(condition, (And, Or)) and condition.block:
        rendered = f"( {rendered} )"
    return rendered


@dataclass(frozen=True)
class And(Node):
    """Conjunction; also the ``all of the following conditions`` block."""

    conditions: Tuple[Node, ...]
    block: bool = False  # True when written in bullet-list form

    def render(self) -> str:
        if self.block:
            bullets = " ".join(
                f"- {_render_bullet(c)} ," for c in self.conditions
            ).rstrip(" ,")
            return (
                "all of the following conditions are true : " + bullets
            )
        return " and ".join(c.render() for c in self.conditions)


@dataclass(frozen=True)
class Or(Node):
    """Disjunction; also the ``any of the following conditions`` block."""

    conditions: Tuple[Node, ...]
    block: bool = False

    def render(self) -> str:
        if self.block:
            bullets = " ".join(
                f"- {_render_bullet(c)} ," for c in self.conditions
            ).rstrip(" ,")
            return (
                "any of the following conditions are true : " + bullets
            )
        return " or ".join(c.render() for c in self.conditions)


@dataclass(frozen=True)
class Not(Node):
    condition: Node

    def render(self) -> str:
        return f"not ( {self.condition.render()} )"


@dataclass(frozen=True)
class Exists(Node):
    """``there is a <Concept> [where <cond>]`` / ``there is no <Concept> …``."""

    concept: str
    where: Optional[Node] = None
    negated: bool = False

    def render(self) -> str:
        article = "no" if self.negated else "a"
        text = f"there is {article} {self.concept.lower()}"
        if self.where is not None:
            text += f" where {self.where.render()}"
        return text


@dataclass(frozen=True)
class Quantified(Node):
    """``there are at least/at most/exactly <N> <Concept> [where <cond>]``.

    ``op`` is ``ge``, ``le`` or ``eq``; the condition holds when the number
    of matching instances compares accordingly to ``count``.
    """

    concept: str
    op: str
    count: int
    where: Optional[Node] = None

    _RENDERINGS = {"ge": "at least", "le": "at most", "eq": "exactly"}

    def render(self) -> str:
        quantifier = self._RENDERINGS[self.op]
        text = (
            f"there are {quantifier} {self.count} {self.concept.lower()}"
        )
        if self.where is not None:
            text += f" where {self.where.render()}"
        return text


# -- definitions ----------------------------------------------------------------


@dataclass(frozen=True)
class InstanceBinding(Node):
    """``a <Concept> [where <condition>]`` — bind a graph node."""

    concept: str
    where: Optional[Node] = None

    def render(self) -> str:
        text = f"a {self.concept.lower()}"
        if self.where is not None:
            text += f" where {self.where.render()}"
        return text


@dataclass(frozen=True)
class Definition(Node):
    """``set '<var>' to <binding-or-expression>``."""

    var: str
    binder: Node  # InstanceBinding or an expression Node

    def render(self) -> str:
        return f"set '{self.var}' to {self.binder.render()}"


# -- actions ---------------------------------------------------------------------


@dataclass(frozen=True)
class SetStatus(Node):
    """``the internal control is [not] satisfied``."""

    satisfied: bool

    def render(self) -> str:
        state = "satisfied" if self.satisfied else "not satisfied"
        return f"the internal control is {state}"


@dataclass(frozen=True)
class Alert(Node):
    """``alert "<message>"``."""

    message: str

    def render(self) -> str:
        return f'alert "{self.message}"'


@dataclass(frozen=True)
class Assign(Node):
    """``set '<var>' to <expr>`` in an action position."""

    var: str
    expr: Node

    def render(self) -> str:
        return f"set '{self.var}' to {self.expr.render()}"


# -- the rule ---------------------------------------------------------------------


@dataclass(frozen=True)
class Rule(Node):
    """A full BAL rule: definitions, if, then, else."""

    definitions: Tuple[Definition, ...]
    condition: Node
    then_actions: Tuple[Node, ...]
    else_actions: Tuple[Node, ...] = field(default_factory=tuple)

    def render(self) -> str:
        parts: List[str] = []
        if self.definitions:
            parts.append("definitions")
            for definition in self.definitions:
                parts.append(f"  {definition.render()} ;")
        parts.append("if")
        parts.append(f"  {self.condition.render()}")
        parts.append("then")
        for action in self.then_actions:
            parts.append(f"  {action.render()} ;")
        if self.else_actions:
            parts.append("else")
            for action in self.else_actions:
                parts.append(f"  {action.render()} ;")
        return "\n".join(parts)

    def parameters(self) -> List[str]:
        """All parameter names referenced anywhere in the rule."""
        names: List[str] = []

        def visit(node: object) -> None:
            if isinstance(node, ParamRef) and node.name not in names:
                names.append(node.name)
            if isinstance(node, Node):
                for value in vars(node).values():
                    visit(value)
            elif isinstance(node, tuple):
                for item in node:
                    visit(item)

        visit(self)
        return names

    def concepts(self) -> List[str]:
        """All concept labels referenced by bindings and existence checks."""
        labels: List[str] = []

        def visit(node: object) -> None:
            if isinstance(node, (InstanceBinding, Exists, Quantified)):
                if node.concept not in labels:
                    labels.append(node.concept)
            if isinstance(node, Node):
                for value in vars(node).values():
                    visit(value)
            elif isinstance(node, tuple):
                for item in node:
                    visit(item)

        visit(self)
        return labels

    def phrases(self) -> List[str]:
        """All navigation phrases used (for vocabulary checking)."""
        names: List[str] = []

        def visit(node: object) -> None:
            if isinstance(node, Navigation) and node.phrase not in names:
                names.append(node.phrase)
            if isinstance(node, Node):
                for value in vars(node).values():
                    visit(value)
            elif isinstance(node, tuple):
                for item in node:
                    visit(item)

        visit(self)
        return names
