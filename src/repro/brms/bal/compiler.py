"""BAL compilation: vocabulary resolution and static checks.

Compilation turns rule text into a :class:`CompiledRule`: the parsed AST
plus the statically-resolved sets of concepts, phrases, parameters and
variables.  Static errors surface here — an authoring tool shows them in
the editor — instead of at evaluation time:

- concepts that the vocabulary does not know,
- navigation phrases no concept verbalizes,
- variables used before any definition sets them,
- ``this`` outside a where-clause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.brms.bal import ast
from repro.brms.bal.parser import parse_rule
from repro.brms.vocabulary import Vocabulary
from repro.errors import BalCompileError


@dataclass(frozen=True)
class CompiledRule:
    """A parsed, vocabulary-checked rule ready for the engine.

    Attributes:
        name: rule name (for the repository and reports).
        rule: the AST.
        source: the original text, kept for authoring-cost metrics.
        concepts: concept labels the rule binds or tests existence of.
        phrases: navigation phrases used.
        parameters: ``<param>`` names that must be bound at evaluation.
        variables: definition variable names, in order.
    """

    name: str
    rule: ast.Rule
    source: str
    concepts: Tuple[str, ...]
    phrases: Tuple[str, ...]
    parameters: Tuple[str, ...]
    variables: Tuple[str, ...]

    @property
    def anchor_variable(self) -> Optional[str]:
        """The first instance-binding variable — the control's subject.

        A trace where the anchor does not bind is one the control does not
        apply to (NOT_APPLICABLE), rather than a violation.
        """
        for definition in self.rule.definitions:
            if isinstance(definition.binder, ast.InstanceBinding):
                return definition.var
        return None


class BalCompiler:
    """Compiles BAL text against a vocabulary."""

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary

    def compile(self, name: str, text: str) -> CompiledRule:
        """Parse and statically check *text*; raises
        :class:`~repro.errors.BalCompileError` on resolution failures."""
        rule = parse_rule(text, self.vocabulary)
        self._check_concepts(rule)
        self._check_phrases(rule)
        self._check_variables(rule)
        self._check_this_usage(rule)
        return CompiledRule(
            name=name,
            rule=rule,
            source=text,
            concepts=tuple(rule.concepts()),
            phrases=tuple(rule.phrases()),
            parameters=tuple(rule.parameters()),
            variables=tuple(d.var for d in rule.definitions),
        )

    def _check_concepts(self, rule: ast.Rule) -> None:
        for concept in rule.concepts():
            if not self.vocabulary.has_concept(concept):
                message = f"unknown concept {concept!r}"
                suggestion = self._closest(
                    concept, self.vocabulary.concept_labels()
                )
                if suggestion:
                    message += f"; did you mean {suggestion!r}?"
                else:
                    known = ", ".join(
                        sorted(self.vocabulary.concept_labels())
                    )
                    message += f"; vocabulary knows: {known}"
                raise BalCompileError(message)

    def _check_phrases(self, rule: ast.Rule) -> None:
        for phrase in rule.phrases():
            owners = self.vocabulary.concepts_with_phrase(phrase)
            if not owners:
                message = f"no concept verbalizes the phrase {phrase!r}"
                all_phrases = {
                    member.phrase
                    for bom_class in self.vocabulary.bom.classes()
                    for member in bom_class.members
                }
                suggestion = self._closest(phrase, all_phrases)
                if suggestion:
                    message += f"; did you mean {suggestion!r}?"
                raise BalCompileError(message)

    @staticmethod
    def _closest(wanted: str, candidates) -> Optional[str]:
        """Nearest vocabulary term for an editor's 'did you mean' hint."""
        import difflib

        matches = difflib.get_close_matches(
            wanted.lower(),
            {candidate.lower(): candidate for candidate in candidates},
            n=1,
            cutoff=0.6,
        )
        if not matches:
            return None
        lowered = {c.lower(): c for c in candidates}
        return lowered[matches[0]]

    def _check_variables(self, rule: ast.Rule) -> None:
        defined: Set[str] = set()

        def check_uses(node: object, scope: Set[str]) -> None:
            if isinstance(node, ast.VarRef) and node.name not in scope:
                raise BalCompileError(
                    f"variable '{node.name}' used before definition"
                )
            if isinstance(node, ast.Node):
                for value in vars(node).values():
                    check_uses(value, scope)
            elif isinstance(node, tuple):
                for item in node:
                    check_uses(item, scope)

        for definition in rule.definitions:
            check_uses(definition.binder, defined)
            defined.add(definition.var)

        check_uses(rule.condition, defined)
        # Assign actions may introduce new variables usable by later actions.
        scope = set(defined)
        for action in rule.then_actions + rule.else_actions:
            if isinstance(action, ast.Assign):
                check_uses(action.expr, scope)
                scope.add(action.var)
            else:
                check_uses(action, scope)

    def _check_this_usage(self, rule: ast.Rule) -> None:
        def walk(node: object, in_where: bool) -> None:
            if isinstance(node, ast.ThisRef) and not in_where:
                raise BalCompileError(
                    "'this' is only meaningful inside a where-clause"
                )
            if isinstance(
                node, (ast.InstanceBinding, ast.Exists, ast.Quantified)
            ):
                if node.where is not None:
                    walk(node.where, True)
                return
            if isinstance(node, ast.Node):
                for value in vars(node).values():
                    walk(value, in_where)
            elif isinstance(node, tuple):
                for item in node:
                    walk(item, in_where)

        walk(rule, False)
