"""BAL recursive-descent parser.

The parser consumes the token stream produced by
:mod:`repro.brms.bal.tokens` and builds the AST of
:mod:`repro.brms.bal.ast`.  It takes an optional
:class:`~repro.brms.vocabulary.Vocabulary`: with one, multi-word concept
names and navigation phrases are segmented by longest-match against the
vocabulary (as a rule editor with drop-down menus effectively does);
without one, concepts end at structural keywords and phrases end at the
first ``of``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.brms.bal import ast
from repro.brms.bal.tokens import Token, TokenType, tokenize
from repro.errors import BalSyntaxError

# Words that terminate a free-form (vocabulary-less) concept name.
_CONCEPT_TERMINATORS = {"where", "if", "then", "else", "and", "or", "is"}

_MAX_PHRASE_WORDS = 6


class _Parser:
    def __init__(self, tokens: List[Token], vocabulary=None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._vocabulary = vocabulary

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None):
        token = token or self._peek()
        raise BalSyntaxError(message, line=token.line, column=token.column)

    def _expect_word(self, *words: str) -> Token:
        token = self._peek()
        if not token.is_word(*words):
            expected = " / ".join(words)
            self._error(f"expected {expected!r}, found {token.value!r}")
        return self._advance()

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_punct(symbol):
            self._error(f"expected {symbol!r}, found {token.value!r}")
        return self._advance()

    def _accept_word(self, *words: str) -> bool:
        if self._peek().is_word(*words):
            self._advance()
            return True
        return False

    def _accept_punct(self, symbol: str) -> bool:
        if self._peek().is_punct(symbol):
            self._advance()
            return True
        return False

    def _upcoming_words(self, limit: int = _MAX_PHRASE_WORDS) -> List[str]:
        words: List[str] = []
        offset = 0
        while len(words) < limit:
            token = self._peek(offset)
            if token.type is not TokenType.WORD:
                break
            words.append(token.value)
            offset += 1
        return words

    # -- rule ------------------------------------------------------------------

    def parse_rule(self) -> ast.Rule:
        definitions: List[ast.Definition] = []
        if self._accept_word("definitions"):
            while not self._peek().is_word("if"):
                if self._peek().type is TokenType.EOF:
                    self._error("rule is missing its 'if' section")
                definitions.append(self._parse_definition())
                self._accept_punct(";")
        self._expect_word("if")
        condition = self._parse_condition()
        self._expect_word("then")
        then_actions = self._parse_actions()
        else_actions: Tuple[ast.Node, ...] = ()
        if self._accept_word("else"):
            else_actions = self._parse_actions()
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._error(f"unexpected trailing input {token.value!r}")
        return ast.Rule(
            definitions=tuple(definitions),
            condition=condition,
            then_actions=then_actions,
            else_actions=else_actions,
        )

    # -- definitions --------------------------------------------------------------

    def _parse_definition(self) -> ast.Definition:
        self._expect_word("set")
        token = self._peek()
        if token.type is not TokenType.VARIABLE:
            self._error("definitions must set a quoted 'variable'")
        var = self._advance().value
        self._expect_word("to")
        binder = self._parse_binder()
        return ast.Definition(var=var, binder=binder)

    def _parse_binder(self) -> ast.Node:
        token = self._peek()
        if token.is_word("a", "an") and self._peek(1).type is TokenType.WORD:
            # Only an instance binding if the following words name a concept
            # (with a vocabulary) or unconditionally without one.
            saved = self._pos
            self._advance()
            concept = self._try_parse_concept()
            if concept is not None:
                where = None
                if self._accept_word("where"):
                    where = self._parse_condition()
                return ast.InstanceBinding(concept=concept, where=where)
            self._pos = saved
        return self._parse_expression()

    def _try_parse_concept(self) -> Optional[str]:
        """Consume and return a concept name, or None (no tokens consumed)."""
        words = self._upcoming_words()
        if not words:
            return None
        if self._vocabulary is not None:
            match = self._vocabulary.match_concept_prefix(words)
            if match is not None:
                label, count = match
                for __ in range(count):
                    self._advance()
                return label
            # Fall through to free-form segmentation so the compiler can
            # report "unknown concept" instead of a bare parse error.
        taken: List[str] = []
        while True:
            token = self._peek()
            if token.type is not TokenType.WORD:
                break
            if token.value.lower() in _CONCEPT_TERMINATORS:
                break
            taken.append(self._advance().value)
        if not taken:
            return None
        return " ".join(taken)

    # -- conditions ----------------------------------------------------------------

    def _parse_condition(self) -> ast.Node:
        return self._parse_or()

    def _parse_or(self) -> ast.Node:
        left = self._parse_and()
        conditions = [left]
        while self._peek().is_word("or"):
            self._advance()
            conditions.append(self._parse_and())
        if len(conditions) == 1:
            return left
        return ast.Or(conditions=tuple(conditions))

    def _parse_and(self) -> ast.Node:
        left = self._parse_unary_condition()
        conditions = [left]
        while self._peek().is_word("and"):
            self._advance()
            conditions.append(self._parse_unary_condition())
        if len(conditions) == 1:
            return left
        return ast.And(conditions=tuple(conditions))

    def _parse_unary_condition(self) -> ast.Node:
        token = self._peek()
        if token.is_word("not"):
            self._advance()
            if self._accept_punct("("):
                inner = self._parse_condition()
                self._expect_punct(")")
                return ast.Not(condition=inner)
            return ast.Not(condition=self._parse_unary_condition())
        if token.is_word("all", "any") and self._peek(1).is_word("of"):
            return self._parse_block_condition()
        if token.is_word("there"):
            return self._parse_exists()
        if token.is_punct("("):
            # Ambiguous: "( expr ) * 3 is 0" (parenthesized expression) vs
            # "( a is b or c is d )" (parenthesized condition).  Try the
            # comparison parse first and fall back to a condition.
            saved = self._pos
            try:
                return self._parse_comparison()
            except BalSyntaxError:
                self._pos = saved
            self._advance()
            inner = self._parse_condition()
            self._expect_punct(")")
            return inner
        return self._parse_comparison()

    def _parse_block_condition(self) -> ast.Node:
        kind = self._advance().value.lower()  # all / any
        self._expect_word("of")
        self._expect_word("the")
        self._expect_word("following")
        self._expect_word("conditions")
        self._expect_word("are")
        self._expect_word("true")
        self._expect_punct(":")
        bullets: List[ast.Node] = []
        if not self._peek().is_punct("-"):
            self._error("condition block needs at least one '-' bullet")
        while self._peek().is_punct("-"):
            self._advance()
            bullets.append(self._parse_condition())
            self._accept_punct(",") or self._accept_punct(";")
        if kind == "all":
            return ast.And(conditions=tuple(bullets), block=True)
        return ast.Or(conditions=tuple(bullets), block=True)

    def _parse_exists(self) -> ast.Node:
        self._expect_word("there")
        self._expect_word("is", "are", "exists")
        quantifier: Optional[str] = None
        if self._peek().is_word("at") and self._peek(1).is_word(
            "least", "most"
        ):
            self._advance()
            quantifier = "ge" if self._advance().value.lower() == "least" \
                else "le"
        elif self._peek().is_word("exactly"):
            self._advance()
            quantifier = "eq"
        if quantifier is not None:
            count_token = self._peek()
            if count_token.type is not TokenType.NUMBER:
                self._error("expected a count after the quantifier")
            self._advance()
            try:
                count = int(count_token.value)
            except ValueError:
                self._error("quantifier count must be an integer",
                            count_token)
            concept = self._try_parse_concept()
            if concept is None:
                self._error("expected a concept name after the count")
            where = None
            if self._accept_word("where"):
                where = self._parse_condition()
            return ast.Quantified(
                concept=concept, op=quantifier, count=count, where=where
            )
        negated = False
        if self._peek().is_word("no"):
            negated = True
            self._advance()
        else:
            self._expect_word("a", "an")
        concept = self._try_parse_concept()
        if concept is None:
            self._error("expected a concept name after 'there is a/no'")
        where = None
        if self._accept_word("where"):
            where = self._parse_condition()
        return ast.Exists(concept=concept, where=where, negated=negated)

    def _parse_comparison(self) -> ast.Node:
        left = self._parse_expression()
        token = self._peek()
        if token.is_word("equals"):
            self._advance()
            return ast.Comparison(op="eq", left=left,
                                  right=self._parse_expression())
        if token.is_word("exists"):
            self._advance()
            return ast.Comparison(op="not_null", left=left)
        if not token.is_word("is"):
            return ast.Comparison(op="truthy", left=left)
        self._advance()
        if self._accept_word("not"):
            if self._accept_word("null"):
                return ast.Comparison(op="not_null", left=left)
            return ast.Comparison(op="ne", left=left,
                                  right=self._parse_expression())
        if self._accept_word("null"):
            return ast.Comparison(op="is_null", left=left)
        if self._peek().is_word("one") and self._peek(1).is_word("of"):
            self._advance()
            self._advance()
            self._expect_punct("(")
            options = [self._parse_expression()]
            while self._accept_punct(","):
                options.append(self._parse_expression())
            self._expect_punct(")")
            return ast.Comparison(op="one_of", left=left,
                                  right=tuple(options))
        if self._accept_word("at"):
            if self._accept_word("least"):
                op = "ge"
            else:
                self._expect_word("most")
                op = "le"
            return ast.Comparison(op=op, left=left,
                                  right=self._parse_expression())
        if self._peek().is_word("more") and self._peek(1).is_word("than"):
            self._advance()
            self._advance()
            return ast.Comparison(op="gt", left=left,
                                  right=self._parse_expression())
        if self._peek().is_word("less") and self._peek(1).is_word("than"):
            self._advance()
            self._advance()
            return ast.Comparison(op="lt", left=left,
                                  right=self._parse_expression())
        if self._accept_word("after"):
            return ast.Comparison(op="gt", left=left,
                                  right=self._parse_expression())
        if self._accept_word("before"):
            return ast.Comparison(op="lt", left=left,
                                  right=self._parse_expression())
        if self._accept_word("equal"):
            self._expect_word("to")
            return ast.Comparison(op="eq", left=left,
                                  right=self._parse_expression())
        return ast.Comparison(op="eq", left=left,
                              right=self._parse_expression())

    # -- expressions --------------------------------------------------------------

    def _parse_expression(self) -> ast.Node:
        left = self._parse_term()
        while self._peek().is_punct("+", "-"):
            op = self._advance().value
            right = self._parse_term()
            left = ast.Arith(op=op, left=left, right=right)
        return left

    def _parse_term(self) -> ast.Node:
        left = self._parse_primary()
        while self._peek().is_punct("*", "/"):
            op = self._advance().value
            right = self._parse_primary()
            left = ast.Arith(op=op, left=left, right=right)
        return left

    def _parse_primary(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value=value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(value=token.value)
        if token.type is TokenType.VARIABLE:
            self._advance()
            return ast.VarRef(name=token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.ParamRef(name=token.value)
        if token.is_word("true"):
            self._advance()
            return ast.Literal(value=True)
        if token.is_word("false"):
            self._advance()
            return ast.Literal(value=False)
        if token.is_word("null"):
            self._advance()
            return ast.Literal(value=None)
        if token.is_punct("("):
            self._advance()
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if token.is_word("this"):
            self._advance()
            concept = self._try_parse_concept()
            return ast.ThisRef(concept=concept)
        if token.is_word("the"):
            return self._parse_the_expression()
        self._error(f"unexpected token {token.value!r} in expression")

    def _parse_the_expression(self) -> ast.Node:
        self._expect_word("the")
        if (
            self._peek().is_word("number")
            and self._peek(1).is_word("of")
        ):
            self._advance()
            self._advance()
            return ast.CountOf(target=self._parse_primary())
        phrase = self._parse_phrase()
        self._expect_word("of")
        target = self._parse_primary()
        return ast.Navigation(phrase=phrase, target=target)

    def _parse_phrase(self) -> str:
        words = self._upcoming_words()
        if not words:
            self._error("expected a vocabulary phrase after 'the'")
        if self._vocabulary is not None:
            match = self._vocabulary.match_phrase_prefix(words)
            if match is not None:
                phrase, count = match
                # Guard against a phrase that swallows the 'of' chain:
                # the token after the phrase must be 'of'.
                if self._peek(count).is_word("of"):
                    for __ in range(count):
                        self._advance()
                    return phrase
        taken: List[str] = []
        while self._peek().type is TokenType.WORD and not self._peek().is_word(
            "of"
        ):
            taken.append(self._advance().value)
        if not taken:
            self._error("expected a vocabulary phrase after 'the'")
        return " ".join(taken)

    # -- actions -----------------------------------------------------------------------

    def _parse_actions(self) -> Tuple[ast.Node, ...]:
        actions = [self._parse_action()]
        self._accept_punct(";")
        while not (
            self._peek().is_word("else") or self._peek().type is TokenType.EOF
        ):
            actions.append(self._parse_action())
            self._accept_punct(";")
        return tuple(actions)

    def _parse_action(self) -> ast.Node:
        token = self._peek()
        if token.is_word("alert"):
            self._advance()
            message = self._peek()
            if message.type is not TokenType.STRING:
                self._error('alert needs a "quoted message"')
            self._advance()
            return ast.Alert(message=message.value)
        if token.is_word("set"):
            self._advance()
            var = self._peek()
            if var.type is not TokenType.VARIABLE:
                self._error("set action needs a quoted 'variable'")
            self._advance()
            self._expect_word("to")
            return ast.Assign(var=var.value, expr=self._parse_expression())
        # the internal control is [not] satisfied
        self._accept_word("the")
        self._accept_word("internal")
        self._expect_word("control")
        self._expect_word("is", "in")  # the paper itself typos "in not"
        negated = self._accept_word("not")
        self._expect_word("satisfied")
        return ast.SetStatus(satisfied=not negated)


def parse_rule(text: str, vocabulary=None) -> ast.Rule:
    """Parse BAL *text* into a :class:`~repro.brms.bal.ast.Rule`.

    Args:
        text: the rule source.
        vocabulary: optional vocabulary for multi-word concept/phrase
            segmentation.
    """
    return _Parser(tokenize(text), vocabulary).parse_rule()
