"""Verbalization profiles: different vocabularies over the same model.

§IV: "Different verbalization for different business vocabulary is
possible.  This work suggests that the task of verbalization is a role
that is executed after the provenance graph data is created."  A
:class:`VerbalizationProfile` carries per-concept label overrides and
per-phrase overrides so that the *same* provenance data model verbalizes
into the vocabulary of a different business audience (another language,
audit terminology, a department's jargon) — and rules authored in either
vocabulary compile to the same executions.

Profiles are data, not code: they can be authored by the same business
people who author controls, which is the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.brms.bom import BomClass, BusinessObjectModel
from repro.brms.verbalization import Verbalizer
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.errors import VocabularyError


@dataclass(frozen=True)
class VerbalizationProfile:
    """Overrides applied on top of the default verbalization.

    Attributes:
        name: profile name (``"default"``, ``"de"``, ``"audit"`` …).
        concept_labels: node type → concept label override
            (``{"jobrequisition": "Stellenausschreibung"}``).
        phrases: (node type, member name) → phrase override
            (``{("jobrequisition", "managergen"): "Bereichsleiter"}``).
    """

    name: str
    concept_labels: Dict[str, str] = field(default_factory=dict)
    phrases: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def concept_label(self, node_type: str, default: str) -> str:
        return self.concept_labels.get(node_type, default)

    def phrase(self, node_type: str, member: str, default: str) -> str:
        return self.phrases.get((node_type, member), default)


DEFAULT_PROFILE = VerbalizationProfile(name="default")


def verbalize_with_profile(
    xom: ExecutableObjectModel,
    profile: VerbalizationProfile,
    cache: bool = True,
) -> Vocabulary:
    """Verbalize *xom* under *profile*; returns a ready vocabulary.

    Overrides must stay unambiguous: two members of one concept must not
    collapse onto the same phrase (raises :class:`VocabularyError`).
    """
    base = Verbalizer(xom).verbalize(bom_name=f"{xom.model.name}-{profile.name}")
    renamed = BusinessObjectModel(base.name)
    for bom_class in base.classes():
        node_type = bom_class.node_type
        new_class = BomClass(
            concept=profile.concept_label(node_type, bom_class.concept),
            node_type=node_type,
            qualified_name=bom_class.qualified_name,
        )
        seen: Dict[str, str] = {}
        for member in bom_class.members:
            phrase = profile.phrase(node_type, member.name, member.phrase)
            lowered = phrase.lower()
            if lowered in seen:
                raise VocabularyError(
                    f"profile {profile.name!r} maps both "
                    f"{seen[lowered]!r} and {member.name!r} of "
                    f"{node_type!r} to phrase {phrase!r}"
                )
            seen[lowered] = member.name
            new_class.members.append(replace(member, phrase=phrase))
        renamed.add_class(new_class)
    return Vocabulary(renamed, cache=cache)


def profile_from_translations(
    name: str,
    concepts: Optional[Dict[str, str]] = None,
    **phrase_overrides: Dict[str, str],
) -> VerbalizationProfile:
    """Build a profile from per-node-type phrase dictionaries.

    >>> profile_from_translations(
    ...     "audit",
    ...     concepts={"jobrequisition": "Hiring Request"},
    ...     jobrequisition={"managergen": "approving executive"},
    ... ).phrase("jobrequisition", "managergen", "general manager")
    'approving executive'
    """
    phrases: Dict[Tuple[str, str], str] = {}
    for node_type, overrides in phrase_overrides.items():
        for member, phrase in overrides.items():
            phrases[(node_type, member)] = phrase
    return VerbalizationProfile(
        name=name,
        concept_labels=dict(concepts or {}),
        phrases=phrases,
    )
