"""repro — internal control points for partially managed processes.

A from-scratch reproduction of Doganata, *Designing internal control points
in partially managed processes by using business vocabulary* (ICDE
Workshops 2011): a business provenance management system integrated with a
business rule management system so that compliance controls are authored in
business vocabulary and checked automatically against provenance graphs.

Quickstart (the paper's Figure-1 workload, end to end)::

    from repro import hiring, ViolationPlan, ComplianceEvaluator

    workload = hiring.workload()
    sim = workload.simulate(
        cases=100,
        violations=ViolationPlan.uniform(list(hiring.VIOLATION_KINDS), 0.2),
    )
    evaluator = ComplianceEvaluator(sim.store, sim.xom, sim.vocabulary)
    for result in evaluator.violations(evaluator.run(sim.controls)):
        print(result.describe())

Layer map (bottom to top): :mod:`repro.model` → :mod:`repro.store` →
:mod:`repro.capture` → :mod:`repro.graph` → :mod:`repro.brms` →
:mod:`repro.controls`, with :mod:`repro.processes` simulating the business
side, :mod:`repro.baselines` the comparison points, and
:mod:`repro.metrics` / :mod:`repro.reporting` the evaluation harness.
"""

from repro.model import (
    AttributeSpec,
    AttributeType,
    CustomRecord,
    DataRecord,
    ModelBuilder,
    NodeTypeSpec,
    ProvenanceDataModel,
    RecordClass,
    RelationRecord,
    RelationTypeSpec,
    ResourceRecord,
    TaskRecord,
)
from repro.store import (
    ContinuousQuery,
    ProvenanceStore,
    RecordQuery,
    xpath_lite,
)
from repro.capture import (
    ApplicationEvent,
    CorrelationAnalytics,
    EventMapping,
    EventSource,
    RecorderClient,
    RelevanceFilter,
    SensitiveDataScrubber,
)
from repro.graph import (
    ProvenanceGraph,
    build_graph,
    build_trace_graph,
    to_dot,
    to_json,
    trace_census,
)
from repro.brms import (
    BusinessObjectModel,
    ExecutableObjectModel,
    RuleEngine,
    RuleRepository,
    Verbalizer,
    Vocabulary,
)
from repro.brms.bal import BalCompiler, parse_rule
from repro.controls import (
    ComplianceDashboard,
    ComplianceEvaluator,
    ComplianceResult,
    ComplianceStatus,
    ControlAuthoringTool,
    ControlDeployment,
    InternalControl,
)
from repro.controls.control import ControlSeverity
from repro.processes import (
    ManagementProfile,
    ProcessSimulator,
    ViolationPlan,
    VisibilityPolicy,
)
from repro.processes import expenses, hiring, incidents, procurement
from repro.processes.workload import Workload

__version__ = "1.0.0"

__all__ = [
    "ApplicationEvent",
    "AttributeSpec",
    "AttributeType",
    "BalCompiler",
    "BusinessObjectModel",
    "ComplianceDashboard",
    "ComplianceEvaluator",
    "ComplianceResult",
    "ComplianceStatus",
    "ContinuousQuery",
    "ControlAuthoringTool",
    "ControlDeployment",
    "ControlSeverity",
    "CorrelationAnalytics",
    "CustomRecord",
    "DataRecord",
    "EventMapping",
    "EventSource",
    "ExecutableObjectModel",
    "InternalControl",
    "ManagementProfile",
    "ModelBuilder",
    "NodeTypeSpec",
    "ProcessSimulator",
    "ProvenanceDataModel",
    "ProvenanceGraph",
    "ProvenanceStore",
    "RecordClass",
    "RecordQuery",
    "RecorderClient",
    "RelationRecord",
    "RelationTypeSpec",
    "RelevanceFilter",
    "ResourceRecord",
    "RuleEngine",
    "RuleRepository",
    "SensitiveDataScrubber",
    "TaskRecord",
    "Verbalizer",
    "ViolationPlan",
    "VisibilityPolicy",
    "Vocabulary",
    "Workload",
    "build_graph",
    "build_trace_graph",
    "expenses",
    "hiring",
    "incidents",
    "parse_rule",
    "procurement",
    "to_dot",
    "to_json",
    "trace_census",
    "xpath_lite",
]
