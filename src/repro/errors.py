"""Exception hierarchy for the repro library.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library failures without also swallowing programming errors.  The
hierarchy mirrors the subsystem layout: model, store, capture, graph, BRMS
(with a dedicated branch for BAL authoring problems), and controls.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A provenance data-model definition or validation problem."""


class SchemaViolation(ModelError):
    """A record does not conform to the declared provenance data model."""


class UnknownRecordClass(ModelError):
    """A record class name is not one of the five provenance classes."""


class StoreError(ReproError):
    """A provenance-store failure (codec, index, or query)."""


class BackendError(StoreError):
    """A storage backend failed or was misconfigured."""


class DuplicateRecordId(StoreError):
    """Two records with the same id were appended to the same store."""


class RecordNotFound(StoreError):
    """A lookup by record id found nothing."""


class CodecError(StoreError):
    """XML (de)serialization of a provenance row failed."""


class QueryError(StoreError):
    """A store query is malformed or references unknown fields."""


class CaptureError(ReproError):
    """A recorder client or correlation analytic failed."""


class MappingError(CaptureError):
    """No mapping rule matched an application event that required one."""


class GraphError(ReproError):
    """A provenance-graph construction or traversal failure."""


class PatternError(GraphError):
    """A subgraph pattern is malformed."""


class BrmsError(ReproError):
    """A business-rule-management failure (XOM, BOM, vocabulary, engine)."""


class XomError(BrmsError):
    """Executable-object-model generation or instantiation failed."""


class BomError(BrmsError):
    """Business-object-model construction or BOM-to-XOM mapping failed."""


class VocabularyError(BrmsError):
    """A verbalization phrase is missing, duplicated, or malformed."""


class BalError(BrmsError):
    """Base class for Business Action Language problems."""


class BalSyntaxError(BalError):
    """The BAL text failed to lex or parse.

    Carries the offending line/column so authoring tools can point at the
    problem in the editor.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BalCompileError(BalError):
    """The BAL parse tree referenced vocabulary that does not resolve."""


class RuleEngineError(BrmsError):
    """Rule execution failed at runtime."""


class ControlError(ReproError):
    """An internal-control definition, binding, or evaluation failure."""


class BindingError(ControlError):
    """A control point could not be linked to the provenance graph."""


class DeploymentError(ControlError):
    """A control point could not be deployed or is in the wrong state."""


class ProcessError(ReproError):
    """A process specification or simulation failure."""


class ServiceError(ReproError):
    """A compliance-service runtime misuse or lifecycle failure."""
