"""Deterministic identifier generation.

Provenance entities in the paper carry ids like ``PE1``, ``PE2`` (Table I)
and application ids like ``App01``.  Reproductions must be deterministic so
that regenerated tables and figures are byte-for-byte stable; therefore ids
come from per-prefix counters owned by an :class:`IdFactory`, never from
``uuid`` or wall-clock entropy.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator


class IdFactory:
    """Produces deterministic, human-readable ids per prefix.

    >>> ids = IdFactory()
    >>> ids.next("PE")
    'PE1'
    >>> ids.next("PE")
    'PE2'
    >>> ids.next("App", width=2)
    'App01'
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}

    def next(self, prefix: str, width: int = 0) -> str:
        """Return the next id for *prefix*, zero-padded to *width* digits."""
        counter = self._counters.setdefault(prefix, itertools.count(1))
        value = next(counter)
        return f"{prefix}{value:0{width}d}" if width else f"{prefix}{value}"

    def reset(self) -> None:
        """Forget all counters (each prefix restarts at 1)."""
        self._counters.clear()

    def seed(self, prefix: str, next_value: int) -> None:
        """Make the next id for *prefix* be ``<prefix><next_value>``.

        A long-lived process that reopens a store must continue the id
        sequences the previous process left behind — restarting a counter
        at 1 would collide with ids already on disk.
        """
        if next_value < 1:
            raise ValueError("id counters start at 1")
        self._counters[prefix] = itertools.count(next_value)


def trace_app_id(index: int) -> str:
    """The application id naming convention of the paper: ``App01``, ``App02`` …"""
    return f"App{index:02d}"
