"""Detection-quality metrics against injected ground truth.

The unit of evaluation is the (control, trace) pair.  Ground truth comes
from the workload's oracle (what the injected flags say *should* hold at
full visibility); the prediction is what the checker actually reported on
the — possibly partially visible — store.

Two granularities:

- per-pair confusion over the VIOLATED class (`detection_report`): a pair
  counts as positive when ground truth says VIOLATED; a prediction counts
  as positive when the checker said VIOLATED.  NOT_APPLICABLE/UNDETERMINED
  predictions are negatives (the checker raised no exception), which
  penalizes evidence gaps as missed detections — exactly how an audit
  would experience them.
- per-trace binary (`trace_level_detection`): "does this trace contain any
  violation" vs "did the checker flag any violation" — the only granularity
  at which the control-free replay baseline can compete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.controls.status import ComplianceResult, ComplianceStatus

# trace id -> control name -> expected status
GroundTruthTable = Mapping[str, Mapping[str, ComplianceStatus]]


@dataclass
class ConfusionCounts:
    """Binary confusion counts over the VIOLATED class."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def precision(self) -> float:
        flagged = self.true_positive + self.false_positive
        return self.true_positive / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positive + self.false_negative
        return self.true_positive / actual if actual else 1.0

    @property
    def f1(self) -> float:
        denominator = self.precision + self.recall
        if denominator == 0:
            return 0.0
        return 2 * self.precision * self.recall / denominator

    def add(self, actual_positive: bool, predicted_positive: bool) -> None:
        if actual_positive and predicted_positive:
            self.true_positive += 1
        elif actual_positive:
            self.false_negative += 1
        elif predicted_positive:
            self.false_positive += 1
        else:
            self.true_negative += 1


@dataclass
class DetectionReport:
    """Overall and per-control confusion counts."""

    overall: ConfusionCounts
    per_control: Dict[str, ConfusionCounts]

    def row(self) -> Tuple[float, float, float]:
        return (self.overall.precision, self.overall.recall, self.overall.f1)


def detection_report(
    results: Iterable[ComplianceResult],
    truth: GroundTruthTable,
) -> DetectionReport:
    """Confusion over (control, trace) pairs present in *results*."""
    overall = ConfusionCounts()
    per_control: Dict[str, ConfusionCounts] = {}
    for result in results:
        expected = truth.get(result.trace_id, {}).get(result.control_name)
        if expected is None:
            continue
        actual_positive = expected is ComplianceStatus.VIOLATED
        predicted_positive = result.status is ComplianceStatus.VIOLATED
        overall.add(actual_positive, predicted_positive)
        per_control.setdefault(
            result.control_name, ConfusionCounts()
        ).add(actual_positive, predicted_positive)
    return DetectionReport(overall=overall, per_control=per_control)


def trace_level_detection(
    results: Iterable[ComplianceResult],
    truth: GroundTruthTable,
    trace_ids: Optional[Sequence[str]] = None,
) -> ConfusionCounts:
    """Per-trace binary detection: any violation expected vs any flagged."""
    flagged: Set[str] = set()
    seen: Set[str] = set()
    for result in results:
        seen.add(result.trace_id)
        if result.status is ComplianceStatus.VIOLATED:
            flagged.add(result.trace_id)
    ids = list(trace_ids) if trace_ids is not None else sorted(seen)
    counts = ConfusionCounts()
    for trace_id in ids:
        expected_statuses = truth.get(trace_id, {})
        actual_positive = any(
            status is ComplianceStatus.VIOLATED
            for status in expected_statuses.values()
        )
        counts.add(actual_positive, trace_id in flagged)
    return counts


def verdict_agreement(
    results_a: Iterable[ComplianceResult],
    results_b: Iterable[ComplianceResult],
) -> Tuple[int, int, List[Tuple[str, str]]]:
    """Compare two checkers pair by pair.

    Returns ``(agreements, comparisons, disagreements)`` where each
    disagreement is the (control, trace) key.  Used by E4 to assert that
    vocabulary-authored controls and hardcoded IT controls give identical
    verdicts on the same store.
    """
    table_a = {
        (result.control_name, result.trace_id): result.status
        for result in results_a
    }
    agreements = 0
    comparisons = 0
    disagreements: List[Tuple[str, str]] = []
    for result in results_b:
        key = (result.control_name, result.trace_id)
        if key not in table_a:
            continue
        comparisons += 1
        if table_a[key] is result.status:
            agreements += 1
        else:
            disagreements.append(key)
    return agreements, comparisons, disagreements
