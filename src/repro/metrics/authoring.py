"""Authoring-cost metrics.

The paper's economic argument: IT-implemented controls are "very costly and
not flexible", while vocabulary-authored controls let business people "test
different internal controls without requiring changes in the application
code every time a new control is created" (§I).  E6 quantifies the artifact
side of that argument with three measures per control implementation:

- non-blank source lines,
- lexical tokens (BAL tokens for rules, Python tokens for code),
- IT-dependency flag: whether the artifact can be changed without a
  developer (BAL: no; Python/queries: yes).
"""

from __future__ import annotations

import inspect
import io
import tokenize as py_tokenize
from dataclasses import dataclass
from typing import Callable, List

from repro.brms.bal.tokens import TokenType, tokenize as bal_tokenize


@dataclass(frozen=True)
class ArtifactCost:
    """Size and dependency cost of one control artifact."""

    name: str
    language: str  # "bal" | "python" | "xquery"
    lines: int
    tokens: int
    requires_it: bool

    def row(self) -> tuple:
        return (
            self.name,
            self.language,
            self.lines,
            self.tokens,
            "yes" if self.requires_it else "no",
        )


def _nonblank_lines(text: str) -> int:
    return sum(1 for line in text.splitlines() if line.strip())


def bal_cost(name: str, text: str) -> ArtifactCost:
    """Cost of a BAL rule: business-authorable, no IT dependency."""
    tokens = [
        token
        for token in bal_tokenize(text)
        if token.type is not TokenType.EOF
    ]
    return ArtifactCost(
        name=name,
        language="bal",
        lines=_nonblank_lines(text),
        tokens=len(tokens),
        requires_it=False,
    )


def python_cost(name: str, target: Callable) -> ArtifactCost:
    """Cost of a hardcoded Python control (IT artifact)."""
    source = inspect.getsource(target)
    reader = io.StringIO(source).readline
    count = 0
    for token in py_tokenize.generate_tokens(reader):
        if token.type in (
            py_tokenize.NEWLINE,
            py_tokenize.NL,
            py_tokenize.INDENT,
            py_tokenize.DEDENT,
            py_tokenize.COMMENT,
            py_tokenize.ENDMARKER,
        ):
            continue
        count += 1
    return ArtifactCost(
        name=name,
        language="python",
        lines=_nonblank_lines(source),
        tokens=count,
        requires_it=True,
    )


def query_cost(name: str, probes: List, verdict: Callable) -> ArtifactCost:
    """Cost of a raw store-query control: probe strings + verdict code."""
    probe_text = "\n".join(f"{label}: {path}" for label, path in probes)
    verdict_cost = python_cost(name, verdict)
    probe_tokens = sum(len(path.split("/")) for __, path in probes)
    return ArtifactCost(
        name=name,
        language="xquery",
        lines=_nonblank_lines(probe_text) + verdict_cost.lines,
        tokens=probe_tokens + verdict_cost.tokens,
        requires_it=True,
    )
