"""Metrics for the derived experiments.

- :mod:`repro.metrics.detection` — precision/recall/F1 of violation
  detection against injected ground truth, plus verdict-agreement between
  two control implementations (E4),
- :mod:`repro.metrics.authoring` — artifact-size and change-impact metrics
  for the authoring-cost comparison (E6),
- :mod:`repro.metrics.timing` — a tiny deterministic-workload stopwatch
  used by benchmarks that need phase breakdowns (E5/E7).
"""

from repro.metrics.detection import (
    ConfusionCounts,
    DetectionReport,
    detection_report,
    trace_level_detection,
    verdict_agreement,
)
from repro.metrics.authoring import (
    ArtifactCost,
    bal_cost,
    python_cost,
    query_cost,
)
from repro.metrics.timing import Stopwatch

__all__ = [
    "ArtifactCost",
    "ConfusionCounts",
    "DetectionReport",
    "Stopwatch",
    "bal_cost",
    "detection_report",
    "python_cost",
    "query_cost",
    "trace_level_detection",
    "verdict_agreement",
]
