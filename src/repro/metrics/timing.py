"""Phase timing for benchmark breakdowns.

pytest-benchmark measures whole bench bodies; the E5/E7 harnesses also want
per-phase breakdowns (simulate / record / correlate / evaluate).  The
:class:`Stopwatch` collects named spans with ``time.perf_counter`` and
renders them; it is measurement-only and never feeds assertions, so test
determinism is unaffected.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple


class Stopwatch:
    """Accumulates named timing spans."""

    def __init__(self) -> None:
        self._spans: Dict[str, float] = {}
        self._order: List[str] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a with-block under *name* (accumulates on reuse)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name not in self._spans:
                self._spans[name] = 0.0
                self._order.append(name)
            self._spans[name] += elapsed

    def seconds(self, name: str) -> float:
        return self._spans.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._spans.values())

    def rows(self) -> List[Tuple[str, float, float]]:
        """(name, seconds, share-of-total) rows in first-use order."""
        total = self.total or 1.0
        return [
            (name, self._spans[name], self._spans[name] / total)
            for name in self._order
        ]

    def render(self) -> str:
        lines = ["phase breakdown:"]
        for name, seconds, share in self.rows():
            lines.append(f"  {name:<24}{seconds:>9.4f}s  {share:>6.1%}")
        return "\n".join(lines)
