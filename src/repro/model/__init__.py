"""Provenance data model.

The paper's Section II.B fixes five record classes that are "proven
sufficient to represent any business process":

- :class:`~repro.model.records.DataRecord` — business artifacts (documents,
  e-mails, database records, …),
- :class:`~repro.model.records.TaskRecord` — process activities that utilize
  or manipulate data,
- :class:`~repro.model.records.ResourceRecord` — people, runtimes and other
  actors,
- :class:`~repro.model.records.CustomRecord` — domain-specific virtual
  artifacts such as compliance goals, alerts and checkpoints,
- :class:`~repro.model.records.RelationRecord` — the edges of the provenance
  graph, produced mostly by correlation analytics.

The :class:`~repro.model.schema.ProvenanceDataModel` declares which *types*
of each class a given business scope produces (e.g. a ``jobrequisition`` data
type with ``reqid``/``type``/``position`` attributes) and validates records
against those declarations.  The same model later seeds XOM generation in
:mod:`repro.brms.xom`.
"""

from repro.model.attributes import AttributeSpec, AttributeType
from repro.model.records import (
    CustomRecord,
    DataRecord,
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
    ResourceRecord,
    TaskRecord,
    record_from_parts,
)
from repro.model.schema import (
    NodeTypeSpec,
    ProvenanceDataModel,
    RelationTypeSpec,
)
from repro.model.builder import ModelBuilder

__all__ = [
    "AttributeSpec",
    "AttributeType",
    "CustomRecord",
    "DataRecord",
    "ModelBuilder",
    "NodeTypeSpec",
    "ProvenanceDataModel",
    "ProvenanceRecord",
    "RecordClass",
    "RelationRecord",
    "RelationTypeSpec",
    "ResourceRecord",
    "TaskRecord",
    "record_from_parts",
]
